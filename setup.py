"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works in offline environments where the
``wheel`` package (required by pip's PEP 660 editable path) is
unavailable.
"""

from setuptools import setup

setup()
