"""Extension study — the cost of a power ceiling on d695.

Not a paper table: the paper's method ignores power (it cites the
integrated TAM+scheduling school as the alternative).  This bench
quantifies what the omission costs on d695 at W=32: schedule the
co-optimized architecture under tightening power budgets and report
the makespan inflation over the unconstrained testing time.

Shape checks: loose budgets cost nothing; makespan is monotone
non-increasing in the budget; the ceiling is never violated
(independent oracle) ; full serialization bounds the worst case.
"""

from repro.optimize.co_optimize import co_optimize
from repro.report.tables import TextTable
from repro.schedule.power import (
    PowerProfile,
    schedule_with_power,
    verify_power_feasible,
)
from repro.wrapper.pareto import build_time_tables

WIDTH = 32


def test_power_budget_sweep(benchmark, d695, report):
    result = co_optimize(d695, WIDTH, num_tams=range(1, 6))
    tables = build_time_tables(d695, WIDTH)
    times = [
        [tables[c.name].time(w) for w in result.partition]
        for c in d695
    ]
    names = [c.name for c in d695]
    # Test power proportional to switching volume (scan cells), the
    # usual first-order proxy.
    powers = tuple(1 + core.total_scan_cells // 100 for core in d695)
    total_power = sum(powers)
    budgets = [
        max(powers),                 # minimal feasible: serialize hard
        total_power // 4,
        total_power // 2,
        total_power,                 # everything in parallel
    ]
    budgets = sorted(set(max(budget, max(powers)) for budget in budgets))

    def run():
        return [
            schedule_with_power(
                result.final, times, names,
                PowerProfile(powers, power_budget=budget),
            )
            for budget in budgets
        ]

    schedules = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["power budget", "makespan", "inflation %", "peak power"],
        title=f"Extension. Power-constrained scheduling of d695's "
              f"W={WIDTH} architecture (unconstrained T = "
              f"{result.testing_time}).",
    )
    for budget, scheduled in zip(budgets, schedules):
        inflation = (scheduled.makespan - result.testing_time) \
            / result.testing_time * 100
        table.add_row([
            budget, scheduled.makespan, round(inflation, 1),
            scheduled.peak_power,
        ])
    report("power_scheduling", table.render())

    serial_bound = sum(
        times[core][bus]
        for core, bus in enumerate(result.final.assignment)
    )
    makespans = [s.makespan for s in schedules]
    assert all(a >= b for a, b in zip(makespans, makespans[1:]))
    assert makespans[-1] == result.testing_time  # loose budget is free
    for budget, scheduled in zip(budgets, schedules):
        assert scheduled.makespan <= serial_bound
        assert scheduled.peak_power <= budget
        assert verify_power_feasible(
            scheduled, PowerProfile(powers, power_budget=budget)
        )
