"""Table 7 — p21241 (28 cores), P_NPAW with 1 <= B <= 10.

The paper's key result for this SOC: with more than two TAMs
available, the new method beats the B<=2 exhaustive results by ~25%
on average at W >= 24, because Partition_evaluate can explore 3-6
TAM architectures the exhaustive method cannot reach.

Shape checks: free-B beats the exhaustive-at-B=2 testing time at
large widths, and the winning architectures use more than 2 TAMs.
"""

from _common import run_npaw_bench
from repro.optimize.exhaustive import exhaustive_optimize


def test_table7_p21241_npaw(benchmark, p21241, report):
    rows = run_npaw_bench(
        benchmark,
        report,
        p21241,
        result_name="table07_p21241_npaw",
        title="Table 7. p21241 stand-in, P_NPAW (B <= 10): new method.",
    )

    # The paper's comparison: the best-B heuristic vs exhaustive B=2.
    improvements = []
    for row in rows:
        if row["W"] < 24:
            continue
        exhaustive_b2 = exhaustive_optimize(
            p21241, row["W"], 2,
            time_limit_per_partition=2.0, total_time_limit=120.0,
        )
        improvements.append(
            (exhaustive_b2.testing_time - row["T_new"])
            / exhaustive_b2.testing_time
        )
    # More TAMs help on average (paper: ~25% lower testing times).
    assert sum(improvements) / len(improvements) > 0.05
    assert max(row["B"] for row in rows) > 2
