"""Tables 15 & 16 — p93791 (32 cores, the largest SOC), P_PAW at B = 2.

The paper reports the new method within +0..+9% of exhaustive with
1-2 orders of magnitude CPU advantage on this SOC, including exact
agreement (ΔT = +0.00%) at several widths.
"""

from _common import run_comparison_bench


def test_tables15_16_p93791_b2(benchmark, p93791, report):
    rows = run_comparison_bench(
        benchmark,
        report,
        p93791,
        num_tams=2,
        result_name="table15_16_p93791_b2",
        title="Tables 15/16. p93791 stand-in, B=2: exhaustive [8] vs "
              "new co-optimization method.",
    )
    # Largest SOC, still close: some width must agree within ~3%.
    assert min(row["delta_pct"] for row in rows) <= 3.0
