"""Tables 17 & 18 — p93791, P_PAW at B = 3.

The heaviest fixed-B configuration in the paper (its exhaustive CPU
times reach 440s rescaled).  The paper's new method matches the ILP
results within +0..+5% at two-to-three orders of magnitude less CPU.

Shape checks: quality envelope, monotonicity, and a genuine CPU
advantage for the heuristic at this B.
"""

from _common import run_comparison_bench


def test_tables17_18_p93791_b3(benchmark, p93791, report):
    rows = run_comparison_bench(
        benchmark,
        report,
        p93791,
        num_tams=3,
        result_name="table17_18_p93791_b3",
        title="Tables 17/18. p93791 stand-in, B=3: exhaustive [8] vs "
              "new co-optimization method.",
        exhaustive_time_per_partition=0.6,
        exhaustive_total_time=120.0,
    )
    # The new method must hold a clear aggregate CPU advantage on
    # the hardest fixed-B family (paper: 2-3 orders of magnitude;
    # require >= 2x in aggregate to stay robust across machines).
    total_old = sum(row["t_old_s"] for row in rows)
    total_new = sum(row["t_new_s"] for row in rows)
    assert total_new * 2 <= total_old
