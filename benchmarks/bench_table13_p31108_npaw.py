"""Table 13 — p31108, P_NPAW with 1 <= B <= 10.

The paper's signature observation for this SOC: testing time
saturates at 544579 cycles once W >= 40 and B >= 3-4, because one
memory core's test dominates — once *its* bus is wide enough
(10 bits in the paper), no additional width or TAM count helps.
Our stand-in reproduces the mechanism; the bench verifies the
saturation and ties it to the bottleneck core's floor.
"""

from _common import run_npaw_bench
from repro.wrapper.pareto import build_time_tables


def test_table13_p31108_npaw(benchmark, p31108, report):
    rows = run_npaw_bench(
        benchmark,
        report,
        p31108,
        result_name="table13_p31108_npaw",
        title="Table 13. p31108 stand-in, P_NPAW (B <= 10): new method.",
    )

    # Identify the bottleneck core's floor: its minimum achievable
    # testing time at the full SOC width.
    tables = build_time_tables(p31108, 64)
    bottleneck_floor = max(
        tables[core.name].min_time for core in p31108
    )

    # The SOC testing time can never go below that floor...
    final_time = rows[-1]["T_new"]
    assert final_time >= bottleneck_floor
    # ...and at large widths it should be pinned near it (the
    # saturation the paper reports: equal times from W=40 to W=64).
    wide_times = [row["T_new"] for row in rows if row["W"] >= 48]
    assert max(wide_times) <= 1.35 * bottleneck_floor
    assert max(wide_times) <= 1.05 * min(wide_times)
