"""Table 19 — p93791, P_NPAW with 1 <= B <= 10.

On the largest SOC the paper's free-B search settles on B = 3 for
most widths (p93791's big logic cores keep wide buses productive),
with testing times matching the fixed-B=3 results.

Shape checks: partitions are valid; the free-B result never loses
to fixed B=2; testing time keeps improving with W (no saturation —
unlike p31108, this SOC has no single dominating core).
"""

from _common import run_npaw_bench
from repro.optimize.co_optimize import co_optimize


def test_table19_p93791_npaw(benchmark, p93791, report):
    rows = run_npaw_bench(
        benchmark,
        report,
        p93791,
        result_name="table19_p93791_npaw",
        title="Table 19. p93791 stand-in, P_NPAW (B <= 10): new method.",
    )

    # Free-B at least matches fixed B=2 everywhere.
    for row in rows[:3]:
        fixed_b2 = co_optimize(p93791, row["W"], num_tams=2)
        assert row["T_new"] <= 1.02 * fixed_b2.testing_time

    # No saturation: W=64 is clearly better than W=16 (paper: 3.7x).
    assert rows[0]["T_new"] / rows[-1]["T_new"] > 2.0
