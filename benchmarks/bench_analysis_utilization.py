"""Figure-level claim of Section 1 — why multiple TAMs help.

The paper's introduction gives two reasons multiple TAMs cut testing
time: width-matched buses waste fewer wires on cores that cannot use
them, and more buses test more cores in parallel.  This bench makes
the argument quantitative on d695 at W=32: sweep B = 1..6, and report
testing time, wire-cycle utilization, and idle wire-cycles, plus the
optimality-certificate gap.

Shape checks: the best multi-TAM design beats B=1 substantially; the
total idle wire-cycles of the best design are below the single-bus
design's; certificates are coherent (gap >= 0 everywhere).
"""

from repro.analysis.sweep import sweep_tam_counts
from repro.report.tables import TextTable

WIDTH = 32
TAM_COUNTS = (1, 2, 3, 4, 5, 6)


def test_utilization_across_tam_counts(benchmark, d695, report):
    points = benchmark.pedantic(
        sweep_tam_counts,
        args=(d695, WIDTH, TAM_COUNTS),
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["B", "partition", "T (cycles)", "utilization",
         "idle wire-cycles", "certificate gap"],
        title=f"Section 1 quantified: d695 at W={WIDTH} across TAM "
              "counts.",
    )
    for point in points:
        table.add_row([
            point.num_tams,
            "+".join(map(str, point.partition)),
            point.testing_time,
            f"{point.wire_efficiency:.1%}",
            point.utilization.idle_wire_cycles,
            f"{point.certificate.gap:.2%}",
        ])
    report("analysis_utilization", table.render())

    by_b = {point.num_tams: point for point in points}
    single = by_b[1]
    best = min(points, key=lambda p: p.testing_time)

    # Reason (i) + (ii): some multi-TAM design clearly beats one bus.
    assert best.num_tams > 1
    assert best.testing_time < 0.75 * single.testing_time
    # The win comes from wasting fewer wire-cycles.
    assert best.utilization.idle_wire_cycles < \
        single.utilization.idle_wire_cycles
    assert best.wire_efficiency > single.wire_efficiency
    # Certificates are sound.
    for point in points:
        assert point.certificate.gap >= 0.0
