"""Tables 5 & 6 — p21241 (28 cores), P_PAW at B = 2.

Table 5 is the exhaustive method, Table 6 the new method, over
W = 16..64.  The paper reports the new method matching the
exhaustive testing times within +0..+9% with comparable-or-better
CPU times on this SOC.

Shape checks inherited from the shared harness: heuristic never
beats a proven-exact sweep, stays within the envelope, and both
methods improve monotonically with W.
"""

from _common import run_comparison_bench


def test_tables5_6_p21241_b2(benchmark, p21241, report):
    rows = run_comparison_bench(
        benchmark,
        report,
        p21241,
        num_tams=2,
        result_name="table05_06_p21241_b2",
        title="Tables 5/6. p21241 stand-in, B=2: exhaustive [8] vs "
              "new co-optimization method.",
    )
    # Paper (Tables 5/6): at W=16 the two methods coincide exactly on
    # this SOC; at least one width should agree closely here too.
    best_delta = min(row["delta_pct"] for row in rows)
    assert best_delta <= 5.0
