"""Persistent table store — cold build vs warm reload.

The store's pitch is simple: ``design_wrapper`` output depends only
on core structure, so pay for it once per machine, not once per
process.  This bench builds p93791's wrapper time tables cold
(every ``design_wrapper`` call), then reloads them from the on-disk
:class:`repro.service.store.TableStore` and asserts the warm path
performs **zero** wrapper designs and is decisively faster.
"""

import time

from repro.engine.cache import WrapperTableCache
from repro.report.experiments import rows_to_table
from repro.service.store import TableStore

WIDTH = 24


def test_warm_store_skips_wrapper_design(
    benchmark, report, p93791, tmp_path_factory
):
    store = TableStore(tmp_path_factory.mktemp("tables"))

    start = time.perf_counter()
    cold_cache = WrapperTableCache(p93791, store=store)
    cold_cache.tables(WIDTH)
    cold_seconds = time.perf_counter() - start
    assert cold_cache.design_calls() == len(p93791.cores) * WIDTH

    def warm_load():
        cache = WrapperTableCache(p93791, store=store)
        cache.tables(WIDTH)
        return cache

    start = time.perf_counter()
    warm_cache = benchmark.pedantic(warm_load, rounds=3, iterations=1)
    warm_seconds = (time.perf_counter() - start) / 3

    # The acceptance bar: a warm store serves every staircase with
    # zero design_wrapper calls...
    assert warm_cache.design_calls() == 0
    # ...and the tables answer exactly like the cold build's.
    cold_tables = cold_cache.tables(WIDTH)
    warm_tables = warm_cache.tables(WIDTH)
    for name, cold_table in cold_tables.items():
        assert warm_tables[name]._times == cold_table._times

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    rows = [{
        "soc": p93791.name,
        "W": WIDTH,
        "cold_s": f"{cold_seconds:.3f}",
        "warm_s": f"{warm_seconds:.3f}",
        "speedup": f"{speedup:.1f}x",
        "warm_designs": warm_cache.design_calls(),
    }]
    report(
        "service_store",
        rows_to_table(
            rows,
            ["soc", "W", "cold_s", "warm_s", "speedup", "warm_designs"],
            title="Persistent table store: cold build vs warm reload.",
        ),
    )
    # Parsing JSON beats running the wrapper designer by a wide
    # margin; 2x is a deliberately loose floor for noisy CI boxes.
    assert speedup > 2.0, (cold_seconds, warm_seconds)
