"""Ablation — escaping the paper's anomaly with a diversified polish.

The paper's conclusion documents a drawback of its method: the
partition ``Partition_evaluate`` returns (by heuristic testing time)
is not always the partition with the lowest testing time after the
final exact optimization, because the heuristic can prefer the wrong
number of TAMs.  This repository adds two opt-in mitigations:

* ``polish_top_k=k`` — polish the k best distinct partitions;
* ``polish_per_tam_count=True`` — keep and polish the best partition
  of *every* TAM count (diversity where the anomaly actually lives).

This bench quantifies both against the paper's method on d695 across
the full width sweep.
"""

from repro.optimize.co_optimize import co_optimize
from repro.report.tables import TextTable

WIDTHS = (16, 24, 32, 40, 48, 56, 64)


def test_ablation_anomaly_mitigation(benchmark, d695, report):
    rows = []

    def run():
        rows.clear()
        for width in WIDTHS:
            base = co_optimize(d695, width, num_tams=range(1, 11))
            top3 = co_optimize(d695, width, num_tams=range(1, 11),
                               polish_top_k=3)
            per_b = co_optimize(d695, width, num_tams=range(1, 11),
                                polish_per_tam_count=True)
            rows.append((width, base, top3, per_b))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        ["W", "paper method", "top-3 polish", "per-B polish",
         "per-B gain %", "per-B time (s)"],
        title="Ablation 5. Escaping the wrong-partition anomaly (d695, "
              "P_NPAW).",
    )
    gains = []
    for width, base, top3, per_b in rows:
        gain = (base.testing_time - per_b.testing_time) \
            / base.testing_time * 100
        gains.append(gain)
        table.add_row([
            width, base.testing_time, top3.testing_time,
            per_b.testing_time, round(gain, 2),
            round(per_b.elapsed_seconds, 2),
        ])
    report("ablation_anomaly", table.render())

    for width, base, top3, per_b in rows:
        # The mitigations can only improve on the paper's method.
        # (They are orthogonal diversity strategies — global top-k vs
        # per-B best — so neither dominates the other.)
        assert top3.testing_time <= base.testing_time
        assert per_b.testing_time <= base.testing_time

    # The anomaly genuinely bites somewhere in the sweep (the paper
    # saw it on p21241 at W=16 and W=64; our d695 data shows it too).
    assert max(gains) > 0.0
