"""Sharded intra-job partition sweep vs the serial engine.

Three claims, quantified on p93791 and archived in
``BENCH_partition_shard.json``:

* **single-job scaling** — sharding one (SOC, W, B) job's partition
  sweep across 4 workers runs it at least 3× faster than the serial
  sweep, asserted on the ISSUE's pinned job (p93791, W=32, B=5) and
  on the hot-job example from its motivation (W=48, B=5), with the
  merged outcome bit-identical in every field;
* **pruning survives sharding** — the shards' total work stays within
  a small factor of the serial sweep's (the shared incumbent keeps
  pruning power; without it the total would balloon);
* **cold-grid builds spread** — a cold 3-SOC grid's dense matrices
  build as pool tasks whose critical path (the longest single build)
  is well under the serial parent-side build the engine used to pay.

Measurement protocol: shards are scored *sequentially in-process*
(each timed alone) and their measured times are scheduled onto 4
workers with LPT — the decomposition's 4-worker makespan, plus the
real parent-side merge time.  This is deliberate: wall-clock pool
timings measure the machine's free cores (this box may have one),
while the makespan measures what the sharding itself achieves and is
what 4 free cores realize.  The pooled wall-clock for the same job is
recorded alongside, tagged with ``cpu_count``, and asserted only for
result identity — never for speed.
"""

import os
import time
from pathlib import Path

from common import append_history, bench_record

from repro.engine.batch import BatchJob, BatchRunner
from repro.engine.cache import WrapperTableCache
from repro.engine.kernel import KernelWorkspace, build_dense_matrix
from repro.partition.evaluate import partition_evaluate
from repro.partition.shard import (
    LocalBoard,
    merge_shard_outcomes,
    plan_shards,
    sweep_shard,
)
from repro.report.experiments import rows_to_table

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_partition_shard.json"
)

#: The modeled pool: the ISSUE's target of 4 workers, 16 shards (the
#: engine's own auto policy at 4 workers: 4× oversubscription).
WORKERS = 4
NUM_SHARDS = 16

#: (W, B, asserted 4-worker speedup floor): the ISSUE's pinned job
#: and its motivation's hot-job example.
SINGLE_JOBS = (
    (32, 5, 3.0),
    (48, 5, 3.0),
)

COLD_GRID_SOCS = ("d695", "p21241", "p31108")
COLD_GRID_WIDTH = 32


def _best_of(runs, fn):
    best_seconds = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        candidate = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, candidate
    return best_seconds, result


def _lpt_makespan(times, workers):
    """Longest-processing-time schedule of ``times`` onto ``workers``."""
    loads = [0.0] * workers
    for duration in sorted(times, reverse=True):
        slot = loads.index(min(loads))
        loads[slot] += duration
    return max(loads)


def run_single_job_rows(soc):
    """Serial vs sharded sweep on single p93791 jobs."""
    width_max = max(width for width, _, _ in SINGLE_JOBS)
    tables = WrapperTableCache(soc).table_list(width_max)
    rows = []
    for width, num_tams, floor in SINGLE_JOBS:
        matrix = build_dense_matrix(tables, width)
        serial_s, serial = _best_of(7, lambda: partition_evaluate(
            tables, width, num_tams, prune="lb", dense=matrix,
        ))

        def sharded():
            plan = plan_shards(width, (num_tams,), NUM_SHARDS)
            board = LocalBoard(plan.num_shards, 1)
            workspace = KernelWorkspace()
            outcomes = [
                sweep_shard(
                    matrix, spans, index, width, prune="lb",
                    board=board, workspace=workspace,
                )
                for index, spans in enumerate(plan.shards)
            ]
            merge_start = time.perf_counter()
            merged = merge_shard_outcomes(
                matrix, plan, outcomes, prune="lb",
            )
            merge_s = time.perf_counter() - merge_start
            return outcomes, merged, merge_s

        _, (outcomes, merged, merge_s) = _best_of(7, sharded)

        # Bit-identical in every observable field.
        assert merged.best == serial.best, (width, num_tams)
        assert merged.runners_up == serial.runners_up
        assert merged.stats == serial.stats

        shard_times = [o.elapsed_seconds for o in outcomes]
        makespan = _lpt_makespan(shard_times, WORKERS) + merge_s
        speedup = serial_s / makespan
        work_ratio = sum(shard_times) / serial_s
        assert speedup >= floor, (
            f"p93791 W={width} B={num_tams}: sharded speedup "
            f"{speedup:.2f}x at {WORKERS} workers below the "
            f"{floor}x floor (serial {serial_s*1000:.2f}ms, "
            f"{WORKERS}-worker makespan {makespan*1000:.2f}ms)"
        )
        # The shared incumbent must keep pruning power: total shard
        # work within 1.5x of the serial sweep's.
        assert work_ratio <= 1.5, (
            f"W={width} B={num_tams}: shards did {work_ratio:.2f}x "
            f"the serial work — incumbent sharing is broken"
        )
        rows.append({
            "soc": soc.name,
            "W": width,
            "B": num_tams,
            "T": serial.testing_time,
            "serial_ms": round(serial_s * 1000, 3),
            "shard_sum_ms": round(sum(shard_times) * 1000, 3),
            "merge_ms": round(merge_s * 1000, 3),
            "makespan4_ms": round(makespan * 1000, 3),
            "speedup4": round(speedup, 2),
            "work_ratio": round(work_ratio, 3),
        })
    return rows


def run_pool_wall_clock(soc):
    """The same single job end to end through a real 4-worker pool.

    Recorded, not speed-asserted: wall-clock here measures the
    machine's free cores, which CI runners and laptops do not
    guarantee.  Identity of the results *is* asserted.
    """
    width, num_tams, _ = SINGLE_JOBS[0]
    job = BatchJob(
        soc, width, num_tams, options={"polish": False},
    )
    inline_runner = BatchRunner(max_workers=1)
    inline_runner.run([job])  # warm the tables, like the pool below
    inline_s, inline = _best_of(
        3, lambda: inline_runner.run([job])
    )

    def pooled():
        with BatchRunner(
            max_workers=WORKERS, shard=NUM_SHARDS, persistent=True,
        ) as runner:
            runner.run([job])  # warm the pool and the segments
            return _best_of(3, lambda: runner.run([job]))

    pooled_s, pooled_result = pooled()
    assert pooled_result == inline
    return {
        "W": width,
        "B": num_tams,
        "inline_wall_ms": round(inline_s * 1000, 1),
        "sharded_pool_wall_ms": round(pooled_s * 1000, 1),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
    }


def run_cold_grid(socs):
    """Cold 3-SOC grid: serial parent builds vs the pooled critical path."""
    build_times = []
    for soc in socs:
        build_s, _ = _best_of(1, lambda: WrapperTableCache(
            soc
        ).table_list(COLD_GRID_WIDTH))
        build_times.append(build_s)
    serial_build = sum(build_times)
    critical_path = max(build_times)
    parallel_bound = serial_build / critical_path
    # "Measurably faster": with three SOCs of comparable size, the
    # pooled build's critical path must beat the serial parent build
    # clearly, not marginally.
    assert parallel_bound >= 1.5, (
        f"cold-grid build critical path {critical_path:.3f}s vs "
        f"serial {serial_build:.3f}s — pooling buys nothing"
    )

    jobs = [
        BatchJob(soc, COLD_GRID_WIDTH, 2, options={"polish": False})
        for soc in socs
    ]
    serial_wall, serial_results = _best_of(1, lambda: BatchRunner(
        max_workers=1
    ).run(jobs))
    pooled_wall, pooled_results = _best_of(1, lambda: BatchRunner(
        max_workers=WORKERS
    ).run(jobs))
    assert pooled_results == serial_results
    return {
        "socs": [soc.name for soc in socs],
        "W": COLD_GRID_WIDTH,
        "per_soc_build_ms": [
            round(build * 1000, 1) for build in build_times
        ],
        "serial_build_ms": round(serial_build * 1000, 1),
        "build_critical_path_ms": round(critical_path * 1000, 1),
        "build_parallel_speedup_bound": round(parallel_bound, 2),
        "serial_grid_wall_ms": round(serial_wall * 1000, 1),
        "pooled_grid_wall_ms": round(pooled_wall * 1000, 1),
        "cpu_count": os.cpu_count(),
    }


def test_partition_shard_speedup_and_identity(
    benchmark, report, p93791, d695, p21241, p31108
):
    rows = benchmark.pedantic(
        run_single_job_rows, args=(p93791,), rounds=1, iterations=1
    )
    report(
        "partition_shard",
        rows_to_table(
            rows,
            ["soc", "W", "B", "T", "serial_ms", "shard_sum_ms",
             "merge_ms", "makespan4_ms", "speedup4", "work_ratio"],
            title=f"Sharded single-job sweep, {NUM_SHARDS} shards "
                  f"on {WORKERS} workers (LPT makespan + merge).",
        ),
    )
    wall = run_pool_wall_clock(p93791)
    cold = run_cold_grid([d695, p21241, p31108])

    headline = next(
        (
            row["speedup4"] for row in rows
            if row["W"] == SINGLE_JOBS[0][0]
            and row["B"] == SINGLE_JOBS[0][1]
        ),
        None,
    )
    append_history(BENCH_JSON, bench_record(
        "bench_partition_shard",
        config={"workers": WORKERS, "num_shards": NUM_SHARDS},
        samples=rows + [
            dict(wall, kind="pool_wall_clock"),
            dict(cold, kind="cold_grid"),
        ],
        speedup=headline,
    ))
    print(f"[appended to {BENCH_JSON}]")
