"""Batch engine — the four embedded benchmarks swept in parallel.

The :class:`repro.engine.BatchRunner` fans (SOC, W) jobs over a
process pool with per-worker wrapper-table caches.  This bench runs
the four embedded SOCs at the smaller paper widths and asserts the
engine's core contract: the parallel grid reproduces, point for
point, the per-width testing times of the sequential pipeline
(``co_optimize`` per width, the seed's code path).
"""

from _common import BATCH_COLUMNS, run_batch_sweep
from repro.optimize.co_optimize import co_optimize
from repro.report.experiments import rows_to_table

WIDTHS = (16, 24, 32)

#: The exact polish is budgeted by wall clock; under pool contention
#: the default 30s can truncate a solve the uncontended sequential
#: run completes, which would make results load-dependent.  A budget
#: generous enough that every solve ends by optimality proof or node
#: exhaustion keeps parallel == sequential bit-for-bit.
OPTIONS = {"exact_time_limit": 600.0}


def test_batch_engine_matches_sequential(
    benchmark, report, d695, p21241, p31108, p93791
):
    socs = [d695, p21241, p31108, p93791]
    rows = benchmark.pedantic(
        run_batch_sweep,
        args=(socs, WIDTHS),
        kwargs={"max_workers": 4, "options": OPTIONS},
        rounds=1,
        iterations=1,
    )
    report(
        "batch_engine",
        rows_to_table(
            rows, BATCH_COLUMNS,
            title="Batch engine: four SOCs x widths, parallel grid.",
        ),
    )

    assert len(rows) == len(socs) * len(WIDTHS)
    by_key = {(row["soc"], row["W"]): row for row in rows}
    for soc in socs:
        for width in WIDTHS:
            sequential = co_optimize(soc, width, **OPTIONS)
            row = by_key[(soc.name, width)]
            assert row["T"] == sequential.testing_time, (soc.name, width)
            assert row["partition"] == "+".join(
                map(str, sequential.partition)
            )
