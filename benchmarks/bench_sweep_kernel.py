"""Dense sweep kernel vs the legacy ``Partition_evaluate`` path.

Two claims, quantified on d695 and p93791 and archived as the first
entries of the ``BENCH_*.json`` perf trajectory:

* **speed** — the kernel (with its outcome-identical lower-bound
  pruning) runs the p93791 W=32 P_NPAW sweep at least 5× faster than
  the legacy per-partition path, with the identical best testing
  time and winning partition;
* **fidelity** — with ``prune="lb"`` disabled, the kernel's
  ``PartitionStats`` (``num_completed``, efficiency) match the legacy
  path exactly on every Table-1 configuration (p21241, W=44..64,
  B=4,5), so the paper's pruning-efficiency protocol is untouched.

The timing table also lands in ``results/sweep_kernel.txt``; the
machine-readable record goes to ``BENCH_sweep_kernel.json`` at the
repository root (written by this bench, refreshed by the CI
perf-smoke step).
"""

import json
import time
from pathlib import Path

from repro.engine.cache import WrapperTableCache
from repro.partition.evaluate import partition_evaluate
from repro.report.experiments import rows_to_table

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_sweep_kernel.json"
)

#: The acceptance sweep: the paper's P_NPAW protocol, B = 1..10.
NPAW_COUNTS = range(1, 11)

#: (soc fixture name, W, required kernel+lb speedup).  Only p93791
#: W=32 carries a hard floor — d695 is small enough that fixed
#: per-sweep costs dominate and the margin is left soft.
SWEEPS = (
    ("d695", 24, None),
    ("d695", 32, None),
    ("p93791", 32, 5.0),
)

TABLE1_WIDTHS = (44, 48, 52, 56, 60, 64)
TABLE1_COUNTS = (4, 5)


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` calls; returns (seconds, result)."""
    best_seconds = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def run_kernel_speed_rows(socs):
    """Legacy vs kernel vs kernel+lb timings, one row per sweep."""
    rows = []
    for soc, width, floor in socs:
        tables = WrapperTableCache(soc).table_list(width)

        # Best-of-N damps shared-runner noise: a transient slowdown
        # must hit every kernel run *and* spare every legacy run to
        # move the ratio the wrong way.
        legacy_s, legacy = _best_of(3, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="legacy"))
        kernel_s, kernel = _best_of(5, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="kernel"))
        lb_s, pruned = _best_of(5, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="kernel", prune="lb"))

        assert kernel.testing_time == legacy.testing_time
        assert pruned.testing_time == legacy.testing_time
        assert kernel.best_partition == legacy.best_partition
        assert pruned.best_partition == legacy.best_partition
        assert kernel.best.assignment == legacy.best.assignment

        speedup = legacy_s / lb_s
        if floor is not None:
            assert speedup >= floor, (
                f"{soc.name} W={width}: kernel+lb speedup "
                f"{speedup:.1f}x below the {floor}x floor "
                f"(legacy {legacy_s:.3f}s, kernel+lb {lb_s:.3f}s)"
            )
        rows.append({
            "soc": soc.name,
            "W": width,
            "T": legacy.testing_time,
            "partition": "+".join(map(str, legacy.best_partition)),
            "legacy_s": round(legacy_s, 4),
            "kernel_s": round(kernel_s, 4),
            "kernel_lb_s": round(lb_s, 4),
            "speedup": round(speedup, 2),
            "lb_pruned": pruned.num_lb_pruned,
        })
    return rows


def test_sweep_kernel_speed_and_fidelity(
    benchmark, report, d695, p93791, p21241
):
    sweeps = [
        ({"d695": d695, "p93791": p93791}[name], width, floor)
        for name, width, floor in SWEEPS
    ]
    rows = benchmark.pedantic(
        run_kernel_speed_rows, args=(sweeps,), rounds=1, iterations=1
    )
    report(
        "sweep_kernel",
        rows_to_table(
            rows,
            ["soc", "W", "T", "partition", "legacy_s", "kernel_s",
             "kernel_lb_s", "speedup", "lb_pruned"],
            title="Dense sweep kernel vs legacy Partition_evaluate "
                  "(P_NPAW, B=1..10).",
        ),
    )

    # Fidelity on the Table-1 protocol: with lb pruning off, kernel
    # statistics are bit-identical to the legacy path on every cell.
    tables = WrapperTableCache(p21241).table_list(max(TABLE1_WIDTHS))
    for width in TABLE1_WIDTHS:
        for count in TABLE1_COUNTS:
            legacy = partition_evaluate(
                tables, width, count, engine="legacy"
            ).stats_for(count)
            kernel = partition_evaluate(
                tables, width, count, engine="kernel"
            ).stats_for(count)
            assert kernel.num_completed == legacy.num_completed, (
                width, count,
            )
            assert kernel.num_enumerated == legacy.num_enumerated
            assert kernel.efficiency == legacy.efficiency
            assert kernel.num_lb_pruned == 0

    BENCH_JSON.write_text(json.dumps({
        "schema": 1,
        "kind": "bench_sweep_kernel",
        "npaw_counts": [NPAW_COUNTS.start, NPAW_COUNTS.stop],
        "points": rows,
    }, indent=2) + "\n")
    print(f"[written to {BENCH_JSON}]")
