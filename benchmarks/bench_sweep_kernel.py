"""Dense sweep kernel vs the legacy ``Partition_evaluate`` path.

Two claims, quantified on d695 and p93791 and archived as the first
entries of the ``BENCH_*.json`` perf trajectory:

* **speed** — the kernel (with its outcome-identical lower-bound
  pruning) runs the p93791 W=32 P_NPAW sweep at least 5× faster than
  the legacy per-partition path, with the identical best testing
  time and winning partition;
* **fidelity** — with ``prune="lb"`` disabled, the kernel's
  ``PartitionStats`` (``num_completed``, efficiency) match the legacy
  path exactly on every Table-1 configuration (p21241, W=44..64,
  B=4,5), so the paper's pruning-efficiency protocol is untouched.

The timing table also lands in ``results/sweep_kernel.txt``; the
machine-readable record is *appended* to ``BENCH_sweep_kernel.json``
at the repository root in the shared history schema of
``benchmarks/common.py`` (refreshed by the CI perf-smoke step), and
the telemetry-overhead gate below holds the traced sweep to within
5% of the recorded headline speedup.
"""

import time
from pathlib import Path

from common import append_history, bench_record, load_bench

from repro.engine.cache import WrapperTableCache
from repro.partition.evaluate import partition_evaluate
from repro.report.experiments import rows_to_table

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_sweep_kernel.json"
)

#: The acceptance sweep: the paper's P_NPAW protocol, B = 1..10.
NPAW_COUNTS = range(1, 11)

#: (soc fixture name, W, required kernel+lb speedup).  Only p93791
#: W=32 carries a hard floor — d695 is small enough that fixed
#: per-sweep costs dominate and the margin is left soft.
SWEEPS = (
    ("d695", 24, None),
    ("d695", 32, None),
    ("p93791", 32, 5.0),
)

TABLE1_WIDTHS = (44, 48, 52, 56, 60, 64)
TABLE1_COUNTS = (4, 5)


def _best_of(runs, fn):
    """Best wall-clock of ``runs`` calls; returns (seconds, result)."""
    best_seconds = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, result


def run_kernel_speed_rows(socs):
    """Legacy vs kernel vs kernel+lb timings, one row per sweep."""
    rows = []
    for soc, width, floor in socs:
        tables = WrapperTableCache(soc).table_list(width)

        # Best-of-N damps shared-runner noise: a transient slowdown
        # must hit every kernel run *and* spare every legacy run to
        # move the ratio the wrong way.
        legacy_s, legacy = _best_of(3, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="legacy"))
        kernel_s, kernel = _best_of(5, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="kernel"))
        lb_s, pruned = _best_of(5, lambda: partition_evaluate(
            tables, width, NPAW_COUNTS, engine="kernel", prune="lb"))

        assert kernel.testing_time == legacy.testing_time
        assert pruned.testing_time == legacy.testing_time
        assert kernel.best_partition == legacy.best_partition
        assert pruned.best_partition == legacy.best_partition
        assert kernel.best.assignment == legacy.best.assignment

        speedup = legacy_s / lb_s
        if floor is not None:
            assert speedup >= floor, (
                f"{soc.name} W={width}: kernel+lb speedup "
                f"{speedup:.1f}x below the {floor}x floor "
                f"(legacy {legacy_s:.3f}s, kernel+lb {lb_s:.3f}s)"
            )
        rows.append({
            "soc": soc.name,
            "W": width,
            "T": legacy.testing_time,
            "partition": "+".join(map(str, legacy.best_partition)),
            "legacy_s": round(legacy_s, 4),
            "kernel_s": round(kernel_s, 4),
            "kernel_lb_s": round(lb_s, 4),
            "speedup": round(speedup, 2),
            "lb_pruned": pruned.num_lb_pruned,
        })
    return rows


def test_sweep_kernel_speed_and_fidelity(
    benchmark, report, d695, p93791, p21241
):
    sweeps = [
        ({"d695": d695, "p93791": p93791}[name], width, floor)
        for name, width, floor in SWEEPS
    ]
    rows = benchmark.pedantic(
        run_kernel_speed_rows, args=(sweeps,), rounds=1, iterations=1
    )
    report(
        "sweep_kernel",
        rows_to_table(
            rows,
            ["soc", "W", "T", "partition", "legacy_s", "kernel_s",
             "kernel_lb_s", "speedup", "lb_pruned"],
            title="Dense sweep kernel vs legacy Partition_evaluate "
                  "(P_NPAW, B=1..10).",
        ),
    )

    # Fidelity on the Table-1 protocol: with lb pruning off, kernel
    # statistics are bit-identical to the legacy path on every cell.
    tables = WrapperTableCache(p21241).table_list(max(TABLE1_WIDTHS))
    for width in TABLE1_WIDTHS:
        for count in TABLE1_COUNTS:
            legacy = partition_evaluate(
                tables, width, count, engine="legacy"
            ).stats_for(count)
            kernel = partition_evaluate(
                tables, width, count, engine="kernel"
            ).stats_for(count)
            assert kernel.num_completed == legacy.num_completed, (
                width, count,
            )
            assert kernel.num_enumerated == legacy.num_enumerated
            assert kernel.efficiency == legacy.efficiency
            assert kernel.num_lb_pruned == 0

    headline = next(
        (
            row["speedup"] for row in rows
            if row["soc"] == "p93791" and row["W"] == 32
        ),
        None,
    )
    append_history(BENCH_JSON, bench_record(
        "bench_sweep_kernel",
        config={
            "npaw_counts": [NPAW_COUNTS.start, NPAW_COUNTS.stop],
            "sweeps": [
                [name, width] for name, width, _ in SWEEPS
            ],
        },
        samples=rows,
        speedup=headline,
    ))
    print(f"[appended to {BENCH_JSON}]")


def _baseline_speedup():
    """The recorded p93791 W=32 headline speedup, or ``None``.

    Reads both the shared schema-2 record shape and the original
    schema-1 layout (which stored the rows as ``points``), so the
    overhead gate below works against any committed baseline.
    """
    doc = load_bench(BENCH_JSON)
    if doc is None:
        return None
    if doc.get("schema") == 2:
        return (doc.get("latest") or {}).get("speedup")
    for point in doc.get("points", []):
        if point.get("soc") == "p93791" and point.get("W") == 32:
            return point.get("speedup")
    return None


def test_sweep_kernel_telemetry_overhead(p93791):
    """Telemetry must be free when off and near-free when on.

    Off: the disabled tracer hands out the no-op singleton, cheap
    enough to sit in per-point code without a guard.  On: the traced
    p93791 W=32 sweep's speedup (legacy_s / kernel_lb_s — a ratio of
    same-process timings, so it transfers across machines) must stay
    within 5% of the recorded ``BENCH_sweep_kernel.json`` baseline:
    spans are sampled at partition/shard granularity, never inside
    the kernel inner loop.
    """
    from repro.obs import NOOP_SPAN, TRACER, span as obs_span

    assert TRACER.span("probe", any_meta=1) is NOOP_SPAN
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with obs_span("probe"):
            pass
    per_call = (time.perf_counter() - start) / calls
    assert per_call < 5e-6, (
        f"disabled span costs {per_call * 1e9:.0f}ns/call — the "
        f"no-op fast path has regressed"
    )

    baseline = _baseline_speedup()
    assert baseline is not None, (
        "no recorded baseline in BENCH_sweep_kernel.json"
    )

    tables = WrapperTableCache(p93791).table_list(32)
    TRACER.enable()
    try:
        legacy_s, legacy = _best_of(3, lambda: partition_evaluate(
            tables, 32, NPAW_COUNTS, engine="legacy"))
        lb_s, pruned = _best_of(5, lambda: partition_evaluate(
            tables, 32, NPAW_COUNTS, engine="kernel", prune="lb"))
    finally:
        TRACER.disable()
        TRACER.drain()

    assert pruned.testing_time == legacy.testing_time
    speedup = legacy_s / lb_s
    assert speedup >= 0.95 * baseline, (
        f"traced p93791 W=32 speedup {speedup:.2f}x regressed more "
        f"than 5% below the recorded {baseline:.2f}x baseline"
    )
