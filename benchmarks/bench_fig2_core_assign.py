"""Figure 2 — the Core_assign worked example, reproduced exactly.

The paper walks Core_assign through a 5-core / 3-TAM SOC (widths
32/16/8) and reports the final assignment (2,3,2,1,1) with TAM times
180/200/200.  This bench times the heuristic on that instance and
asserts bit-exact agreement.
"""

from repro.report.experiments import (
    FIG2_TIMES,
    FIG2_WIDTHS,
    run_fig2_example,
)
from repro.assign.core_assign import core_assign
from repro.report.tables import TextTable


def test_fig2_exact_reproduction(benchmark, report):
    result = benchmark(run_fig2_example)

    table = TextTable(
        ["core", "TAM", "testing time (cycles)"],
        title="Figure 2(b). Final assignment of cores to TAMs.",
    )
    assignment = result["assignment"].strip("()").split(",")
    for core_index, bus in enumerate(assignment):
        time = FIG2_TIMES[core_index][int(bus) - 1]
        table.add_row([core_index + 1, bus, time])
    report("fig2_core_assign", table.render())

    # Paper: cores -> TAMs (2,3,2,1,1); times 180/200/200; T = 200.
    assert result["assignment"] == "(2,3,2,1,1)"
    assert result["bus_times"] == (180, 200, 200)
    assert result["testing_time"] == 200


def test_fig2_early_abort(benchmark):
    """The Lines 18-20 abort against a best-known time of 150."""
    times = [list(row) for row in FIG2_TIMES]

    outcome = benchmark(
        core_assign, times, list(FIG2_WIDTHS), 150
    )
    assert not outcome.completed
    assert outcome.testing_time == 150
