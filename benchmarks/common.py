"""Shared record schema for the ``BENCH_*.json`` perf trajectory.

Every perf-bearing benchmark archives its machine-readable result at
the repository root in one shape, so the files can be compared across
benches and across time::

    {
      "schema": 2,
      "kind": "<bench name>",
      "latest": <record>,
      "history": [<record>, ...]          # oldest first, bounded
    }

where each ``<record>`` is :func:`bench_record`'s output::

    {
      "name": "<bench name>",
      "config": {...},                    # what was measured
      "samples": [...],                   # the measured rows
      "speedup": <headline ratio or None>,
      "cpu_count": <os.cpu_count()>,
      "timestamp": <unix seconds>
    }

``append_history`` keeps every previous run in ``history`` (bounded)
instead of overwriting — the trajectory is the point: a perf
regression shows up as the newest entry breaking the trend.  A
pre-existing schema-1 file (the old write-the-dict-wholesale form) is
preserved verbatim as the first history entry under a ``legacy`` key,
never dropped.

The ``speedup`` headline is a ratio of two wall-clock times measured
in the same process on the same inputs, so it transfers across
machines in a way absolute milliseconds do not; CI floors are set
against it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

#: How many history entries a BENCH_*.json retains (oldest dropped).
HISTORY_LIMIT = 50

BENCH_SCHEMA = 2


def bench_record(
    name: str,
    config: Dict[str, Any],
    samples: List[Dict[str, Any]],
    speedup: Optional[float] = None,
) -> Dict[str, Any]:
    """One benchmark run in the shared result shape."""
    return {
        "name": name,
        "config": config,
        "samples": samples,
        "speedup": speedup,
        "cpu_count": os.cpu_count(),
        "timestamp": time.time(),
    }


def load_bench(path: Path) -> Optional[Dict[str, Any]]:
    """The parsed ``BENCH_*.json`` document, or ``None`` if absent."""
    if not path.exists():
        return None
    return json.loads(path.read_text())


def latest_record(path: Path) -> Optional[Dict[str, Any]]:
    """The newest :func:`bench_record` stored at ``path``, if any.

    Schema-1 files predate the record shape and answer ``None`` —
    callers that need a baseline out of one read its fields directly.
    """
    doc = load_bench(path)
    if doc is None or doc.get("schema") != BENCH_SCHEMA:
        return None
    return doc.get("latest")


def append_history(
    path: Path,
    record: Dict[str, Any],
    keep: int = HISTORY_LIMIT,
) -> Dict[str, Any]:
    """Append ``record`` to the trajectory at ``path`` and rewrite it.

    Returns the document written.  An existing schema-1 file is
    migrated: the old document rides on as ``history[0]`` under a
    ``legacy`` key.
    """
    doc = load_bench(path)
    if doc is None:
        history: List[Dict[str, Any]] = []
    elif doc.get("schema") == BENCH_SCHEMA:
        history = list(doc.get("history", []))
    else:
        history = [{"legacy": doc}]
    history.append(record)
    history = history[-keep:]
    document = {
        "schema": BENCH_SCHEMA,
        "kind": record["name"],
        "latest": record,
        "history": history,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return document
