"""Tables 9 & 10 — p31108 (19 cores, memory-dominated), P_PAW at B = 2.

The paper reports the new method matching the exhaustive testing
times exactly at most widths on this SOC (ΔT = +0.00% for W >= 40),
because the bottleneck memory core dominates both solutions.
"""

from _common import run_comparison_bench


def test_tables9_10_p31108_b2(benchmark, p31108, report):
    rows = run_comparison_bench(
        benchmark,
        report,
        p31108,
        num_tams=2,
        result_name="table09_10_p31108_b2",
        title="Tables 9/10. p31108 stand-in, B=2: exhaustive [8] vs "
              "new co-optimization method.",
    )
    # Paper: exact agreement at several widths (ΔT = +0.00%).  On the
    # stand-in, require close agreement at the widest configurations.
    wide_rows = [row for row in rows if row["W"] >= 48]
    assert min(row["delta_pct"] for row in wide_rows) <= 3.0
