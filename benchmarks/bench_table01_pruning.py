"""Table 1 — efficiency of Partition_evaluate's pruning (SOC p21241).

The paper reports, for W = 44..64 and B = 4, 5 on p21241: the number
of unique partitions P(W, B), the number N_eval actually evaluated to
completion, and the efficiency E = N_eval / P(W, B).  Its headline:
on average only ~2% of partitions survive pruning.

Shape checks: E stays small for every cell, and the average is in the
paper's regime (a few percent).
"""

from repro.report.experiments import run_table1, rows_to_table

WIDTHS = (44, 48, 52, 56, 60, 64)
TAM_COUNTS = (4, 5)


def test_table1_pruning_efficiency(benchmark, p21241, report):
    rows = benchmark.pedantic(
        run_table1,
        args=(p21241,),
        kwargs={"widths": WIDTHS, "tam_counts": TAM_COUNTS},
        rounds=1,
        iterations=1,
    )

    columns = ["W"]
    for count in TAM_COUNTS:
        columns += [f"P(W,{count})", f"Neval(B={count})", f"E(B={count})"]
    report(
        "table01_pruning",
        rows_to_table(
            rows, columns,
            title="Table 1. Efficiency of the Partition_evaluate "
                  "heuristic (p21241 stand-in).",
        ),
    )

    efficiencies = [
        row[f"E(B={count})"] for row in rows for count in TAM_COUNTS
    ]
    # Every cell prunes hard; Table 1's worst entry is 0.1 (10%).
    assert all(e <= 0.15 for e in efficiencies)
    # Average in the paper's "on average only 2%" regime.
    assert sum(efficiencies) / len(efficiencies) <= 0.05
    # N_eval is bounded by the partition count everywhere.
    for row in rows:
        for count in TAM_COUNTS:
            assert row[f"Neval(B={count})"] <= row[f"P(W,{count})"]
