"""Ablation — what each design choice in the paper's method buys.

Not a table in the paper, but DESIGN.md calls out three design
choices worth quantifying on d695:

1. *Early abort* (Lines 18-20 of Core_assign): disabling it must not
   change the answer but must evaluate many more partitions to
   completion.
2. *Enumerator*: the paper's ``Increment`` odometer vs the canonical
   duplicate-free enumeration — same best result, strictly more
   partitions enumerated by the odometer.
3. *Final exact polish*: never hurts, and measurably helps on at
   least some width.
4. *Core_assign vs exact assignment* (Section 2's claim that the
   heuristic runs orders of magnitude faster than the ILP): timed
   head-to-head on a fixed partition.
"""

import time

from repro.assign.core_assign import core_assign
from repro.assign.exact import exact_assign
from repro.optimize.co_optimize import co_optimize
from repro.partition.evaluate import partition_evaluate
from repro.report.tables import TextTable
from repro.wrapper.pareto import build_time_tables

WIDTH = 32
TAM_COUNTS = range(1, 6)


def _tables(soc, width=WIDTH):
    tables = build_time_tables(soc, width)
    return [tables[core.name] for core in soc.cores]


def test_ablation_early_abort(benchmark, d695, report):
    table_list = _tables(d695)

    pruned = benchmark.pedantic(
        partition_evaluate,
        args=(table_list, WIDTH, TAM_COUNTS),
        kwargs={"prune": True},
        rounds=1, iterations=1,
    )
    unpruned = partition_evaluate(
        table_list, WIDTH, TAM_COUNTS, prune=False
    )

    rendered = TextTable(
        ["variant", "completed evaluations", "best T (cycles)"],
        title="Ablation 1. Early abort in Core_assign (d695, W=32).",
    )
    for label, result in (("with abort", pruned),
                          ("without abort", unpruned)):
        rendered.add_row([
            label,
            sum(s.num_completed for s in result.stats),
            result.testing_time,
        ])
    report("ablation_early_abort", rendered.render())

    assert pruned.testing_time == unpruned.testing_time
    assert (
        sum(s.num_completed for s in pruned.stats)
        < 0.5 * sum(s.num_completed for s in unpruned.stats)
    )


def test_ablation_enumerator(benchmark, d695, report):
    table_list = _tables(d695)

    unique = benchmark.pedantic(
        partition_evaluate,
        args=(table_list, WIDTH, TAM_COUNTS),
        kwargs={"enumerator": "unique"},
        rounds=1, iterations=1,
    )
    odometer = partition_evaluate(
        table_list, WIDTH, TAM_COUNTS, enumerator="increment"
    )

    rendered = TextTable(
        ["enumerator", "partitions enumerated", "best T (cycles)"],
        title="Ablation 2. Partition enumerator (d695, W=32).",
    )
    for label, result in (("unique (ours)", unique),
                          ("Increment odometer (paper)", odometer)):
        rendered.add_row([
            label,
            sum(s.num_enumerated for s in result.stats),
            result.testing_time,
        ])
    report("ablation_enumerator", rendered.render())

    assert unique.testing_time == odometer.testing_time
    assert (
        sum(s.num_enumerated for s in unique.stats)
        <= sum(s.num_enumerated for s in odometer.stats)
    )


def test_ablation_final_polish(benchmark, d695, report):
    widths = (16, 24, 32, 40)
    rendered = TextTable(
        ["W", "heuristic T", "polished T", "gain %"],
        title="Ablation 3. Final exact optimization step (d695).",
    )
    gains = []

    def run():
        rendered.rows.clear()
        gains.clear()
        for width in widths:
            result = co_optimize(d695, width, num_tams=TAM_COUNTS)
            heuristic_t = result.search.testing_time
            polished_t = result.testing_time
            gain = (heuristic_t - polished_t) / heuristic_t * 100
            gains.append(gain)
            rendered.add_row([
                width, heuristic_t, polished_t, round(gain, 2),
            ])
        return gains

    benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_final_polish", rendered.render())

    assert all(gain >= -1e-9 for gain in gains)


def test_ablation_core_assign_vs_exact_speed(benchmark, p93791, report):
    """Section 2's claim: the heuristic is orders of magnitude faster."""
    tables = _tables(p93791, width=64)
    widths = [9, 16, 39]
    times = [[t.time(w) for w in widths] for t in tables]

    def heuristic_many(repeats=200):
        for _ in range(repeats):
            core_assign(times, widths)

    start = time.monotonic()
    heuristic_many()
    heuristic_per_call = (time.monotonic() - start) / 200

    start = time.monotonic()
    exact = exact_assign(times, widths, time_limit=30.0)
    exact_elapsed = time.monotonic() - start

    benchmark.pedantic(core_assign, args=(times, widths),
                       rounds=5, iterations=20)

    rendered = TextTable(
        ["solver", "seconds per call", "T (cycles)"],
        title="Ablation 4. Core_assign vs exact assignment "
              "(p93791 stand-in, 9+16+39).",
    )
    outcome = core_assign(times, widths)
    rendered.add_row([
        "Core_assign (heuristic)", f"{heuristic_per_call:.6f}",
        outcome.testing_time,
    ])
    rendered.add_row([
        "branch-and-bound (exact)", f"{exact_elapsed:.6f}",
        exact.result.testing_time,
    ])
    report("ablation_assign_speed", rendered.render())

    assert exact.result.testing_time <= outcome.testing_time
    # "Core_assign executes two orders of magnitude faster" — require
    # at least 10x here to stay robust.
    assert heuristic_per_call * 10 <= max(exact_elapsed, 1e-6)
