"""Shared assertions and rendering for the Philips-SOC benchmarks.

The three Philips SOCs are deterministic stand-ins built from the
paper's published ranges, so these benches check the paper's
*relative* claims (heuristic vs exhaustive quality, CPU advantage,
monotonicity, saturation) rather than absolute cycle counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.engine import BatchRunner, grid_rows
from repro.engine.batch import BATCH_COLUMNS
from repro.report.experiments import (
    PAPER_WIDTHS,
    run_npaw,
    run_paw_comparison,
    rows_to_table,
)

COMPARISON_COLUMNS = [
    "W", "old_partition", "T_old", "t_old_s",
    "new_partition", "T_new", "t_new_s", "delta_pct", "cpu_ratio",
]
NPAW_COLUMNS = ["W", "B", "partition", "T_new", "t_new_s"]


def run_batch_sweep(
    socs: Sequence,
    widths: Sequence[int],
    max_workers: "int | None" = None,
    options: "Dict[str, object] | None" = None,
) -> List[Dict[str, object]]:
    """Sweep ``socs`` x ``widths`` through the parallel batch engine.

    ``options`` are forwarded to every job's ``co_optimize`` call.
    Returns one row per grid point in job order, ready for
    :func:`rows_to_table` with ``BATCH_COLUMNS``.
    """
    runner = BatchRunner(max_workers=max_workers)
    return grid_rows(runner.run_grid(socs, widths, options=options))


def run_comparison_bench(
    benchmark,
    report,
    soc,
    num_tams: int,
    result_name: str,
    title: str,
    widths: Sequence[int] = PAPER_WIDTHS,
    delta_tolerance_pct: float = 25.0,
    exhaustive_time_per_partition: float = 2.0,
    exhaustive_total_time: float = 180.0,
) -> List[Dict[str, object]]:
    """Run one fixed-B comparison table and assert the paper's shape."""
    rows = benchmark.pedantic(
        run_paw_comparison,
        args=(soc, num_tams),
        kwargs={
            "widths": widths,
            "exhaustive_time_per_partition": exhaustive_time_per_partition,
            "exhaustive_total_time": exhaustive_total_time,
        },
        rounds=1,
        iterations=1,
    )
    report(result_name, rows_to_table(rows, COMPARISON_COLUMNS, title=title))

    for row in rows:
        if row["old_complete"]:
            # The heuristic can never beat a proven-exact sweep...
            assert row["delta_pct"] >= -1e-9, row
        # ...and the paper's envelope keeps it within ~20% above
        # (worst entry in the paper: +17.62%; allow a little slack
        # on the synthesized instances).
        assert row["delta_pct"] <= delta_tolerance_pct, row

    old_times = [row["T_old"] for row in rows]
    new_times = [row["T_new"] for row in rows]
    assert all(a >= 0.98 * b for a, b in zip(old_times, old_times[1:]))
    assert all(a >= 0.98 * b for a, b in zip(new_times, new_times[1:]))
    return rows


def run_npaw_bench(
    benchmark,
    report,
    soc,
    result_name: str,
    title: str,
    widths: Sequence[int] = PAPER_WIDTHS,
    max_tams: int = 10,
) -> List[Dict[str, object]]:
    """Run one P_NPAW table and assert the paper's shape."""
    rows = benchmark.pedantic(
        run_npaw,
        args=(soc,),
        kwargs={"widths": widths, "max_tams": max_tams},
        rounds=1,
        iterations=1,
    )
    report(
        result_name,
        rows_to_table(rows, NPAW_COLUMNS + ["assignment"], title=title),
    )

    times = [row["T_new"] for row in rows]
    assert all(a >= 0.98 * b for a, b in zip(times, times[1:]))
    for row in rows:
        assert sum(map(int, row["partition"].split("+"))) == row["W"]
        assert 1 <= row["B"] <= max_tams
    return rows
