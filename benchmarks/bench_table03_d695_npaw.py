"""Table 3 — d695, problem P_NPAW (free number of TAMs, B <= 10).

The paper lets the new method choose B per width and reports that at
W >= 48 the best architectures use 5-6 TAMs and beat the best B<=3
exhaustive results of [8] (e.g. 12941 cycles at W=56 vs 13207).

Shape checks:
* per-width testing time at free B is never worse than at B=3;
* at the largest widths the chosen B exceeds 3 (more TAMs genuinely
  help, the paper's motivating observation);
* testing time is (near-)monotone in W.
"""

from repro.optimize.co_optimize import co_optimize
from repro.report.experiments import PAPER_WIDTHS, run_npaw, rows_to_table

COLUMNS = ["W", "B", "partition", "T_new", "t_new_s", "assignment"]


def test_table3_d695_npaw(benchmark, d695, report):
    rows = benchmark.pedantic(
        run_npaw,
        args=(d695,),
        kwargs={"widths": PAPER_WIDTHS, "max_tams": 10},
        rounds=1,
        iterations=1,
    )

    report(
        "table03_d695_npaw",
        rows_to_table(
            rows, COLUMNS,
            title="Table 3. d695, P_NPAW (B <= 10): new method.",
        ),
    )

    times = [row["T_new"] for row in rows]
    assert all(a >= 0.98 * b for a, b in zip(times, times[1:]))

    # Free-B never loses to fixed B=3 *before the exact polish* (its
    # search space strictly contains the B=3 partitions).  After the
    # polish the free-B pick can occasionally lose by a few percent —
    # the anomaly the paper documents in Sections 4.2/5 — so the
    # post-polish check gets slack.
    for row in rows:
        fixed_b3 = co_optimize(d695, row["W"], num_tams=3)
        assert row["T_heuristic"] <= fixed_b3.search.testing_time
        assert row["T_new"] <= 1.08 * fixed_b3.testing_time

    # At large widths more than 3 TAMs win (paper: B=5,6 at W>=48).
    large_width_b = [row["B"] for row in rows if row["W"] >= 48]
    assert max(large_width_b) > 3
