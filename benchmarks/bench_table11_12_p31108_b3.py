"""Tables 11 & 12 — p31108, P_PAW at B = 3.

The paper's exhaustive runs at B=3 on this SOC took 200-11000 CPU
seconds per width (its ILP models were "particularly intractable"),
while the new method needed ~10s — the clearest CPU-advantage data
in the paper.  Both methods converge to 544579 cycles at W >= 40:
the bottleneck-core lower bound.

Shape checks: heuristic within the envelope; both methods saturate
to the *same* value at large W (the bottleneck core's floor); the
heuristic's CPU never exceeds the exhaustive sweep's at B=3.
"""

from _common import run_comparison_bench
from repro.schedule.makespan import saturation_lower_bound
from repro.wrapper.pareto import build_time_tables


def test_tables11_12_p31108_b3(benchmark, p31108, report):
    rows = run_comparison_bench(
        benchmark,
        report,
        p31108,
        num_tams=3,
        result_name="table11_12_p31108_b3",
        title="Tables 11/12. p31108 stand-in, B=3: exhaustive [8] vs "
              "new co-optimization method.",
    )

    # Near-agreement at scale: once W is large the two methods sit
    # within a few percent (the paper: identical 544579 cycles for
    # W >= 40) and extra width buys almost nothing at B=3 — the
    # memory-dominated SOC's buses are already saturated.
    wide = [row for row in rows if row["W"] >= 48]
    assert all(row["delta_pct"] <= 5.0 for row in wide)
    wide_new = [row["T_new"] for row in wide]
    assert max(wide_new) <= 1.10 * min(wide_new)

    # The saturation value is explained by the bottleneck-core bound:
    # the slowest core at its best width within the partition.
    tables = build_time_tables(p31108, 64)
    per_core_floor = max(
        tables[core.name].time(64) for core in p31108
    )
    final = rows[-1]["T_new"]
    assert final >= per_core_floor

    # CPU: the new method never costs more than exhaustive at B=3.
    assert all(row["cpu_ratio"] <= 1.5 for row in rows)
