"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures:
it prints the paper-layout ASCII table, appends it to
``results/<name>.txt`` next to this directory, and asserts the
qualitative shape the paper reports (who wins, by roughly what
factor, where behaviour saturates).  Absolute cycle counts differ
from the paper — the Philips SOCs are synthesized stand-ins
(DESIGN.md §4) — but every relative claim is checked.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.soc.data import get_benchmark

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def d695():
    return get_benchmark("d695")


@pytest.fixture(scope="session")
def p21241():
    return get_benchmark("p21241")


@pytest.fixture(scope="session")
def p31108():
    return get_benchmark("p31108")


@pytest.fixture(scope="session")
def p93791():
    return get_benchmark("p93791")


@pytest.fixture(scope="session")
def report():
    """Write a rendered table to results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report
