"""Table 2 — d695, problem P_PAW at B = 2 and B = 3.

The paper's four sub-tables compare, per width W = 16..64:
(a)/(c) the exhaustive method of [8] (exact assignment per partition)
against (b)/(d) the new co-optimization method — partition, testing
time, CPU time, ΔT% and the CPU ratio.

Shape checks (the paper's Section 4.1 claims):
* the new method's testing time is within a few percent of the
  exhaustive result at every width (paper range: +0% .. +19%);
* the new method is never slower than the exhaustive sweep, and is
  dramatically faster at the larger B;
* testing time decreases monotonically with W for both methods.
"""

import pytest

from repro.report.experiments import (
    PAPER_WIDTHS,
    run_paw_comparison,
    rows_to_table,
)

COLUMNS = [
    "W", "old_partition", "T_old", "t_old_s",
    "new_partition", "T_new", "t_new_s", "delta_pct", "cpu_ratio",
]


@pytest.mark.parametrize("num_tams", [2, 3])
def test_table2_d695(benchmark, d695, report, num_tams):
    rows = benchmark.pedantic(
        run_paw_comparison,
        args=(d695, num_tams),
        kwargs={"widths": PAPER_WIDTHS},
        rounds=1,
        iterations=1,
    )

    label = "ab" if num_tams == 2 else "cd"
    report(
        f"table02{label}_d695_b{num_tams}",
        rows_to_table(
            rows, COLUMNS,
            title=f"Table 2({label}). d695, B={num_tams}: exhaustive "
                  "[8] vs new co-optimization method.",
        ),
    )

    for row in rows:
        # Exhaustive ran to proven optimality on this small SOC.
        assert row["old_complete"]
        # Heuristic never beats the exact sweep, and stays within
        # the paper's envelope (its worst entry is +19.33%; allow a
        # little slack for the reconstructed d695 data).
        assert -1e-9 <= row["delta_pct"] <= 23.0

    old_times = [row["T_old"] for row in rows]
    new_times = [row["T_new"] for row in rows]
    # Exhaustive is exactly monotone in W; the heuristic may show
    # tiny LPT-style anomalies (the paper documents them), so allow
    # 2% slack there.
    assert all(a >= b for a, b in zip(old_times, old_times[1:]))
    assert all(a >= 0.98 * b for a, b in zip(new_times, new_times[1:]))

    # W=16 -> W=64 improves roughly 2-3x (paper: 45055 -> 18205 at
    # B=2, 42568 -> 12941 at B=3).
    assert new_times[0] / new_times[-1] > 1.8
