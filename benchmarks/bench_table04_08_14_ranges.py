"""Tables 4, 8, 14 — the per-class core-data ranges of the Philips SOCs.

These tables are the *published inputs* our SOC stand-ins are
synthesized from, so the bench regenerates each table from the built
SOC and asserts bit-exact agreement with the paper's numbers — the
substitution contract of DESIGN.md §4.1.
"""

import pytest

from repro.report.experiments import run_range_table, rows_to_table

COLUMNS = ["circuit", "cores", "patterns", "ios", "chains", "lengths"]

#: (fixture, table number, expected logic row, expected memory row).
EXPECTED = {
    "p21241": (
        "Table 4",
        {"cores": "22", "patterns": "1-785", "ios": "37-1197",
         "chains": "1-31", "lengths": "1-400"},
        {"cores": "6", "patterns": "222-12324", "ios": "52-148"},
    ),
    "p31108": (
        "Table 8",
        {"cores": "4", "patterns": "210-745", "ios": "109-428",
         "chains": "1-29", "lengths": "8-806"},
        {"cores": "15", "patterns": "128-12236", "ios": "11-87"},
    ),
    "p93791": (
        "Table 14",
        {"cores": "14", "patterns": "11-6127", "ios": "109-813",
         "chains": "11-46", "lengths": "1-521"},
        {"cores": "18", "patterns": "42-3085", "ios": "21-396"},
    ),
}


@pytest.mark.parametrize("soc_name", sorted(EXPECTED))
def test_range_tables(benchmark, request, report, soc_name):
    soc = request.getfixturevalue(soc_name)
    rows = benchmark(run_range_table, soc)

    table_number, logic_expected, memory_expected = EXPECTED[soc_name]
    report(
        f"{table_number.lower().replace(' ', '')}_{soc_name}_ranges",
        rows_to_table(
            rows, COLUMNS,
            title=f"{table_number}. Ranges in test data for the "
                  f"{len(soc)} cores in {soc_name}.",
        ),
    )

    logic_row = next(r for r in rows if r["circuit"] == "Logic cores")
    memory_row = next(r for r in rows if r["circuit"] == "Memory cores")
    for key, value in logic_expected.items():
        assert logic_row[key] == value, (soc_name, "logic", key)
    for key, value in memory_expected.items():
        assert memory_row[key] == value, (soc_name, "memory", key)
    assert memory_row["chains"] == "0-0"
    assert memory_row["lengths"] == "-"
