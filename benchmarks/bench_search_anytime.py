"""Anytime search vs exhaustive enumeration on the largest SOC.

The search tier's economic claim, quantified on p93791 at W=32 over
B ∈ 1..4 and archived in ``BENCH_search_anytime.json``:

* **time-to-within-5%** — a seeded search reaches a testing time
  within 5% of the exhaustive optimum in far less wall-clock than the
  exhaustive enumeration's total runtime (the headline ``speedup``);
* **certificate soundness** — every search result reports an
  incumbent at or above its admissible bound and a non-negative gap,
  at every budget on the ladder;
* **determinism** — re-running the winning budget with the same seed
  reproduces the result bit for bit.

Measurement protocol: the wrapper time tables are built once and
shared by both sides, so the comparison is optimizer vs optimizer,
not cache-cold vs cache-warm.  The exhaustive baseline is the
[8]-style enumeration (every partition solved exactly); the search
ladder runs one ``evaluate_point(mode="search")`` per eval budget,
inline, and the time-to-within-5% sample is the full wall-clock of
the *smallest* budget whose answer lands within 5% — charging the
search for its exact polish, not just its heuristic loop.

Not wired into CI's smoke job (the exhaustive baseline alone runs
minutes); the CI ``search-smoke`` job asserts the gap-0 contract on
d695 instead, where the bound is tight and the proof is instant.
"""

import time
from pathlib import Path

from common import append_history, bench_record

from repro.analysis.sweep import evaluate_point
from repro.optimize.exhaustive import exhaustive_optimize
from repro.report.experiments import rows_to_table
from repro.wrapper.pareto import build_time_tables

BENCH_JSON = Path(__file__).resolve().parent.parent / (
    "BENCH_search_anytime.json"
)

WIDTH = 32
TAM_COUNTS = (1, 2, 3, 4)
SEED = 7
STRATEGY = "ga"
#: Ascending eval budgets; the smallest one within 5% of optimum is
#: the time-to-within-5% sample.
BUDGET_LADDER = (250, 1000, 4000)
TARGET = 0.05


def _search(soc, tables, eval_budget):
    start = time.perf_counter()
    point = evaluate_point(
        soc, WIDTH, num_tams=TAM_COUNTS, tables=tables,
        mode="search", search_strategy=STRATEGY, seed=SEED,
        eval_budget=eval_budget, time_budget=600.0,
    )
    return time.perf_counter() - start, point


def test_search_reaches_5pct_faster_than_exhaustive(report, p93791):
    tables_start = time.perf_counter()
    tables = build_time_tables(p93791, WIDTH)
    tables_s = time.perf_counter() - tables_start

    exhaustive_start = time.perf_counter()
    exhaustive = exhaustive_optimize(
        p93791, WIDTH, num_tams=TAM_COUNTS, tables=tables,
    )
    exhaustive_s = time.perf_counter() - exhaustive_start
    optimum = exhaustive.best.testing_time

    rows = []
    winner = None
    for eval_budget in BUDGET_LADDER:
        elapsed, point = _search(p93791, tables, eval_budget)
        certificate = point.search.certificate
        # Certificate soundness at every budget.
        assert certificate.testing_time == point.testing_time
        assert certificate.testing_time >= certificate.bound
        assert certificate.gap >= 0.0
        vs_optimum = point.testing_time / optimum - 1.0
        assert vs_optimum >= -1e-12, "beat the exhaustive optimum?"
        rows.append({
            "eval_budget": eval_budget,
            "T": point.testing_time,
            "B": point.num_tams,
            "vs_optimum": round(vs_optimum, 4),
            "cert_gap": round(certificate.gap, 4),
            "terminated_by": certificate.terminated_by,
            "search_s": round(elapsed, 2),
        })
        if winner is None and vs_optimum <= TARGET:
            winner = (eval_budget, elapsed, point)

    assert winner is not None, (
        f"no budget on {BUDGET_LADDER} landed within {TARGET:.0%} "
        f"of the exhaustive optimum {optimum}"
    )
    eval_budget, to_within_s, point = winner
    speedup = exhaustive_s / to_within_s
    assert to_within_s < exhaustive_s, (
        f"search needed {to_within_s:.1f}s to get within {TARGET:.0%} "
        f"— no faster than the {exhaustive_s:.1f}s exhaustive run"
    )

    # Same seed, same budget: bit-identical replay.
    _, replay = _search(p93791, tables, eval_budget)
    assert replay.testing_time == point.testing_time
    assert replay.partition == point.partition
    assert replay.search.trajectory == point.search.trajectory

    report(
        "search_anytime",
        rows_to_table(
            rows,
            ["eval_budget", "T", "B", "vs_optimum", "cert_gap",
             "terminated_by", "search_s"],
            title=(
                f"Anytime {STRATEGY.upper()} (seed {SEED}) vs "
                f"exhaustive on p93791 W={WIDTH} B∈{{1..4}}: "
                f"optimum {optimum} in {exhaustive_s:.1f}s; within "
                f"{TARGET:.0%} after {to_within_s:.1f}s "
                f"({speedup:.1f}x)."
            ),
        ),
    )
    append_history(BENCH_JSON, bench_record(
        "bench_search_anytime",
        config={
            "soc": "p93791", "W": WIDTH, "B": list(TAM_COUNTS),
            "strategy": STRATEGY, "seed": SEED,
            "budget_ladder": list(BUDGET_LADDER), "target": TARGET,
        },
        samples=rows + [{
            "kind": "baseline",
            "optimum": optimum,
            "exhaustive_s": round(exhaustive_s, 2),
            "tables_s": round(tables_s, 2),
            "all_exact": exhaustive.all_exact,
            "time_to_within_5pct_s": round(to_within_s, 2),
            "winning_eval_budget": eval_budget,
        }],
        speedup=round(speedup, 2),
    ))
    print(f"[appended to {BENCH_JSON}]")
