"""Service smoke — serve, submit, verify, shut down.

Starts `repro-tam serve` as a real subprocess, submits a small d695
grid through :class:`repro.service.ServiceClient`, checks the answers
against the in-process :class:`repro.engine.BatchRunner`, re-submits
the identical grid (served from memo, no re-execution), and shuts the
server down cleanly.  Exits non-zero on any mismatch — this is the
script the CI service-smoke job runs.

Run:  PYTHONPATH=src python examples/service_smoke.py
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.engine.batch import BatchJob, BatchRunner
from repro.service.client import ServiceClient
from repro.soc.data import get_benchmark

WIDTHS = [8, 12, 16]
NUM_TAMS = 2


def start_server(port_file: Path, cache_dir: Path) -> subprocess.Popen:
    """Spawn `repro-tam serve` and wait for its port file."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1",
            "--port-file", str(port_file),
            "--cache-dir", str(cache_dir),
        ],
        env=dict(os.environ),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while not port_file.exists():
        if proc.poll() is not None:
            sys.exit(f"serve exited early:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.terminate()
            sys.exit("serve never published its port")
        time.sleep(0.05)
    return proc


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        port_file = tmp_path / "port"
        proc = start_server(port_file, tmp_path / "tables")
        try:
            port = int(port_file.read_text().strip())
            with ServiceClient(port=port, timeout=300) as client:
                job = client.submit(
                    ["d695"], WIDTHS, num_tams=NUM_TAMS
                )
                record = client.wait(job, timeout=300)
                assert record["status"] == "done", record
                result = client.result(job)
                assert not result["failures"], result["failures"]

                soc = get_benchmark("d695")
                reference = BatchRunner(max_workers=1).run(
                    [BatchJob(soc, w, NUM_TAMS) for w in WIDTHS]
                )
                remote = {
                    p["total_width"]: p for p in result["points"]
                }
                for point in reference:
                    served = remote[point.total_width]
                    assert served["testing_time"] == point.testing_time, (
                        point.total_width,
                        served["testing_time"],
                        point.testing_time,
                    )
                    assert tuple(served["partition"]) == point.partition
                print(
                    f"grid of {len(reference)} points matches the "
                    f"in-process engine"
                )

                again = client.submit(
                    ["d695"], WIDTHS, num_tams=NUM_TAMS
                )
                status = client.status(again)
                assert status["cached"], status
                assert status["status"] == "done", status
                print("identical re-submission answered from memo")

                client.shutdown()
            code = proc.wait(timeout=30)
            assert code == 0, f"serve exited with {code}"
            print("service smoke: OK")
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)


if __name__ == "__main__":
    main()
