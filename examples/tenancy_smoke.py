"""Tenancy smoke — authenticated serve, quotas, crash recovery.

Starts `repro-tam serve --auth` as a real subprocess and walks the
multi-tenant acceptance path end to end:

1. an authorized client submits and reads back a grid;
2. an unauthenticated client and an over-quota submission each get a
   *typed* rejection envelope (``code: unauthorized`` /
   ``code: over_quota``) — never a dropped connection or traceback;
3. another tenant cannot read the first tenant's job;
4. the server is SIGKILL'd with a client's job still queued (under a
   seeded ``REPRO_FAULTS`` crash plan stressing the workers too),
   restarted on the same cache dir, and must replay the journal with
   the per-client attribution intact.

Exits non-zero on any mismatch — this is the script the CI
tenancy-smoke job runs.

Run:  PYTHONPATH=src python examples/tenancy_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.exceptions import QuotaExceededError, UnauthorizedError
from repro.service.client import ServiceClient

ALICE = "alice-token-0123456789abcdef"
BOB = "bob-token-fedcba9876543210"

TOKENS = {
    "clients": {
        "alice": {
            "token": ALICE,
            "priority": "high",
            "quota": {"max_queued_jobs": 8, "max_grid_size": 4},
        },
        "bob": {"token": BOB, "priority": "low"},
    }
}


def start_server(
    port_file: Path, cache_dir: Path, extra_env=None
) -> subprocess.Popen:
    """Spawn an authenticated `repro-tam serve`; wait for its port."""
    env = dict(os.environ)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1",
            "--port-file", str(port_file),
            "--cache-dir", str(cache_dir),
            "--auth", "--max-queue", "16",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while not port_file.exists():
        if proc.poll() is not None:
            sys.exit(f"serve exited early:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.terminate()
            sys.exit("serve never published its port")
        time.sleep(0.05)
    return proc


def expect(exc_type, call, what):
    try:
        call()
    except exc_type as error:
        print(f"{what}: rejected as expected ({error})")
        return
    sys.exit(f"{what}: expected {exc_type.__name__}, got none")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "tokens.json").write_text(json.dumps(TOKENS))

        proc = start_server(tmp_path / "port-1", cache_dir)
        try:
            port = int((tmp_path / "port-1").read_text().strip())

            # -- authorized path -------------------------------------
            with ServiceClient(
                port=port, timeout=300, token=ALICE,
            ) as alice:
                assert alice.ping()["auth"], "auth flag not reported"
                job = alice.submit(["d695"], [8, 12], num_tams=2)
                assert alice.wait(job, timeout=300)["status"] == "done"
                assert not alice.result(job)["failures"]
                print("authorized client: submit/wait/result OK")

                # -- typed rejections --------------------------------
                with ServiceClient(port=port, timeout=60) as anon:
                    assert anon.ping()["pong"], "ping must stay open"
                    expect(
                        UnauthorizedError,
                        lambda: anon.submit(
                            ["d695"], [8], num_tams=2
                        ),
                        "unauthenticated submit",
                    )
                expect(
                    QuotaExceededError,
                    lambda: alice.submit(
                        ["d695"], [4, 5, 6, 7, 8], num_tams=2
                    ),
                    "over-quota submit (grid size 5 > 4)",
                )
                with ServiceClient(
                    port=port, timeout=60, token=BOB,
                ) as bob:
                    expect(
                        UnauthorizedError,
                        lambda: bob.status(job),
                        "cross-tenant status",
                    )
                info = alice.ping()
                account = info["clients"]["alice"]
                assert account["done"] >= 1, account
                assert account["rejected"]["over_quota"] == 1, account
                print("per-client accounting visible in ping")

                # Leave a *distinct* alice job queued for the crash:
                # journaled, but the server dies before it finishes.
                victim = alice.submit(["d695"], [16, 20], num_tams=2)
                assert victim, "victim submission not accepted"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        print("server SIGKILL'd with a tenant job in flight")

        # -- crash recovery of per-client accounting -----------------
        # The reborn server replays the journal under a seeded fault
        # plan (a worker crash mid-grid) — recovery must neither lose
        # the job nor its owner.
        state = tmp_path / "fault-state"
        proc = start_server(
            tmp_path / "port-2", cache_dir,
            extra_env={"REPRO_FAULTS": f"seed=1,state={state},crash@0"},
        )
        try:
            port = int((tmp_path / "port-2").read_text().strip())
            with ServiceClient(
                port=port, timeout=300, token=ALICE,
            ) as alice:
                info = alice.ping()
                assert info["health"]["journal_replays"] >= 1, (
                    info["health"]
                )
                account = info["clients"].get("alice")
                assert account is not None, sorted(info["clients"])
                assert account["submitted"] >= 1, account
                # The replayed job (fresh id on the reborn server)
                # still belongs to alice and still completes.
                record = alice.wait("job-0001", timeout=300)
                assert record["status"] == "done", record
                assert record["client"] == "alice", record
                assert alice.ping()["clients"]["alice"]["done"] >= 1
                print(
                    "journal replay restored alice's job and "
                    "accounting through a worker-crash fault plan"
                )
                alice.shutdown()
            code = proc.wait(timeout=30)
            assert code == 0, f"serve exited with {code}"
            print("tenancy smoke: OK")
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)


if __name__ == "__main__":
    main()
