"""Power-aware test scheduling on a co-optimized architecture.

The DATE 2002 method minimizes testing time assuming every bus may run
simultaneously.  Real SOCs cap test power, which can force tests on
*different* buses apart in time.  This example co-optimizes d695 at
W=32, assigns each core a test power proportional to its scan volume,
and shows how the schedule (and makespan) responds as the power
ceiling tightens.

Run:  python examples/power_aware_scheduling.py
"""

from repro import co_optimize
from repro.report.tables import TextTable
from repro.schedule.power import PowerProfile, schedule_with_power
from repro.soc.data import get_benchmark
from repro.wrapper.pareto import build_time_tables

WIDTH = 32


def main() -> None:
    soc = get_benchmark("d695")
    result = co_optimize(soc, WIDTH, num_tams=range(1, 6))
    print(result.summary())

    tables = build_time_tables(soc, WIDTH)
    times = [
        [tables[core.name].time(width) for width in result.partition]
        for core in soc
    ]
    names = [core.name for core in soc]
    powers = tuple(1 + core.total_scan_cells // 100 for core in soc)
    print(f"core test powers: {dict(zip(names, powers))}")
    print()

    table = TextTable(
        ["power budget", "makespan (cycles)", "vs unconstrained"],
        title="Makespan under tightening power ceilings",
    )
    for budget in (sum(powers), sum(powers) // 2, max(powers)):
        profile = PowerProfile(powers, power_budget=budget)
        scheduled = schedule_with_power(
            result.final, times, names, profile
        )
        ratio = scheduled.makespan / result.testing_time
        table.add_row([budget, scheduled.makespan, f"{ratio:.2f}x"])
    print(table.render())
    print()

    # Show the tightest schedule's timeline.
    tight = schedule_with_power(
        result.final, times, names,
        PowerProfile(powers, power_budget=max(powers)),
    )
    print(f"fully serialized timeline (budget {max(powers)}):")
    print(tight.schedule.gantt())


if __name__ == "__main__":
    main()
