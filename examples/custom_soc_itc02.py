"""Bring your own SOC — the .soc file round trip and both optimizers.

Builds a small custom SOC programmatically, saves it in the ITC'02-
style ``.soc`` dialect, loads it back, and compares the paper's fast
co-optimization method against the exhaustive baseline of [8] on it.

Run:  python examples/custom_soc_itc02.py
"""

import tempfile
from pathlib import Path

from repro import Core, Soc, co_optimize, exhaustive_optimize
from repro.optimize.result import percent_delta
from repro.soc.itc02 import format_soc, load_soc, write_soc


def build_custom_soc() -> Soc:
    """An 8-core SOC mixing scan logic, memories and combinational."""
    return Soc(name="myChip", cores=(
        Core("cpu", num_patterns=220, num_inputs=64, num_outputs=64,
             scan_chain_lengths=(120, 118, 117, 110, 96, 95)),
        Core("dsp", num_patterns=180, num_inputs=48, num_outputs=32,
             scan_chain_lengths=(90, 88, 72, 70)),
        Core("usb", num_patterns=95, num_inputs=21, num_outputs=18,
             num_bidirs=4, scan_chain_lengths=(60, 44)),
        Core("dma", num_patterns=60, num_inputs=30, num_outputs=30,
             scan_chain_lengths=(40, 40)),
        Core("sram0", num_patterns=2200, num_inputs=24, num_outputs=16),
        Core("sram1", num_patterns=2200, num_inputs=24, num_outputs=16),
        Core("rom", num_patterns=800, num_inputs=18, num_outputs=16),
        Core("glue", num_patterns=40, num_inputs=52, num_outputs=40),
    ))


def main() -> None:
    soc = build_custom_soc()

    # Round-trip through the .soc dialect.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mychip.soc"
        write_soc(soc, path)
        print(f"--- {path.name} " + "-" * 40)
        print(format_soc(soc))
        reloaded = load_soc(path)
        assert reloaded == soc, "round trip must be lossless"

    width = 24
    fast = co_optimize(reloaded, width)
    exact = exhaustive_optimize(reloaded, width, num_tams=range(1, 5))

    print(f"fast method : {fast.summary()}")
    print(f"exhaustive  : {exact.summary()}")
    delta = percent_delta(fast.testing_time, exact.testing_time)
    print(f"testing-time delta vs exhaustive: {delta:+.2f}%")
    print(f"CPU advantage: {exact.elapsed_seconds / max(fast.elapsed_seconds, 1e-9):.0f}x")


if __name__ == "__main__":
    main()
