"""Industrial flow — wrapper/TAM design for the largest Philips SOC.

Walks the full flow the paper demonstrates on p93791 (32 cores):

1. inspect the SOC's test-data ranges (Table 14) and complexity;
2. run P_NPAW with up to ten TAMs and report the chosen architecture;
3. show the pruning statistics that make the sweep feasible
   (the Table 1 story);
4. identify the bottleneck core and the width at which it saturates.

Run:  python examples/industrial_flow.py   (takes ~1 minute)
"""

from repro import co_optimize
from repro.report.experiments import run_range_table, rows_to_table
from repro.report.tables import TextTable
from repro.soc.complexity import test_complexity
from repro.soc.data import get_benchmark
from repro.wrapper.pareto import build_time_tables

WIDTH = 48


def main() -> None:
    soc = get_benchmark("p93791")

    print(rows_to_table(
        run_range_table(soc),
        ["circuit", "cores", "patterns", "ios", "chains", "lengths"],
        title=f"Test-data ranges for the {len(soc)} cores in {soc.name}",
    ))
    print(f"test complexity: {test_complexity(soc):.0f}\n")

    result = co_optimize(soc, WIDTH)
    print(result.summary())
    print(f"assignment: {result.final.vector_notation()}\n")

    stats_table = TextTable(
        ["B", "unique partitions", "evaluated to completion", "E"],
        title="Partition_evaluate pruning (the reason ten TAMs are "
              "tractable)",
    )
    for stats in result.search.stats:
        stats_table.add_row([
            stats.num_tams, stats.num_unique, stats.num_completed,
            f"{stats.efficiency:.4f}",
        ])
    print(stats_table.render())
    print()

    # Bottleneck analysis: the slowest core pins the SOC floor.
    tables = build_time_tables(soc, WIDTH)
    bottleneck = max(tables.values(), key=lambda t: t.min_time)
    print(f"bottleneck core : {bottleneck.core.name} "
          f"({bottleneck.core.num_patterns} patterns)")
    print(f"  floor time    : {bottleneck.min_time} cycles")
    print(f"  saturates at  : {bottleneck.saturation_width} TAM wires")
    print(f"  SOC time / floor ratio: "
          f"{result.testing_time / bottleneck.min_time:.2f}")


if __name__ == "__main__":
    main()
