"""Design-space exploration — how testing time responds to W and B.

Reproduces the paper's central design observations on d695:

* testing time falls as the TAM budget W grows (but with diminishing
  returns);
* at a fixed W, allowing more TAMs first helps (better width
  matching + parallelism) and then stops helping;
* each core's own time-vs-width staircase (problem P_W) explains
  both effects.

Run:  python examples/design_space_exploration.py
"""

from repro import co_optimize
from repro.report.tables import TextTable
from repro.soc.data import get_benchmark
from repro.wrapper.pareto import TimeTable

WIDTHS = (16, 24, 32, 40, 48, 56, 64)
TAM_COUNTS = (1, 2, 3, 4, 5, 6)


def sweep_w_and_b() -> None:
    soc = get_benchmark("d695")
    table = TextTable(
        ["W \\ B"] + [str(b) for b in TAM_COUNTS],
        title="d695 testing time (cycles) over the (W, B) design space",
    )
    for width in WIDTHS:
        row = [width]
        for count in TAM_COUNTS:
            if count > width:
                row.append("-")
                continue
            result = co_optimize(soc, width, num_tams=count)
            row.append(result.testing_time)
        table.add_row(row)
    print(table.render())
    print()


def core_staircase() -> None:
    soc = get_benchmark("d695")
    core = soc.core_by_name("s38417")
    staircase = TimeTable(core, max_width=32)
    table = TextTable(
        ["width", "testing time (cycles)"],
        title=f"P_W staircase for core {core.name} "
              f"(Pareto-optimal widths only)",
    )
    for width, time in staircase.pareto_points():
        table.add_row([width, time])
    print(table.render())
    print(f"saturation width: {staircase.saturation_width} wires "
          f"(more cannot reduce the core's time below "
          f"{staircase.min_time})")


def main() -> None:
    sweep_w_and_b()
    core_staircase()


if __name__ == "__main__":
    main()
