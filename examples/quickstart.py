"""Quickstart — co-optimize the test architecture of SOC d695.

Loads the embedded academic benchmark, runs the paper's two-step
method (Partition_evaluate + exact polish) for a 32-wire TAM budget,
and prints the resulting architecture and test schedule.

Run:  python examples/quickstart.py
"""

from repro import co_optimize
from repro.schedule.session import build_schedule
from repro.soc.data import get_benchmark
from repro.wrapper.pareto import build_time_tables


def main() -> None:
    soc = get_benchmark("d695")
    print(soc.describe())
    print()

    # The paper's P_NPAW: choose the number of TAMs (up to 10), the
    # width partition, the core assignment and every wrapper at once.
    result = co_optimize(soc, total_width=32)

    print(f"best architecture : {result.num_tams} TAMs, partition "
          f"{'+'.join(map(str, result.partition))}")
    print(f"testing time      : {result.testing_time} cycles")
    print(f"assignment vector : {result.final.vector_notation()}")
    print(f"heuristic search  : {result.search.testing_time} cycles "
          f"before the exact polish")
    print(f"wall-clock        : {result.elapsed_seconds:.2f}s")
    print()

    # Materialize the per-bus timeline.
    tables = build_time_tables(soc, 32)
    times = [
        [tables[core.name].time(width) for width in result.partition]
        for core in soc
    ]
    schedule = build_schedule(result.final, times,
                              [core.name for core in soc])
    print(schedule.gantt())


if __name__ == "__main__":
    main()
