"""Differential harness: search tier vs exhaustive and two-step.

The acceptance contract of the search tier, asserted on real
benchmarks:

* where the range bound is tight (B=1), a default-budget search
  proves optimality — gap 0, same time the exhaustive baseline finds;
* on the paper's W=16 anomaly instance the pooled polish lands within
  1% of the exhaustive optimum and *beats* the paper's two-step
  polish-of-the-heuristic-best;
* on the largest benchmark the certificate stays sound under a small
  budget: incumbent above bound, non-negative gap, budgets honored.
"""

import pytest

from repro.analysis.sweep import evaluate_point
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize


def search_point(soc, width, counts, **options):
    settings = dict(
        mode="search", search_strategy="ga", seed=7,
        eval_budget=2000, time_budget=30.0,
    )
    settings.update(options)
    return evaluate_point(soc, width, num_tams=counts, **settings)


class TestProvenOptimalAtTightBound:
    @pytest.mark.parametrize("soc_name", ["d695", "p21241"])
    @pytest.mark.parametrize("strategy", ["sa", "ga"])
    def test_single_bus_gap_zero_matches_exhaustive(
        self, soc_name, strategy, request
    ):
        soc = request.getfixturevalue(soc_name)
        point = search_point(
            soc, 16, (1,), search_strategy=strategy
        )
        exhaustive = exhaustive_optimize(soc, 16, num_tams=1)
        assert point.testing_time == exhaustive.best.testing_time
        certificate = point.search.certificate
        assert certificate.gap == 0.0
        assert certificate.is_provably_optimal
        assert certificate.terminated_by == "target_gap"


class TestAnomalyInstance:
    """d695 W=16 B in 1..3 — the paper's wrong-partition example.

    The exhaustive optimum is 42269 at (8,6,2), a partition the
    heuristic score ranks 13th; the two-step method polishes only the
    heuristically-best partition and lands at 43020.  The search tier
    polishes the KEEP_TOP pooled partitions instead, which must land
    within 1% of the optimum and strictly beat two-step.
    """

    @pytest.fixture(scope="class")
    def exhaustive_best(self, d695):
        return exhaustive_optimize(
            d695, 16, num_tams=(1, 2, 3)
        ).best.testing_time

    @pytest.fixture(scope="class")
    def two_step_best(self, d695):
        return co_optimize(
            d695, 16, num_tams=(1, 2, 3)
        ).testing_time

    @pytest.mark.parametrize("strategy", ["sa", "ga"])
    def test_within_one_percent_and_beats_two_step(
        self, d695, strategy, exhaustive_best, two_step_best
    ):
        assert exhaustive_best == 42269  # the paper's Table instance
        point = search_point(
            d695, 16, (1, 2, 3), search_strategy=strategy
        )
        assert point.testing_time <= two_step_best
        assert point.testing_time <= exhaustive_best * 1.01
        certificate = point.search.certificate
        assert certificate.testing_time == point.testing_time
        assert certificate.gap >= 0.0


class TestLargeInstanceBoundedGap:
    def test_p93791_certificate_is_sound_under_small_budget(
        self, p93791
    ):
        point = search_point(
            p93791, 32, (1, 2, 3, 4), eval_budget=600,
        )
        certificate = point.search.certificate
        assert certificate.testing_time >= certificate.bound
        assert certificate.gap >= 0.0
        assert certificate.evals <= 600
        assert certificate.terminated_by in (
            "eval_budget", "target_gap", "time_budget"
        )
