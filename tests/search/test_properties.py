"""Property tests over seeds: the search tier's invariants.

Satellite contract: for any seed and strategy, (1) the merged
incumbent trajectory is monotone non-increasing, (2) the certificate
gap is never negative, (3) gap 0 implies proven optimality, and
(4) a fixed seed replays bit-identically.
"""

import pytest

from repro.search import search_optimize

SEEDS = (0, 1, 7, 42, 1337)


@pytest.fixture(scope="module")
def d695_tables(d695):
    from repro.wrapper.pareto import build_time_tables

    tables = build_time_tables(d695, 12)
    return {core.name: tables[core.name] for core in d695.cores}


def run(d695, d695_tables, seed, strategy):
    return search_optimize(
        d695_tables, 12,
        num_tams=(1, 2, 3),
        strategy=strategy,
        seed=seed,
        eval_budget=500,
        core_order=[core.name for core in d695.cores],
    )


@pytest.mark.parametrize("strategy", ["sa", "ga"])
@pytest.mark.parametrize("seed", SEEDS)
class TestSearchInvariants:
    def test_trajectory_monotone_non_increasing(
        self, d695, d695_tables, seed, strategy
    ):
        result = run(d695, d695_tables, seed, strategy)
        times = [time for _, _, time in result.trajectory]
        assert times, "every search records at least one incumbent"
        assert all(
            later < earlier
            for earlier, later in zip(times, times[1:])
        )

    def test_gap_is_never_negative(
        self, d695, d695_tables, seed, strategy
    ):
        certificate = run(
            d695, d695_tables, seed, strategy
        ).certificate
        assert certificate.gap >= 0.0
        assert certificate.testing_time >= certificate.bound

    def test_gap_zero_implies_proven_optimal(
        self, d695, d695_tables, seed, strategy
    ):
        certificate = run(
            d695, d695_tables, seed, strategy
        ).certificate
        if certificate.gap == 0.0:
            assert certificate.is_provably_optimal
        else:
            assert not certificate.is_provably_optimal

    def test_fixed_seed_replays_bit_identically(
        self, d695, d695_tables, seed, strategy
    ):
        first = run(d695, d695_tables, seed, strategy)
        second = run(d695, d695_tables, seed, strategy)
        assert first.testing_time == second.testing_time
        assert first.partition == second.partition
        assert first.trajectory == second.trajectory
        assert first.certificate.evals == second.certificate.evals
