"""Fixed-seed searches are bit-identical at any worker count,
and under seeded fault injection.

The island fan-out is an execution placement, never a semantic: the
inline run is the reference, and pool runs — including runs where a
``REPRO_FAULTS`` plan crashes, slows, or strips shared memory from
island workers — must reproduce it bit for bit.
"""

import pytest

from repro.engine.batch import BatchJob, BatchRunner
from repro.engine.faults import FAULTS_ENV

SEARCH_OPTIONS = {
    "mode": "search",
    "search_strategy": "ga",
    "seed": 7,
    "eval_budget": 1200,
    "time_budget": 30.0,
}


def search_job(soc):
    return BatchJob(soc, 16, (1, 2, 3), options=SEARCH_OPTIONS)


def signature(point):
    """Everything result-defining about one finished search point."""
    search = point.search
    return (
        point.testing_time,
        point.partition,
        search.trajectory,
        search.certificate.evals,
        search.certificate.improvements,
        search.certificate.terminated_by,
        tuple(
            (island.evals, island.terminated_by, island.trajectory)
            for island in search.islands
        ),
    )


@pytest.fixture
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    return monkeypatch


@pytest.fixture(scope="module")
def inline_reference(d695):
    (point,) = BatchRunner(max_workers=1).run([search_job(d695)])
    return signature(point)


class TestWorkerCountIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fanned_search_matches_inline(
        self, d695, workers, inline_reference, no_ambient_faults
    ):
        runner = BatchRunner(max_workers=workers)
        (point,) = runner.run([search_job(d695)])
        assert signature(point) == inline_reference

    def test_fan_out_actually_happened(
        self, d695, no_ambient_faults
    ):
        runner = BatchRunner(max_workers=4)
        runner.run([search_job(d695)])
        snapshot = runner.metrics.snapshot()
        assert snapshot.counter("engine.jobs_search_fanned") == 1
        assert snapshot.counter("search.islands_run") == 4


class TestFaultInjectionIdentity:
    """Seeded fault plans may change *how* a search ran, never what
    it answered."""

    def plans(self, tmp_path):
        return {
            "slow": "slow@1=0.05",
            "shm": "shm@0,shm@2",
            "crash": f"state={tmp_path / 'tokens'},crash@2",
        }

    @pytest.mark.parametrize("fault", ["slow", "shm", "crash"])
    def test_faulted_run_is_bit_identical(
        self, d695, tmp_path, fault, inline_reference,
        no_ambient_faults
    ):
        no_ambient_faults.setenv(
            FAULTS_ENV, self.plans(tmp_path)[fault]
        )
        runner = BatchRunner(max_workers=4, retries=1)
        (point,) = runner.run([search_job(d695)])
        assert signature(point) == inline_reference
