"""Unit tests for the gap-vs-bound search certificate."""

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.search.certificate import (
    TERMINATIONS,
    SearchCertificate,
    range_lower_bound,
)
from repro.engine.kernel import build_dense_matrix
from repro.wrapper.pareto import build_time_tables


def make(testing_time=100, bound=80, terminated_by="eval_budget"):
    return SearchCertificate(
        testing_time=testing_time,
        bound=bound,
        evals=10,
        improvements=2,
        elapsed_seconds=0.01,
        terminated_by=terminated_by,
    )


class TestValidation:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises((ConfigurationError, ValidationError)):
            make(bound=0)

    def test_rejects_incumbent_below_bound(self):
        # A certificate claiming T < bound would be unsound: the
        # bound is admissible, so no solution can beat it.
        with pytest.raises((ConfigurationError, ValidationError)):
            make(testing_time=79, bound=80)

    def test_rejects_unknown_termination(self):
        with pytest.raises((ConfigurationError, ValidationError)):
            make(terminated_by="gave_up")

    def test_termination_vocabulary(self):
        for reason in TERMINATIONS:
            assert make(terminated_by=reason).terminated_by == reason


class TestGap:
    def test_gap_is_relative_excess_over_bound(self):
        assert make(testing_time=100, bound=80).gap == pytest.approx(
            0.25
        )

    def test_gap_zero_is_proven_optimal(self):
        certificate = make(testing_time=80, bound=80)
        assert certificate.gap == 0.0
        assert certificate.is_provably_optimal

    def test_positive_gap_is_not_proven(self):
        assert not make(testing_time=81, bound=80).is_provably_optimal


class TestRangeLowerBound:
    @pytest.fixture(scope="class")
    def matrix(self, d695):
        tables = build_time_tables(d695, 16)
        return build_dense_matrix(
            [tables[core.name] for core in d695.cores], 16
        )

    def test_single_count_matches_column_bound(self, matrix, d695):
        # At B=1 the one bus gets the full width; the range bound is
        # exactly the dense kernel's column bound there.
        bound = range_lower_bound(matrix, 16, (1,))
        assert bound == matrix.lower_bound_for_max(16, 1)

    def test_range_takes_the_weakest_count(self, matrix):
        # More feasible counts can only lower (never raise) the
        # admissible range bound.
        wide = range_lower_bound(matrix, 16, (1, 2, 3))
        narrow = range_lower_bound(matrix, 16, (1,))
        assert wide <= narrow

    def test_floor_raises_the_bound(self, matrix):
        base = range_lower_bound(matrix, 16, (1, 2, 3))
        assert range_lower_bound(
            matrix, 16, (1, 2, 3), floor=base + 7
        ) == base + 7
