"""Unit tests for the anytime search driver (islands, merge, polish)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.search import (
    NUM_ISLANDS,
    island_plans,
    island_seed,
    merge_islands,
    run_island,
    search_optimize,
)


@pytest.fixture(scope="module")
def d695_tables(d695):
    from repro.wrapper.pareto import build_time_tables

    tables = build_time_tables(d695, 16)
    return {core.name: tables[core.name] for core in d695.cores}


def run(d695, d695_tables, **overrides):
    options = dict(
        num_tams=(1, 2, 3), strategy="sa", seed=11, eval_budget=800,
        core_order=[core.name for core in d695.cores],
    )
    options.update(overrides)
    return search_optimize(d695_tables, 16, **options)


class TestSeeding:
    def test_island_seeds_are_distinct_and_stable(self):
        seeds = [island_seed(7, index) for index in range(NUM_ISLANDS)]
        assert len(set(seeds)) == NUM_ISLANDS
        assert seeds == [
            island_seed(7, index) for index in range(NUM_ISLANDS)
        ]

    def test_plans_split_the_eval_budget_exactly(self):
        plans = island_plans(
            16, (1, 2, 3), "sa", 7, 1001, 5.0, 0.0, 100,
        )
        assert len(plans) == NUM_ISLANDS
        assert sum(plan.eval_budget for plan in plans) == 1001
        # The remainder lands on the lowest island indices, so the
        # split is a pure function of (budget, island count).
        budgets = [plan.eval_budget for plan in plans]
        assert budgets == sorted(budgets, reverse=True)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, d695, d695_tables):
        first = run(d695, d695_tables)
        second = run(d695, d695_tables)
        assert first.testing_time == second.testing_time
        assert first.partition == second.partition
        assert first.trajectory == second.trajectory
        assert [
            (island.evals, island.terminated_by, island.trajectory)
            for island in first.islands
        ] == [
            (island.evals, island.terminated_by, island.trajectory)
            for island in second.islands
        ]

    def test_both_strategies_run(self, d695, d695_tables):
        for strategy in ("sa", "ga"):
            result = run(d695, d695_tables, strategy=strategy)
            assert result.strategy == strategy
            assert result.certificate.evals > 0

    def test_unknown_strategy_is_rejected(self, d695, d695_tables):
        with pytest.raises(ConfigurationError):
            run(d695, d695_tables, strategy="tabu")


class TestBudgetContract:
    def test_eval_budget_is_respected(self, d695, d695_tables):
        result = run(d695, d695_tables, eval_budget=200)
        assert result.certificate.evals <= 200
        assert result.certificate.terminated_by in (
            "eval_budget", "target_gap"
        )

    def test_target_gap_stops_early_at_tight_bound(
        self, d695, d695_tables
    ):
        # At B=1 the range bound is exact, so target_gap=0 fires as
        # soon as an island scores the single-bus partition.
        result = run(d695, d695_tables, num_tams=(1,))
        assert result.certificate.terminated_by == "target_gap"
        assert result.certificate.is_provably_optimal
        assert result.certificate.evals < 100


class TestMerge:
    def test_merge_prefers_lowest_island_on_ties(
        self, d695, d695_tables
    ):
        result = run(d695, d695_tables)
        islands = result.islands
        best_time = min(
            island.best.testing_time for island in islands
        )
        winner = next(
            island for island in islands
            if island.best.testing_time == best_time
        )
        merged, _, _ = merge_islands(islands)
        assert merged.testing_time == winner.best.testing_time

    def test_merged_trajectory_is_strictly_decreasing(
        self, d695, d695_tables
    ):
        result = run(d695, d695_tables)
        times = [time for _, _, time in result.trajectory]
        assert times == sorted(times, reverse=True)
        assert len(set(times)) == len(times)

    def test_trajectory_ends_at_heuristic_incumbent_or_above(
        self, d695, d695_tables
    ):
        # The exact polish may improve past the trajectory's floor,
        # never the other way around.
        result = run(d695, d695_tables)
        assert result.testing_time <= result.trajectory[-1][2]


class TestRunIsland:
    def test_one_island_alone_is_reproducible(self, d695, d695_tables):
        plans = island_plans(16, (1, 2, 3), "ga", 5, 400, 5.0, 0.0, 1)
        from repro.engine.kernel import build_dense_matrix

        matrix = build_dense_matrix(
            [d695_tables[core.name] for core in d695.cores], 16
        )
        first = run_island(matrix, plans[0])
        second = run_island(matrix, plans[0])
        assert first.best.testing_time == second.best.testing_time
        assert first.trajectory == second.trajectory
        assert first.evals == second.evals
        assert [k.widths for k in first.kept] == [
            k.widths for k in second.kept
        ]
