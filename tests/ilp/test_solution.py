"""Unit tests for Solution / SolveStatus."""

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus


def _model():
    model = Model("m")
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constraint(x + y, "<=", 1)
    model.minimize(-x)
    return model


def test_is_feasible():
    assert Solution(SolveStatus.OPTIMAL, -1.0, {"x": 1.0}).is_feasible
    assert Solution(SolveStatus.FEASIBLE, -1.0, {"x": 1.0}).is_feasible
    assert not Solution(SolveStatus.INFEASIBLE, None).is_feasible
    assert not Solution(SolveStatus.NO_SOLUTION, None).is_feasible


def test_value_accessor():
    model = _model()
    x = model.variable_by_name("x")
    solution = Solution(SolveStatus.OPTIMAL, -1.0, {"x": 1.0, "y": 0.0})
    assert solution.value(x) == 1.0


def test_check_feasibility_accepts_valid():
    solution = Solution(SolveStatus.OPTIMAL, -1.0, {"x": 1.0, "y": 0.0})
    assert solution.check_feasibility(_model())


def test_check_feasibility_rejects_constraint_violation():
    solution = Solution(SolveStatus.OPTIMAL, -2.0, {"x": 1.0, "y": 1.0})
    assert not solution.check_feasibility(_model())


def test_check_feasibility_rejects_bound_violation():
    solution = Solution(SolveStatus.OPTIMAL, -2.0, {"x": 2.0, "y": -1.0})
    assert not solution.check_feasibility(_model())


def test_check_feasibility_rejects_fractional_integer():
    solution = Solution(SolveStatus.OPTIMAL, -0.5, {"x": 0.5, "y": 0.0})
    assert not solution.check_feasibility(_model())


def test_check_feasibility_infeasible_status():
    solution = Solution(SolveStatus.INFEASIBLE, None)
    assert not solution.check_feasibility(_model())
