"""Unit tests for the branch-and-bound ILP solver."""

import pytest

from repro.exceptions import ConfigurationError
from repro.ilp.branch_and_bound import BranchAndBound, solve_model
from repro.ilp.model import LinExpr, Model
from repro.ilp.solution import SolveStatus


def knapsack_model():
    """max 10a + 6b + 4c s.t. a+b+c<=2  ->  min -(...)."""
    model = Model("knapsack")
    a = model.add_binary("a")
    b = model.add_binary("b")
    c = model.add_binary("c")
    model.add_constraint(a + b + c, "<=", 2)
    model.minimize(-(10 * a + 6 * b + 4 * c))
    return model


class TestSolve:
    def test_knapsack_optimum(self):
        solution = solve_model(knapsack_model())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-16.0)
        assert solution.values["a"] == 1.0
        assert solution.values["b"] == 1.0
        assert solution.values["c"] == 0.0

    def test_pure_lp_no_branching(self):
        model = Model("lp")
        x = model.add_continuous("x", lower=0.0, upper=10.0)
        model.add_constraint(x, ">=", 3)
        model.minimize(x)
        solution = solve_model(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
        assert solution.nodes_explored == 1

    def test_integer_rounding_needed(self):
        # LP optimum fractional; ILP must branch.
        model = Model("frac")
        x = model.add_variable("x", lower=0, upper=10, integer=True)
        y = model.add_variable("y", lower=0, upper=10, integer=True)
        model.add_constraint(2 * x + 3 * y, ">=", 7)
        model.minimize(x + y)
        solution = solve_model(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)

    def test_infeasible(self):
        model = Model("inf")
        x = model.add_binary("x")
        model.add_constraint(x, ">=", 2)
        model.minimize(x)
        solution = solve_model(model)
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution.is_feasible

    def test_unbounded(self):
        model = Model("unb")
        x = model.add_continuous("x")
        y = model.add_binary("y")
        model.add_constraint(x + y, ">=", 0)
        model.minimize(-x)
        solution = solve_model(model)
        assert solution.status is SolveStatus.UNBOUNDED

    def test_equality_constraints(self):
        model = Model("eq")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y, "==", 1)
        model.minimize(2 * x + y)
        solution = solve_model(model)
        assert solution.objective == pytest.approx(1.0)
        assert solution.values["y"] == 1.0

    def test_objective_constant_carried(self):
        model = Model("const")
        x = model.add_binary("x")
        model.add_constraint(x, ">=", 1)
        model.minimize(x + 100)
        solution = solve_model(model)
        assert solution.objective == pytest.approx(101.0)

    def test_solution_feasibility_certificate(self):
        model = knapsack_model()
        solution = solve_model(model)
        assert solution.check_feasibility(model)

    def test_node_limit(self):
        model = knapsack_model()
        solution = BranchAndBound(model, node_limit=1).solve()
        assert solution.status in (
            SolveStatus.FEASIBLE,
            SolveStatus.NO_SOLUTION,
            SolveStatus.OPTIMAL,   # trivially solved at the root
        )

    def test_invalid_node_limit(self):
        with pytest.raises(ConfigurationError):
            BranchAndBound(knapsack_model(), node_limit=0)


class TestAgainstDedicatedSolver:
    """The generic ILP and the combinatorial B&B must agree on P_AW."""

    @pytest.mark.parametrize("seed", range(3))
    def test_paw_cross_validation(self, seed):
        import random

        from repro.assign.exact import exact_assign
        from repro.assign.ilp_model import solve_paw_ilp

        rng = random.Random(seed)
        times = [
            [rng.randint(5, 50) for _ in range(2)]
            for _ in range(5)
        ]
        widths = [16, 8]
        ilp_result, solution = solve_paw_ilp(times, widths)
        bnb = exact_assign(times, widths)
        assert solution.status is SolveStatus.OPTIMAL
        assert ilp_result.testing_time == bnb.result.testing_time
