"""Unit tests for the ILP modeling layer."""

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.ilp.model import LinExpr, Model


class TestVariables:
    def test_add_variable(self):
        model = Model("m")
        x = model.add_variable("x", lower=1.0, upper=4.0)
        assert x.index == 0
        assert model.num_variables == 1

    def test_binary(self):
        model = Model("m")
        b = model.add_binary("b")
        assert b.integer and b.lower == 0.0 and b.upper == 1.0

    def test_continuous_default_unbounded_above(self):
        model = Model("m")
        t = model.add_continuous("t")
        assert t.upper == float("inf")

    def test_duplicate_name_rejected(self):
        model = Model("m")
        model.add_binary("x")
        with pytest.raises(ConfigurationError):
            model.add_binary("x")

    def test_crossed_bounds_rejected(self):
        model = Model("m")
        with pytest.raises(ConfigurationError):
            model.add_variable("x", lower=5.0, upper=1.0)

    def test_lookup_by_name(self):
        model = Model("m")
        x = model.add_binary("x")
        assert model.variable_by_name("x") is x

    def test_integer_indices(self):
        model = Model("m")
        model.add_binary("a")
        model.add_continuous("t")
        model.add_binary("b")
        assert model.integer_indices == [0, 2]


class TestExpressions:
    def _xy(self):
        model = Model("m")
        return model, model.add_binary("x"), model.add_binary("y")

    def test_addition(self):
        _, x, y = self._xy()
        expr = x + y + 3
        assert expr.terms == {0: 1.0, 1: 1.0}
        assert expr.constant == 3.0

    def test_scaling(self):
        _, x, y = self._xy()
        expr = 2 * x - 3 * y
        assert expr.terms == {0: 2.0, 1: -3.0}

    def test_subtraction_cancels(self):
        _, x, _ = self._xy()
        expr = (x + 1) - (x * 1.0)
        assert expr.terms.get(0, 0.0) == 0.0
        assert expr.constant == 1.0

    def test_rsub(self):
        _, x, _ = self._xy()
        expr = 5 - x
        assert expr.terms == {0: -1.0}
        assert expr.constant == 5.0

    def test_negation(self):
        _, x, _ = self._xy()
        assert (-x).terms == {0: -1.0}

    def test_sum_builtin(self):
        model, x, y = self._xy()
        z = model.add_binary("z")
        expr = sum((x, y, z), start=LinExpr())
        assert set(expr.terms) == {0, 1, 2}

    def test_non_number_scale_rejected(self):
        _, x, y = self._xy()
        with pytest.raises(TypeError):
            x * y  # bilinear is out of scope

    def test_repr_stable(self):
        _, x, _ = self._xy()
        assert "v0" in repr(x + 1)


class TestConstraintsAndObjective:
    def test_constant_folded_into_rhs(self):
        model = Model("m")
        x = model.add_binary("x")
        constraint = model.add_constraint(x + 5, "<=", 7)
        assert constraint.rhs == 2.0
        assert constraint.terms == {0: 1.0}

    def test_expression_rhs(self):
        model = Model("m")
        x = model.add_binary("x")
        y = model.add_binary("y")
        constraint = model.add_constraint(x, "<=", y)
        assert constraint.terms == {0: 1.0, 1: -1.0}
        assert constraint.rhs == 0.0

    def test_invalid_sense(self):
        model = Model("m")
        x = model.add_binary("x")
        with pytest.raises(ConfigurationError):
            model.add_constraint(x, "<", 1)

    def test_vacuous_constraint_rejected(self):
        model = Model("m")
        x = model.add_binary("x")
        with pytest.raises(ValidationError):
            model.add_constraint(x - x, "<=", 1)

    def test_objective_required(self):
        model = Model("m")
        model.add_binary("x")
        with pytest.raises(ConfigurationError):
            _ = model.objective

    def test_describe_counts(self):
        model = Model("m")
        x = model.add_binary("x")
        t = model.add_continuous("t")
        model.add_constraint(x - t, "<=", 0)
        model.minimize(t)
        text = model.describe()
        assert "2 variables" in text and "1 integer" in text
        assert "1 constraints" in text
