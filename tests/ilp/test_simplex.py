"""Unit tests for the LP relaxation adapter."""

import pytest

from repro.ilp.model import Model
from repro.ilp.simplex import LpRelaxation


def _simple_model():
    model = Model("m")
    x = model.add_continuous("x", lower=0.0, upper=4.0)
    y = model.add_continuous("y", lower=0.0, upper=4.0)
    model.add_constraint(x + y, "<=", 6)
    model.add_constraint(x - y, ">=", -2)
    model.minimize(-x - 2 * y)
    return model


class TestRelaxation:
    def test_solves_base(self):
        lp = LpRelaxation(_simple_model()).solve()
        assert lp.feasible
        # optimum at x=2, y=4 -> obj = -10
        assert lp.objective == pytest.approx(-10.0)

    def test_bound_overrides(self):
        relax = LpRelaxation(_simple_model())
        lp = relax.solve({1: (0.0, 1.0)})  # y <= 1
        assert lp.feasible
        assert lp.point[1] <= 1.0 + 1e-9

    def test_crossed_override_infeasible(self):
        relax = LpRelaxation(_simple_model())
        lp = relax.solve({0: (3.0, 2.0)})
        assert not lp.feasible

    def test_infeasible_constraints(self):
        model = Model("inf")
        x = model.add_continuous("x", lower=0.0, upper=1.0)
        model.add_constraint(x, ">=", 5)
        model.minimize(x)
        lp = LpRelaxation(model).solve()
        assert not lp.feasible
        assert not lp.unbounded

    def test_unbounded_detected(self):
        model = Model("unb")
        x = model.add_continuous("x")
        y = model.add_continuous("y", upper=1.0)
        model.add_constraint(x + y, ">=", 0)
        model.minimize(-x)
        lp = LpRelaxation(model).solve()
        assert lp.unbounded

    def test_binary_relaxes_to_unit_box(self):
        model = Model("bin")
        x = model.add_binary("x")
        model.minimize(-x)
        lp = LpRelaxation(model).solve()
        assert lp.objective == pytest.approx(-1.0)

    def test_equality_rows(self):
        model = Model("eq")
        x = model.add_continuous("x", upper=10.0)
        y = model.add_continuous("y", upper=10.0)
        model.add_constraint(x + y, "==", 7)
        model.minimize(x)
        lp = LpRelaxation(model).solve()
        assert lp.objective == pytest.approx(0.0)
        assert lp.point[1] == pytest.approx(7.0)
