"""Unit tests for JSON result serialization."""

import pytest

from repro.exceptions import ValidationError
from repro.report.serialize import (
    SCHEMA_VERSION,
    assignment_from_dict,
    assignment_to_dict,
    co_optimization_to_dict,
    exhaustive_to_dict,
    from_json,
    to_json,
)
from repro.tam.assignment import evaluate_assignment

TIMES = [[10, 20], [30, 15], [5, 50]]


def _assignment():
    return evaluate_assignment(TIMES, [8, 4], [0, 1, 0], optimal=True)


class TestAssignmentRoundTrip:
    def test_roundtrip(self):
        original = _assignment()
        rebuilt = assignment_from_dict(assignment_to_dict(original))
        assert rebuilt == original

    def test_json_roundtrip(self):
        original = _assignment()
        text = to_json(assignment_to_dict(original))
        rebuilt = assignment_from_dict(from_json(text))
        assert rebuilt == original

    def test_schema_stamped(self):
        assert assignment_to_dict(_assignment())["schema"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        data = assignment_to_dict(_assignment())
        data["schema"] = 999
        with pytest.raises(ValidationError, match="schema"):
            assignment_from_dict(data)

    def test_wrong_kind_rejected(self):
        data = assignment_to_dict(_assignment())
        data["kind"] = "banana"
        with pytest.raises(ValidationError, match="kind"):
            assignment_from_dict(data)

    def test_missing_field_rejected(self):
        data = assignment_to_dict(_assignment())
        del data["bus_times"]
        with pytest.raises(ValidationError, match="missing"):
            assignment_from_dict(data)

    def test_tampered_times_rejected(self):
        # AssignmentResult validation fires on inconsistent data.
        data = assignment_to_dict(_assignment())
        data["testing_time"] = 1
        with pytest.raises(ValidationError):
            assignment_from_dict(data)


class TestPipelineRecords:
    def test_co_optimization_record(self, tiny_soc):
        from repro.optimize.co_optimize import co_optimize
        result = co_optimize(tiny_soc, 8, num_tams=range(1, 3))
        record = co_optimization_to_dict(result)
        assert record["soc"] == "tiny"
        assert record["total_width"] == 8
        assert record["final"]["testing_time"] == result.testing_time
        assert len(record["pruning"]) == 2
        for entry in record["pruning"]:
            assert entry["lb_pruned"] == 0  # paper-fidelity default
        # Valid JSON end to end.
        assert from_json(to_json(record))["kind"] == "co_optimization"

    def test_co_optimization_record_reports_lb_pruning(self, p21241):
        from repro.optimize.co_optimize import co_optimize
        result = co_optimize(
            p21241, 24, num_tams=range(1, 7), prune="lb", polish=False
        )
        record = co_optimization_to_dict(result)
        assert sum(e["lb_pruned"] for e in record["pruning"]) > 0
        assert (sum(e["lb_pruned"] for e in record["pruning"])
                == result.search.num_lb_pruned)

    def test_exhaustive_record(self, tiny_soc):
        from repro.optimize.exhaustive import exhaustive_optimize
        result = exhaustive_optimize(tiny_soc, 8, num_tams=2)
        record = exhaustive_to_dict(result)
        assert record["complete"]
        assert record["best"]["testing_time"] == result.testing_time

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValidationError):
            from_json("[1, 2, 3]")


class TestTimeTableRoundTrip:
    def test_json_roundtrip_is_bit_identical(self, scan_core):
        import json

        from repro.report.serialize import (
            time_table_from_dict,
            time_table_to_dict,
        )
        from repro.wrapper.pareto import TimeTable

        original = TimeTable(scan_core, 9)
        record = json.loads(to_json(time_table_to_dict(original)))
        rebuilt = time_table_from_dict(record, scan_core)
        assert rebuilt._times == original._times
        assert rebuilt._designs == original._designs
        assert rebuilt.max_width == original.max_width

    def test_fingerprint_mismatch_rejected(self, scan_core, memory_core):
        from repro.report.serialize import (
            time_table_from_dict,
            time_table_to_dict,
        )
        from repro.wrapper.pareto import TimeTable

        record = time_table_to_dict(TimeTable(scan_core, 5))
        with pytest.raises(ValidationError, match="fingerprint"):
            time_table_from_dict(record, memory_core)

    def test_wrong_schema_and_kind_rejected(self, scan_core):
        from repro.report.serialize import (
            time_table_from_dict,
            time_table_to_dict,
        )
        from repro.wrapper.pareto import TimeTable

        record = time_table_to_dict(TimeTable(scan_core, 5))
        with pytest.raises(ValidationError):
            time_table_from_dict(dict(record, schema=99), scan_core)
        with pytest.raises(ValidationError):
            time_table_from_dict(dict(record, kind="nope"), scan_core)

    def test_missing_field_rejected(self, scan_core):
        from repro.report.serialize import (
            time_table_from_dict,
            time_table_to_dict,
        )
        from repro.wrapper.pareto import TimeTable

        record = time_table_to_dict(TimeTable(scan_core, 5))
        del record["steps"]
        with pytest.raises(ValidationError, match="missing"):
            time_table_from_dict(record, scan_core)


class TestFailedPointSerialization:
    def test_failed_point_record_fields(self, tiny_soc):
        from repro.engine.batch import BatchJob, FailedPoint
        from repro.report.serialize import failed_point_to_dict

        failure = FailedPoint(
            job=BatchJob(tiny_soc, 5, 2),
            error_type="ConfigurationError",
            error_message="boom",
            attempts=2,
        )
        record = failed_point_to_dict(failure)
        assert record["kind"] == "failed_point"
        assert record["soc"] == "tiny"
        assert record["total_width"] == 5
        assert record["attempts"] == 2
