"""Unit tests for the ASCII table renderer."""

import pytest

from repro.report.tables import TextTable


def test_alignment_and_separator():
    table = TextTable(["a", "bb"])
    table.add_row([1, 22])
    table.add_row([333, 4])
    text = table.render()
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert set(lines[1]) <= {"-", "+"}
    assert len(lines) == 4


def test_title():
    table = TextTable(["x"], title="Table 1. Something.")
    table.add_row([5])
    assert table.render().splitlines()[0] == "Table 1. Something."


def test_floats_formatted_two_dp():
    table = TextTable(["v"])
    table.add_row([1.23456])
    assert "1.23" in table.render()


def test_row_width_mismatch():
    table = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_str_is_render():
    table = TextTable(["a"])
    table.add_row(["x"])
    assert str(table) == table.render()


def test_wide_cells_stretch_columns():
    table = TextTable(["col"])
    table.add_row(["a-very-wide-cell"])
    lines = table.render().splitlines()
    assert all(len(line) >= len("a-very-wide-cell") for line in lines[1:])
