"""The shared argparse→spec translator keeps every CLI surface aligned."""

import pytest

from repro.api import GridSpec, OptimizeSpec
from repro.api.cli import grid_spec_from_args, spec_from_args
from repro.cli import build_parser
from repro.exceptions import ConfigurationError


def parse(argv):
    return build_parser().parse_args(argv)


class TestSurfacesAgree:
    def test_batch_and_submit_build_identical_grids(self):
        batch = parse(["batch", "d695", "-W", "8", "12", "-B", "2"])
        submit = parse(["submit", "d695", "-W", "8", "12", "-B", "2"])
        assert grid_spec_from_args(batch) == grid_spec_from_args(submit)

    def test_batch_and_submit_share_canonical_key_with_defaults(self):
        batch = parse(["batch", "d695", "-W", "8"])
        submit = parse(["submit", "d695", "-W", "8"])
        assert grid_spec_from_args(batch).canonical_key() == \
            grid_spec_from_args(submit).canonical_key()

    def test_cooptimize_point_matches_batch_point(self):
        coopt = parse(["cooptimize", "d695", "-W", "16", "--bmax", "4"])
        batch = parse(["batch", "d695", "-W", "16", "--bmax", "4"])
        assert spec_from_args(coopt, coopt.width) == \
            grid_spec_from_args(batch).points[0]

    def test_knob_flags_reach_the_spec(self):
        args = parse([
            "batch", "d695", "-W", "8", "--no-polish", "--prune", "lb",
        ])
        point = grid_spec_from_args(args).points[0]
        assert point.polish is False
        assert point.prune == "lb"

    def test_explicit_prune_abort_survives_to_the_engine(self):
        """Regression: `--prune abort` must force abort-only pruning
        through batch/submit, not be dropped as 'the default'."""
        args = parse(["batch", "d695", "-W", "8", "--prune", "abort"])
        point = grid_spec_from_args(args).points[0]
        assert point.prune is True
        # The sparse engine options carry it, so evaluate_point's
        # "lb" defaulting cannot override the user's choice.
        assert point.engine_options() == {"prune": True}

    def test_unset_prune_leaves_surface_defaults(self):
        args = parse(["batch", "d695", "-W", "8"])
        point = grid_spec_from_args(args).points[0]
        assert point.prune is None
        assert point.engine_options() == {}

    def test_default_counts_are_flat_one_to_bmax(self):
        args = parse(["cooptimize", "d695", "-W", "16", "--bmax", "3"])
        assert spec_from_args(args, 16).num_tams == (1, 2, 3)

    def test_fixed_count_wins_over_bmax(self):
        args = parse(["batch", "d695", "-W", "8", "-B", "2",
                      "--bmax", "7"])
        assert grid_spec_from_args(args).points[0].num_tams == 2

    def test_exhaustive_shares_the_flag_surface(self):
        args = parse(["exhaustive", "d695", "-W", "8"])
        assert args.bmax == 2  # its historical default, via the
        assert args.num_tams is None  # same shared registration

    def test_translator_output_is_canonical_api_type(self):
        args = parse(["batch", "d695", "-W", "8"])
        grid = grid_spec_from_args(args)
        assert isinstance(grid, GridSpec)
        assert all(isinstance(p, OptimizeSpec) for p in grid.points)


class TestTranslatorValidation:
    def test_bad_width_is_a_configuration_error(self):
        args = parse(["batch", "d695", "-W", "0"])
        with pytest.raises(ConfigurationError):
            grid_spec_from_args(args)
