"""Unit tests for the canonical job specs (repro.api.specs)."""

import pytest

from repro.api import (
    GridSpec,
    OptimizeSpec,
    SPEC_SCHEMA_VERSION,
    jobs_canonical_key,
)
from repro.engine.batch import BatchJob
from repro.exceptions import ConfigurationError


class TestOptimizeSpecValidation:
    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=0)
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width="32")

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, num_tams=0)
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, num_tams=(1, 0))
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, num_tams=())

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, polish_top_k=0)
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, exact_time_limit=0)
        with pytest.raises(ConfigurationError):
            OptimizeSpec(total_width=8, prune=3.5)

    def test_counts_iterable_is_frozen(self):
        spec = OptimizeSpec(total_width=8, num_tams=range(1, 4))
        assert spec.num_tams == (1, 2, 3)
        assert hash(spec) == hash(
            OptimizeSpec(total_width=8, num_tams=(1, 2, 3))
        )

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="frobnicate"):
            OptimizeSpec.from_options(8, options={"frobnicate": 1})


class TestOptimizeSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = OptimizeSpec(
            total_width=24, num_tams=(2, 3), polish=False, prune="lb",
        )
        data = spec.to_dict()
        assert data["schema"] == SPEC_SCHEMA_VERSION
        assert OptimizeSpec.from_dict(data) == spec

    def test_unknown_schema_rejected(self):
        data = OptimizeSpec(total_width=8).to_dict()
        data["schema"] = 999
        with pytest.raises(ConfigurationError, match="schema"):
            OptimizeSpec.from_dict(data)

    def test_unknown_field_rejected(self):
        data = OptimizeSpec(total_width=8).to_dict()
        data["mystery"] = True
        with pytest.raises(ConfigurationError, match="mystery"):
            OptimizeSpec.from_dict(data)

    def test_engine_options_are_sparse(self):
        assert OptimizeSpec(total_width=8).engine_options() == {}
        assert OptimizeSpec(
            total_width=8, polish=False
        ).engine_options() == {"polish": False}

    def test_from_options_inverts_engine_options(self):
        spec = OptimizeSpec(
            total_width=16, num_tams=2, polish_top_k=3, prune="lb",
        )
        rebuilt = OptimizeSpec.from_options(
            spec.total_width,
            num_tams=spec.num_tams,
            options=spec.engine_options(),
        )
        assert rebuilt == spec


class TestGridSpec:
    def test_from_axes_orders_soc_major_width_fastest(self):
        grid = GridSpec.from_axes(["d695", "p21241"], [8, 12],
                                  num_tams=2)
        jobs = grid.jobs()
        assert [(j.soc.name, j.total_width) for j in jobs] == [
            ("d695", 8), ("d695", 12), ("p21241", 8), ("p21241", 12),
        ]
        assert grid.widths == (8, 12)

    def test_needs_socs_and_points(self):
        with pytest.raises(ConfigurationError):
            GridSpec(socs=(), points=(OptimizeSpec(total_width=8),))
        with pytest.raises(ConfigurationError):
            GridSpec(socs=("d695",), points=())
        with pytest.raises(ConfigurationError):
            GridSpec.from_axes(["d695"], [])

    def test_dict_round_trip(self):
        grid = GridSpec.from_axes(
            ["d695"], [8, 16], num_tams=(1, 2),
            options={"polish": False}, runner={"jobs": 4},
        )
        rebuilt = GridSpec.from_dict(grid.to_dict())
        assert rebuilt == grid
        assert rebuilt.runner_options() == {"jobs": 4}

    def test_unknown_field_rejected(self):
        data = GridSpec.from_axes(["d695"], [8]).to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            GridSpec.from_dict(data)


class TestCanonicalKey:
    def test_key_matches_hand_built_jobs(self, d695):
        grid = GridSpec.from_axes(["d695"], [8, 12], num_tams=2)
        jobs = [BatchJob(d695, 8, 2), BatchJob(d695, 12, 2)]
        assert grid.canonical_key() == jobs_canonical_key(jobs)

    def test_key_ignores_runner_hints(self):
        base = GridSpec.from_axes(["d695"], [8], num_tams=2)
        hinted = GridSpec.from_axes(
            ["d695"], [8], num_tams=2, runner={"jobs": 16},
        )
        assert base.canonical_key() == hinted.canonical_key()

    def test_key_normalizes_scalar_and_tuple_counts(self, d695):
        assert jobs_canonical_key([BatchJob(d695, 8, 2)]) == \
            jobs_canonical_key([BatchJob(d695, 8, (2,))])

    def test_key_fills_defaulted_options(self, d695):
        sparse = jobs_canonical_key([BatchJob(d695, 8, 2)])
        explicit = jobs_canonical_key([
            BatchJob(d695, 8, 2, options={"polish": True}),
        ])
        assert sparse == explicit

    def test_key_is_content_sensitive(self, d695, p21241):
        assert jobs_canonical_key([BatchJob(d695, 8, 2)]) != \
            jobs_canonical_key([BatchJob(p21241, 8, 2)])
        assert jobs_canonical_key([BatchJob(d695, 8, 2)]) != \
            jobs_canonical_key([BatchJob(d695, 9, 2)])
        assert jobs_canonical_key([BatchJob(d695, 8, 2)]) != \
            jobs_canonical_key([
                BatchJob(d695, 8, 2, options={"polish": False}),
            ])

    def test_key_survives_spec_round_trip(self):
        grid = GridSpec.from_axes(
            ["d695", "p21241"], [8, 16], num_tams=(1, 2, 3),
            options={"prune": "lb"},
        )
        rebuilt = GridSpec.from_dict(grid.to_dict())
        assert rebuilt.canonical_key() == grid.canonical_key()

    def test_mutable_option_values_are_rejected(self, d695):
        job = BatchJob(d695, 8, 2, options={"polish": ["mutable"]})
        with pytest.raises(TypeError):
            jobs_canonical_key([job])


class TestBatchJobBridge:
    def test_from_spec_and_back(self, d695):
        spec = OptimizeSpec(total_width=12, num_tams=(1, 2),
                            polish=False)
        job = BatchJob.from_spec(d695, spec)
        assert job.total_width == 12
        assert job.num_tams == (1, 2)
        assert job.options_dict() == {"polish": False}
        assert job.spec() == spec

    def test_job_with_unknown_option_has_no_spec(self, d695):
        job = BatchJob(d695, 8, 2, options={"bogus_knob": 1})
        with pytest.raises(ConfigurationError):
            job.spec()


class TestSearchMode:
    """The v2 mode axis and its search-only options."""

    def search_spec(self, **overrides):
        options = dict(
            mode="search", search_strategy="ga", seed=11,
            time_budget=2.5, eval_budget=500, target_gap=0.05,
        )
        options.update(overrides)
        return OptimizeSpec(total_width=16, **options)

    def test_search_spec_round_trips(self):
        spec = self.search_spec()
        assert OptimizeSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            OptimizeSpec(total_width=16, mode="quantum")

    @pytest.mark.parametrize("option, value", [
        ("search_strategy", "ga"),
        ("seed", 3),
        ("time_budget", 1.0),
        ("eval_budget", 100),
        ("target_gap", 0.1),
    ])
    def test_search_options_rejected_under_exact(self, option, value):
        with pytest.raises(ConfigurationError, match=option):
            OptimizeSpec(total_width=16, **{option: value})

    def test_search_knob_validation(self):
        with pytest.raises(ConfigurationError, match="seed"):
            self.search_spec(seed=-1)
        with pytest.raises(ConfigurationError, match="eval_budget"):
            self.search_spec(eval_budget=0)
        with pytest.raises(ConfigurationError, match="time_budget"):
            self.search_spec(time_budget=0)
        with pytest.raises(ConfigurationError, match="target_gap"):
            self.search_spec(target_gap=-0.5)

    def test_seed_splits_the_canonical_key(self):
        # The seed is result-defining for a search, so two seeds must
        # never share a memo entry.
        assert self.search_spec(seed=1).canonical_key() != \
            self.search_spec(seed=2).canonical_key()

    def test_mode_splits_the_canonical_key(self):
        exact = OptimizeSpec(total_width=16)
        search = OptimizeSpec(total_width=16, mode="search")
        assert exact.canonical_key() != search.canonical_key()
