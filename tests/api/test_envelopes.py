"""Unit tests for the versioned wire envelopes (repro.api.envelopes)."""

import pytest

from repro.api import (
    GridSpec,
    JobEvent,
    JobRequest,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
)
from repro.exceptions import ConfigurationError


class TestJobRequest:
    def test_v2_spec_round_trip(self):
        grid = GridSpec.from_axes(["d695"], [8, 16], num_tams=2)
        request = JobRequest(op="submit", spec=grid)
        rebuilt = JobRequest.from_dict(request.to_dict())
        assert rebuilt.version == PROTOCOL_VERSION
        assert rebuilt.spec == grid
        assert rebuilt.op == "submit"

    def test_missing_v_means_version_1(self):
        request = JobRequest.from_dict({"op": "ping"})
        assert request.version == 1

    def test_v1_extra_fields_are_preserved(self):
        raw = {"op": "submit", "socs": ["d695"], "widths": [8],
               "bmax": 3}
        request = JobRequest.from_dict(raw)
        assert request.extra_dict() == {
            "socs": ["d695"], "widths": [8], "bmax": 3,
        }
        # Round-trips losslessly, so a proxy could re-emit it.
        assert JobRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("version", [0, 4, "2", True, None])
    def test_unsupported_versions_rejected(self, version):
        with pytest.raises(ConfigurationError, match="version"):
            JobRequest.from_dict({"op": "ping", "v": version})

    def test_missing_op_rejected(self):
        with pytest.raises(ConfigurationError, match="op"):
            JobRequest.from_dict({"v": 2})

    def test_every_supported_version_parses(self):
        for version in SUPPORTED_PROTOCOL_VERSIONS:
            assert JobRequest.from_dict(
                {"op": "ping", "v": version}
            ).version == version


class TestJobEvent:
    def test_round_trip(self):
        event = JobEvent(
            job_id="job-0001", seq=2, kind="point", index=2, total=4,
            payload={"testing_time": 41504, "soc": "d695"},
        )
        assert JobEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            JobEvent(job_id="j", seq=0, kind="exploded", index=0,
                     total=1)

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError, match="seq"):
            JobEvent.from_dict({"job": "j", "kind": "point",
                                "index": 0, "total": 1})
