"""CI guard: spec round-trips and canonical-key stability.

Run explicitly by the ``spec-roundtrip`` CI job (and in tier-1):
serializes every embedded benchmark's GridSpec through
``to_dict`` → ``from_dict`` → ``canonical_key`` and fails on any
hash instability — including across interpreter processes with
different ``PYTHONHASHSEED``, which would silently break the
persisted cross-restart memo.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import GridSpec
from repro.soc.data import benchmark_names

#: A representative grid per benchmark: mixed widths, explicit and
#: default counts, one non-default knob.
GRID_VARIANTS = [
    {"widths": [8, 16], "num_tams": 2, "options": None},
    {"widths": [12, 24, 32], "num_tams": [1, 2, 3], "options": None},
    {"widths": [16], "num_tams": None, "options": {"polish": False}},
]


def grids():
    for name in benchmark_names():
        for variant in GRID_VARIANTS:
            yield GridSpec.from_axes(
                [name],
                variant["widths"],
                num_tams=(
                    tuple(variant["num_tams"])
                    if isinstance(variant["num_tams"], list)
                    else variant["num_tams"]
                ),
                options=variant["options"],
            )


@pytest.mark.parametrize(
    "grid", list(grids()),
    ids=lambda grid: f"{grid.socs[0]}-W{'x'.join(map(str, grid.widths))}",
)
def test_round_trip_preserves_spec_and_key(grid):
    data = grid.to_dict()
    rebuilt = GridSpec.from_dict(json.loads(json.dumps(data)))
    assert rebuilt == grid
    assert rebuilt.canonical_key() == grid.canonical_key()
    # Key computation is deterministic within a process too.
    assert grid.canonical_key() == grid.canonical_key()


def _keys_in_subprocess(hash_seed):
    """Canonical keys for every benchmark grid, in a fresh process."""
    script = (
        "import json\n"
        "from repro.api import GridSpec\n"
        "from tests.api.test_spec_roundtrip import grids\n"
        "print(json.dumps([g.canonical_key() for g in grids()]))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    output = subprocess.run(
        [sys.executable, "-c", script],
        env=env, capture_output=True, text=True, check=True,
        cwd=root,
    )
    return json.loads(output.stdout)


def test_keys_are_stable_across_processes_and_hash_seeds():
    """The memo key must survive restarts — PYTHONHASHSEED included."""
    here = [grid.canonical_key() for grid in grids()]
    assert _keys_in_subprocess(0) == here
    assert _keys_in_subprocess(12345) == here
