"""The external static gates (mypy strict core, ruff) when available.

The container may not ship mypy/ruff — CI installs them for the
``static-analysis`` job — so these tests skip rather than fail when
the tools are absent.  The project's own linter needs no such guard
(pure stdlib) and is exercised by tests/analysis/.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tool_missing(module: str) -> bool:
    return importlib.util.find_spec(module) is None


@pytest.mark.skipif(_tool_missing("mypy"), reason="mypy not installed")
def test_mypy_strict_over_typed_core():
    completed = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stdout


@pytest.mark.skipif(_tool_missing("ruff"), reason="ruff not installed")
def test_ruff_check_clean():
    completed = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stdout
