"""Job-level fault tolerance of the batch engine."""

import pytest

import repro.engine.batch as batch
from repro.engine.batch import (
    BatchJob,
    BatchRunner,
    FailedPoint,
    grid_rows,
    split_results,
)
from repro.exceptions import ConfigurationError


def bad_job(soc, width=4):
    """A job that fails inside the pipeline, not at construction."""
    return BatchJob(soc, width, 2, options={"enumerator": "bogus"})


class TestRecordPolicy:
    def test_default_policy_still_raises(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            BatchRunner(max_workers=1).run([bad_job(tiny_soc)])

    def test_failed_point_keeps_the_grid_alive(self, tiny_soc):
        runner = BatchRunner(max_workers=1, on_error="record")
        results = runner.run([
            BatchJob(tiny_soc, 4, 2),
            bad_job(tiny_soc, width=5),
            BatchJob(tiny_soc, 6, 2),
        ])
        assert len(results) == 3
        assert not isinstance(results[0], FailedPoint)
        assert isinstance(results[1], FailedPoint)
        assert not isinstance(results[2], FailedPoint)
        failure = results[1]
        assert failure.error_type == "ConfigurationError"
        assert "bogus" in failure.error_message
        assert failure.attempts == 1
        assert failure.total_width == 5
        assert "ConfigurationError" in failure.describe()

    def test_split_results_partitions(self, tiny_soc):
        runner = BatchRunner(max_workers=1, on_error="record")
        results = runner.run([BatchJob(tiny_soc, 4, 2),
                              bad_job(tiny_soc)])
        points, failures = split_results(results)
        assert len(points) == 1 and len(failures) == 1

    def test_pool_mode_records_failures_too(self, tiny_soc):
        runner = BatchRunner(max_workers=2, on_error="record")
        results = runner.run([
            BatchJob(tiny_soc, 4, 2),
            bad_job(tiny_soc, width=5),
            BatchJob(tiny_soc, 6, 2),
        ])
        kinds = [isinstance(r, FailedPoint) for r in results]
        assert kinds == [False, True, False]

    def test_grid_rows_renders_error_rows(self, tiny_soc):
        runner = BatchRunner(max_workers=1, on_error="record")
        grid = runner.run_grid([tiny_soc], (4,))
        # Force a failure row through the same renderer.
        failure = FailedPoint(
            job=bad_job(tiny_soc, width=5),
            error_type="ConfigurationError",
            error_message="boom",
            attempts=1,
        )
        rows = grid_rows(list(grid) + [(failure.job, failure)])
        assert rows[-1]["T"] == "-"
        assert "boom" in rows[-1]["partition"]
        assert rows[-1]["W"] == 5

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(on_error="ignore")
        with pytest.raises(ConfigurationError):
            BatchRunner(retries=-1)


class TestRetries:
    def test_transient_failure_is_retried_inline(
        self, tiny_soc, monkeypatch
    ):
        attempts = {"count": 0}
        original = batch.evaluate_point

        def flaky(*args, **kwargs):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise ConfigurationError("transient")
            return original(*args, **kwargs)

        monkeypatch.setattr(batch, "evaluate_point", flaky)
        runner = BatchRunner(max_workers=1, on_error="record", retries=1)
        [result] = runner.run([BatchJob(tiny_soc, 4, 2)])
        assert not isinstance(result, FailedPoint)
        assert attempts["count"] == 2

    def test_exhausted_retries_record_attempt_count(
        self, tiny_soc, monkeypatch
    ):
        def always_failing(*args, **kwargs):
            raise ConfigurationError("permanent")

        monkeypatch.setattr(batch, "evaluate_point", always_failing)
        runner = BatchRunner(max_workers=1, on_error="record", retries=2)
        [result] = runner.run([BatchJob(tiny_soc, 4, 2)])
        assert isinstance(result, FailedPoint)
        assert result.attempts == 3

    def test_exhausted_retries_raise_under_default_policy(
        self, tiny_soc, monkeypatch
    ):
        def always_failing(*args, **kwargs):
            raise ConfigurationError("permanent")

        monkeypatch.setattr(batch, "evaluate_point", always_failing)
        runner = BatchRunner(max_workers=1, retries=1)
        with pytest.raises(ConfigurationError):
            runner.run([BatchJob(tiny_soc, 4, 2)])


class TestPersistentPool:
    def test_persistent_runner_reuses_one_pool(self, tiny_soc):
        with BatchRunner(max_workers=2, persistent=True) as runner:
            runner.run([BatchJob(tiny_soc, w, 2) for w in (4, 5)])
            runner.run([BatchJob(tiny_soc, w, 2) for w in (6, 7)])
            assert runner.pools_started == 1
        assert runner._executor is None  # closed by the context exit

    def test_ephemeral_runner_starts_a_pool_per_run(self, tiny_soc):
        runner = BatchRunner(max_workers=2)
        runner.run([BatchJob(tiny_soc, w, 2) for w in (4, 5)])
        runner.run([BatchJob(tiny_soc, w, 2) for w in (6, 7)])
        assert runner.pools_started == 2

    def test_persistent_pool_matches_inline_results(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 6, 8)]
        inline = BatchRunner(max_workers=1).run(jobs)
        with BatchRunner(max_workers=2, persistent=True) as runner:
            assert runner.run(jobs) == inline


class TestBrokenPoolRecovery:
    def test_persistent_runner_survives_a_killed_worker(self, tiny_soc):
        import os
        import signal
        import time

        with BatchRunner(max_workers=2, persistent=True) as runner:
            jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 5)]
            healthy = runner.run(jobs)
            # Kill a resident worker out from under the executor, and
            # wait for the executor to notice the corpse — its manager
            # thread flags breakage asynchronously, and until then a
            # surviving worker could drain a small grid successfully.
            victim = next(iter(runner._executor._processes))
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while (not runner._executor._broken
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert runner._executor._broken
            # The supervisor rebuilds the pool mid-grid and the run
            # completes with the same results as a healthy one.
            assert runner.run(jobs) == healthy
            assert runner.pool_restarts == 1
            assert runner.pools_started >= 2

    def test_exhausted_pool_restarts_record_failed_points(
        self, tiny_soc
    ):
        from concurrent.futures.process import BrokenProcessPool

        runner = BatchRunner(
            max_workers=2, on_error="record", pool_restart_retries=0
        )
        # A broken pool with no restart budget must not raise under
        # the record policy: every unfinished point gets a structured
        # FailedPoint instead.
        import repro.engine.batch as batch_module

        class _AlwaysBroken:
            def __init__(self, *args, **kwargs):
                raise BrokenProcessPool("pool refused to start")

        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 5)]
        original = batch_module.ProcessPoolExecutor
        try:
            batch_module.ProcessPoolExecutor = _AlwaysBroken
            with pytest.raises(BrokenProcessPool):
                # Construction failure happens before dispatch: the
                # supervisor only guards the dispatch loop.
                runner.run(jobs)
        finally:
            batch_module.ProcessPoolExecutor = original

    def test_rejects_bad_supervision_knobs(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(pool_restart_retries=-1)
        with pytest.raises(ConfigurationError):
            BatchRunner(point_timeout=0)
        with pytest.raises(ConfigurationError):
            BatchRunner(point_timeout="soon")


class TestPointDeadlines:
    """Per-point wall-clock deadlines, driven by a slow@ fault."""

    @pytest.fixture
    def stalled_point(self, monkeypatch):
        """Grid point 1 stalls well past the test deadlines below.

        Kept short-ish: a timed-out point is *abandoned*, not
        interrupted, so the run's closing ``pool.shutdown(wait=True)``
        still waits out the stall.
        """
        monkeypatch.setenv("REPRO_FAULTS", "slow@1=6")

    def test_timed_out_point_is_recorded(self, tiny_soc, stalled_point):
        runner = BatchRunner(max_workers=2, on_error="record")
        results = runner.run(
            [BatchJob(tiny_soc, w, 2) for w in (4, 5, 6)],
            point_timeout=1.5,
        )
        kinds = [isinstance(r, FailedPoint) for r in results]
        assert kinds == [False, True, False]
        assert results[1].error_type == "DeadlineError"
        assert runner.points_timed_out == 1

    def test_timed_out_point_raises_under_default_policy(
        self, tiny_soc, stalled_point
    ):
        from repro.exceptions import DeadlineError

        runner = BatchRunner(max_workers=2)
        with pytest.raises(DeadlineError):
            runner.run(
                [BatchJob(tiny_soc, w, 2) for w in (4, 5)],
                point_timeout=1.5,
            )

    def test_generous_deadline_changes_nothing(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 5)]
        plain = BatchRunner(max_workers=2).run(jobs)
        timed = BatchRunner(max_workers=2, point_timeout=120).run(jobs)
        assert timed == plain
