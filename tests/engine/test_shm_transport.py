"""Round-trip and fallback tests for the shared-memory transport."""

import pytest

import repro.engine.shm as shm
from repro.engine.batch import BatchJob, BatchRunner
from repro.engine.kernel import build_dense_matrix
from repro.engine.shm import DenseDescriptor, SegmentRegistry, attach
from repro.soc.fingerprint import soc_fingerprint
from repro.wrapper.pareto import build_time_tables


def _drop(fingerprint):
    """Release a worker-cache entry the way the eviction path does."""
    if fingerprint in shm._ATTACHED:
        shm._release_entry(fingerprint)


def matrix_for(soc, width):
    tables = build_time_tables(soc, width)
    return build_dense_matrix(
        [tables[core.name] for core in soc.cores], width
    )


class TestSegmentRoundTrip:
    def test_publish_attach_round_trip(self, tiny_soc):
        matrix = matrix_for(tiny_soc, 10)
        registry = SegmentRegistry()
        try:
            descriptor = registry.publish("fp-roundtrip", matrix)
            assert descriptor.shm_name is not None
            assert descriptor.payload is None
            attached = attach(descriptor)
            assert attached is not None
            for width in range(1, 11):
                assert attached.column(width) == matrix.column(width)
        finally:
            registry.close()
            _drop("fp-roundtrip")

    def test_publish_reuses_wide_segments(self, tiny_soc):
        registry = SegmentRegistry()
        try:
            wide = registry.publish("fp-reuse", matrix_for(tiny_soc, 12))
            narrow = registry.publish("fp-reuse", matrix_for(tiny_soc, 8))
            assert narrow is wide  # covering segment served as-is
            wider = registry.publish("fp-reuse", matrix_for(tiny_soc, 16))
            assert wider is not wide
            assert len(registry) == 1  # narrow segment was replaced
        finally:
            registry.close()

    def test_close_unlinks_everything(self, tiny_soc):
        registry = SegmentRegistry()
        descriptor = registry.publish(
            "fp-close", matrix_for(tiny_soc, 6)
        )
        registry.close()
        assert len(registry) == 0
        # The segment is gone; a fresh attach must fail gracefully.
        shm._ATTACHED.clear()
        assert attach(descriptor) is None

    def test_attach_unknown_segment_returns_none(self):
        descriptor = DenseDescriptor(
            fingerprint="fp-ghost", num_cores=2, total_width=2,
            shm_name="psm_does_not_exist_repro",
        )
        assert attach(descriptor) is None

    def test_attach_caches_per_fingerprint(self, tiny_soc):
        registry = SegmentRegistry()
        try:
            descriptor = registry.publish(
                "fp-cache", matrix_for(tiny_soc, 8)
            )
            first = attach(descriptor)
            assert attach(descriptor) is first
        finally:
            registry.close()
            _drop("fp-cache")

    def test_superseded_attachment_is_evicted(self, tiny_soc):
        # A wider republish changes the segment name; the worker-side
        # cache must drop (and unmap) the stale matrix instead of
        # pinning every generation until process exit.
        registry = SegmentRegistry()
        try:
            narrow = registry.publish(
                "fp-evict", matrix_for(tiny_soc, 8)
            )
            stale = attach(narrow)
            wide = registry.publish(
                "fp-evict", matrix_for(tiny_soc, 12)
            )
            assert wide.shm_name != narrow.shm_name
            fresh = attach(wide)
            assert fresh is not stale
            assert shm._ATTACHED["fp-evict"][0] == wide.shm_name
            assert fresh.total_width == 12
        finally:
            registry.close()
            _drop("fp-evict")


class TestPicklingFallback:
    def test_publish_falls_back_to_payload(self, tiny_soc, monkeypatch):
        # Force the shared-memory path to fail: the descriptor must
        # carry the raw bytes instead.
        class Exploding:
            def __init__(self, *args, **kwargs):
                raise OSError("no shared memory here")

        monkeypatch.setattr(
            shm._shared_memory, "SharedMemory", Exploding
        )
        matrix = matrix_for(tiny_soc, 9)
        registry = SegmentRegistry()
        descriptor = registry.publish("fp-fallback", matrix)
        assert descriptor.shm_name is None
        assert descriptor.payload is not None
        attached = attach(descriptor)
        assert attached is not None
        for width in range(1, 10):
            assert attached.column(width) == matrix.column(width)
        # The fallback descriptor is registered (segment-less) so a
        # second run reuses the packed bytes instead of re-packing.
        assert registry.publish("fp-fallback", matrix) is descriptor
        registry.close()  # no segment to unlink — must not raise
        # Payload-backed matrices are cached per worker too, so
        # repeated jobs share the column/order memos.
        assert attach(descriptor) is attached
        _drop("fp-fallback")

    def test_pool_results_identical_with_fallback_forced(
        self, tiny_soc, monkeypatch
    ):
        class Exploding:
            def __init__(self, *args, **kwargs):
                raise OSError("no shared memory here")

        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 6, 8)]
        inline = BatchRunner(max_workers=1).run(jobs)
        # Parent-side failure → payload descriptors ride the pickle
        # channel; workers still skip their private table builds.
        monkeypatch.setattr(
            shm._shared_memory, "SharedMemory", Exploding
        )
        pooled = BatchRunner(max_workers=2).run(jobs)
        assert pooled == inline


class TestWorkerDensePath:
    def test_pool_matches_inline_with_transport(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, w, (1, 2, 3)) for w in (4, 6, 8)]
        inline = BatchRunner(max_workers=1).run(jobs)
        shared = BatchRunner(max_workers=2).run(jobs)
        private = BatchRunner(max_workers=2, share_tables=False).run(jobs)
        assert inline == shared == private

    def test_stale_descriptor_falls_back_to_cache(self, tiny_soc):
        # A descriptor for *different* SOC content must be ignored.
        from repro.engine.batch import _run_job_cached

        matrix = matrix_for(tiny_soc, 8)
        descriptor = DenseDescriptor(
            fingerprint="not-this-soc",
            num_cores=matrix.num_cores,
            total_width=matrix.total_width,
            payload=matrix.to_bytes(),
        )
        job = BatchJob(tiny_soc, 6, 2)
        from_cache = _run_job_cached({}, job)
        via_descriptor = _run_job_cached({}, job, descriptor=descriptor)
        assert from_cache == via_descriptor

    def test_matching_descriptor_used_without_table_builds(
        self, tiny_soc, monkeypatch
    ):
        import repro.wrapper.pareto as pareto
        from repro.engine.batch import _run_job_cached

        matrix = matrix_for(tiny_soc, 8)
        descriptor = DenseDescriptor(
            fingerprint=soc_fingerprint(tiny_soc),
            num_cores=matrix.num_cores,
            total_width=matrix.total_width,
            payload=matrix.to_bytes(),
        )
        job = BatchJob(tiny_soc, 8, 2, options={"polish": False})
        reference = _run_job_cached({}, job)

        def exploding(core, width):
            raise AssertionError(
                "dense path must not build wrapper tables"
            )

        # Only the handful of designs for the final report may run —
        # count them instead of forbidding them outright.
        calls = []
        original = pareto.design_wrapper

        def counting(core, width):
            calls.append((core.name, width))
            return original(core, width)

        monkeypatch.setattr(pareto, "design_wrapper", exploding)
        import repro.engine.kernel as kernel_module
        monkeypatch.setattr(kernel_module, "design_wrapper", counting)
        caches = {}
        point = _run_job_cached(caches, job, descriptor=descriptor)
        assert point == reference
        assert caches == {}  # no private WrapperTableCache created
        # Designs ran only for the final architecture's bus widths.
        assert len(calls) <= len(tiny_soc.cores) * len(point.partition)
