"""The parallel exact polish: pool fan-out of ``polish_top_k``.

The serial polish loop never threads one candidate's solution into
the next solve, so the tasks are independent; the engine fans them
over the pool and the first-strict-minimum merge must reproduce the
serial answer bit for bit.
"""

import pytest

from repro.engine.batch import BatchJob, BatchRunner

POLISH_OPTIONS = {"polish_top_k": 4, "prune": "lb"}


def polish_job(soc):
    return BatchJob(soc, 24, options=POLISH_OPTIONS)


def signature(point):
    return (
        point.testing_time,
        point.partition,
        point.num_tams,
        point.certificate.gap,
    )


class TestPolishFanOut:
    @pytest.fixture(scope="class")
    def inline_reference(self, d695):
        (point,) = BatchRunner(max_workers=1).run([polish_job(d695)])
        return signature(point)

    def test_pooled_polish_matches_inline(
        self, d695, inline_reference
    ):
        runner = BatchRunner(max_workers=4)
        (point,) = runner.run([polish_job(d695)], shard=4)
        assert signature(point) == inline_reference

    def test_polish_tasks_actually_fanned(self, d695):
        runner = BatchRunner(max_workers=4)
        runner.run([polish_job(d695)], shard=4)
        snapshot = runner.metrics.snapshot()
        assert snapshot.counter("engine.polish_tasks_fanned") == 4
        assert snapshot.counter("engine.polish_tasks_run") == 4

    def test_single_candidate_polish_stays_serial(self, d695):
        runner = BatchRunner(max_workers=4)
        runner.run([BatchJob(d695, 24, options={"prune": "lb"})],
                   shard=4)
        snapshot = runner.metrics.snapshot()
        assert snapshot.counter("engine.polish_tasks_fanned") == 0
