"""FaultPlan parsing, one-shot tokens, and hook semantics."""

import pytest

from repro.engine.faults import FAULTS_ENV, FaultPlan
from repro.exceptions import ConfigurationError


class TestParse:
    def test_full_plan_round_trips(self, tmp_path):
        state = tmp_path / "tokens"
        plan = FaultPlan.parse(
            f"seed=7,state={state},crash@2,shm@1,slow@0=0.25,"
            f"ipc@3,corrupt"
        )
        assert plan.seed == 7
        assert plan.crash_points == frozenset({2})
        assert plan.shm_points == frozenset({1})
        assert plan.slow_points == ((0, 0.25),)
        assert plan.ipc_drops == frozenset({3})
        assert plan.corrupt_writes is True
        assert plan.state_dir == str(state)
        assert state.is_dir()  # parse creates the token directory

    def test_empty_directives_are_skipped(self):
        plan = FaultPlan.parse("shm@0,, ,shm@2")
        assert plan.shm_points == frozenset({0, 2})

    @pytest.mark.parametrize("text", [
        "explode@1",            # unknown directive
        "crash@soon",           # non-integer point
        "slow@1=fast",          # non-numeric delay
        "slow@1=-0.5",          # negative delay
        "seed=lucky",           # non-integer seed
    ])
    def test_malformed_directives_refuse_to_run(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_crash_and_corrupt_require_token_state(self):
        # Without one-shot tokens these faults would re-fire on every
        # re-run and the plan could never converge.
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("crash@1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("corrupt")

    def test_from_env(self, tmp_path):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV: "  "}) is None
        plan = FaultPlan.from_env({FAULTS_ENV: "shm@4"})
        assert plan is not None and plan.shm_points == frozenset({4})


class TestHooks:
    def test_crash_fires_exactly_once(self, tmp_path):
        text = f"state={tmp_path / 's'},crash@1"
        plan = FaultPlan.parse(text)
        assert plan.take_crash(0) is False
        assert plan.take_crash(1) is True
        # A re-parsed plan (the re-run after the crash) sees the
        # claimed token and lets the point through.
        assert FaultPlan.parse(text).take_crash(1) is False

    def test_shm_failure_without_state_repeats(self):
        plan = FaultPlan.parse("shm@0")
        assert plan.take_shm_failure(0) is True
        assert plan.take_shm_failure(0) is True
        assert plan.take_shm_failure(1) is False

    def test_slow_delay(self, tmp_path):
        plan = FaultPlan.parse(f"state={tmp_path / 's'},slow@2=0.125")
        assert plan.slow_delay(0) is None
        assert plan.slow_delay(2) == 0.125
        assert plan.slow_delay(2) is None  # one-shot under state=

    def test_ipc_drop_threshold_is_claimed_per_stream(self, tmp_path):
        plan = FaultPlan.parse(f"state={tmp_path / 's'},ipc@2")
        assert plan.take_ipc_drop() == 2
        assert plan.take_ipc_drop() is None
        assert plan.take_ipc_drop(stream_index=1) == 2

    def test_corrupt_write_fires_once(self, tmp_path):
        plan = FaultPlan.parse(f"state={tmp_path / 's'},corrupt")
        assert plan.take_corrupt_write() is True
        assert plan.take_corrupt_write() is False

    def test_fired_faults_are_counted(self):
        from repro.obs import REGISTRY

        before = REGISTRY.snapshot().counter("faults.injected")
        FaultPlan.parse("shm@0").take_shm_failure(0)
        after = REGISTRY.snapshot().counter("faults.injected")
        assert after == before + 1
