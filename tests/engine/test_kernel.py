"""Differential tests: the dense sweep kernel vs the legacy oracle.

The kernel's contract is *bit-identity*: on any input, every
observable of the sweep — testing time, winning partition, assignment
vector, bus times, abort behavior, runners-up, per-B statistics —
matches the legacy ``_times_for`` + ``core_assign`` path exactly.
Randomized SOCs from :mod:`repro.soc.generator` drive the comparison.
"""

import itertools

import pytest

from repro.assign.core_assign import core_assign, reference_buses
from repro.engine.kernel import (
    DenseTimeMatrix,
    KernelWorkspace,
    build_dense_matrix,
    dense_time_tables,
    kernel_assign,
)
from repro.exceptions import ConfigurationError
from repro.partition.enumerate import unique_partitions
from repro.partition.evaluate import partition_evaluate
from repro.soc.generator import random_soc
from repro.wrapper.pareto import TimeTable, build_time_tables


def tables_for(soc, width):
    tables = build_time_tables(soc, width)
    return [tables[core.name] for core in soc.cores]


def search_key(result):
    """Every observable of a PartitionSearchResult, hashable."""
    return (
        result.testing_time,
        result.best_partition,
        result.best.assignment,
        result.best.bus_times,
        tuple(
            (s.num_tams, s.num_unique, s.num_enumerated, s.num_completed)
            for s in result.stats
        ),
        tuple(
            (r.testing_time, r.widths, r.assignment)
            for r in result.runners_up
        ),
    )


class TestDenseMatrix:
    def test_matches_table_lookups(self, tiny_soc):
        tables = tables_for(tiny_soc, 12)
        matrix = build_dense_matrix(tables, 12)
        for index, table in enumerate(tables):
            for width in range(1, 13):
                assert matrix.time(index, width) == table.time(width)

    def test_columns_match_and_are_memoized(self, tiny_soc):
        tables = tables_for(tiny_soc, 10)
        matrix = build_dense_matrix(tables, 10)
        column = matrix.column(7)
        assert column == tuple(t.time(7) for t in tables)
        assert matrix.column(7) is column

    def test_dense_row_matches_times(self, tiny_soc):
        tables = tables_for(tiny_soc, 10)
        for table in tables:
            assert table.dense_row(8) == [
                table.time(w) for w in range(1, 9)
            ]

    def test_rejects_narrow_tables(self, tiny_soc):
        tables = tables_for(tiny_soc, 8)
        with pytest.raises(ConfigurationError):
            build_dense_matrix(tables, 9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            DenseTimeMatrix([1, 2, 3], 2, 2)

    def test_round_trips_through_bytes(self, tiny_soc):
        tables = tables_for(tiny_soc, 9)
        matrix = build_dense_matrix(tables, 9)
        clone = DenseTimeMatrix.from_buffer(
            matrix.to_bytes(), matrix.num_cores, matrix.total_width
        )
        for width in range(1, 10):
            assert clone.column(width) == matrix.column(width)

    def test_lower_bound_is_admissible(self, tiny_soc):
        tables = tables_for(tiny_soc, 12)
        matrix = build_dense_matrix(tables, 12)
        for count in (1, 2, 3):
            for widths in unique_partitions(12, count):
                bound = matrix.lower_bound(widths)
                outcome = kernel_assign(matrix, widths)
                assert bound <= outcome.testing_time


class TestKernelAssignDifferential:
    """kernel_assign == core_assign, core by core, abort by abort."""

    WIDTH_SETS = [
        (1,), (7,), (3, 4), (2, 2, 3), (1, 2, 4), (32, 16, 8),
        (8, 16, 32), (4, 4, 4), (5, 1, 3, 2), (1, 1, 1, 1, 3),
    ]

    @pytest.mark.parametrize("seed", range(6))
    def test_completion_identical(self, seed):
        soc = random_soc(f"kern{seed}", 3 + seed, seed)
        tables = tables_for(soc, 64)
        matrix = build_dense_matrix(tables, 64)
        for widths in self.WIDTH_SETS:
            times = [[t.time(w) for w in widths] for t in tables]
            legacy = core_assign(times, list(widths))
            kernel = kernel_assign(matrix, widths)
            assert legacy == kernel, widths

    @pytest.mark.parametrize("seed", range(6))
    def test_abort_thresholds_identical(self, seed):
        soc = random_soc(f"abort{seed}", 4 + seed % 4, 100 + seed)
        tables = tables_for(soc, 16)
        matrix = build_dense_matrix(tables, 16)
        workspace = KernelWorkspace()
        for widths in ((4, 5, 7), (16,), (1, 3, 5, 7), (8, 8)):
            full = core_assign(
                [[t.time(w) for w in widths] for t in tables],
                list(widths),
            ).testing_time
            # Sweep thresholds around the true value: below, at, and
            # above it, including the degenerate 0.
            for best_known in (0, 1, full - 1, full, full + 1, 10 ** 12):
                times = [[t.time(w) for w in widths] for t in tables]
                legacy = core_assign(times, list(widths), best_known)
                kernel = kernel_assign(
                    matrix, widths, best_known, workspace
                )
                assert legacy == kernel, (widths, best_known)
                # Completion iff the final time beats the incumbent.
                assert kernel.completed == (full < best_known)

    def test_ties_break_identically(self):
        # A constructed all-ties instance: every core identical, so
        # the Line 13-16 tie-breaks decide everything.
        core_times = [[100, 100, 100]] * 4

        class Flat:
            def __init__(self):
                self.max_width = 4
                self.core = type("C", (), {"name": "flat"})()

            def dense_row(self, max_width):
                return [100] * max_width

        tables = [Flat() for _ in range(4)]
        matrix = build_dense_matrix(tables, 4)
        for widths in ((1, 2, 4), (2, 2, 2), (4, 2, 1)):
            legacy = core_assign(core_times, list(widths))
            kernel = kernel_assign(matrix, widths[:3])
            assert legacy.result.assignment == kernel.result.assignment


class TestPartitionEvaluateDifferential:
    """Full-sweep bit-identity across engines, modes and SOCs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_sweeps_identical(self, seed):
        soc = random_soc(f"sweep{seed}", 3 + seed % 5, 10 + seed)
        tables = tables_for(soc, 14)
        for total_width, counts in ((9, 3), (14, range(1, 5))):
            for enum, keep_top, stratify, prune in itertools.product(
                ("unique", "increment"), (1, 3), (False, True),
                (True, False),
            ):
                kwargs = dict(
                    enumerator=enum, keep_top=keep_top,
                    stratify_by_tam_count=stratify, prune=prune,
                )
                legacy = partition_evaluate(
                    tables, total_width, counts, engine="legacy",
                    **kwargs,
                )
                kernel = partition_evaluate(
                    tables, total_width, counts, engine="kernel",
                    **kwargs,
                )
                assert search_key(legacy) == search_key(kernel), kwargs

    @pytest.mark.parametrize("seed", range(5))
    def test_lb_pruning_changes_nothing_observable(self, seed):
        soc = random_soc(f"lb{seed}", 4 + seed % 4, 20 + seed)
        tables = tables_for(soc, 13)
        plain = partition_evaluate(tables, 13, range(1, 5))
        pruned = partition_evaluate(
            tables, 13, range(1, 5), prune="lb"
        )
        assert search_key(plain) == search_key(pruned)
        # Every lb-pruned partition is enumerated but not completed.
        for stats in pruned.stats:
            assert stats.num_lb_pruned <= (
                stats.num_enumerated - stats.num_completed
            )

    def test_lb_pruning_fires(self, p21241):
        tables = tables_for(p21241, 24)
        pruned = partition_evaluate(
            tables, 24, range(1, 7), prune="lb"
        )
        assert pruned.num_lb_pruned > 0

    def test_lb_requires_kernel(self, tiny_soc):
        tables = tables_for(tiny_soc, 8)
        with pytest.raises(ConfigurationError, match="lb"):
            partition_evaluate(
                tables, 8, 2, prune="lb", engine="legacy"
            )

    def test_rejects_unknown_engine(self, tiny_soc):
        tables = tables_for(tiny_soc, 8)
        with pytest.raises(ConfigurationError, match="engine"):
            partition_evaluate(tables, 8, 2, engine="turbo")

    def test_rejects_unknown_prune_mode(self, tiny_soc):
        tables = tables_for(tiny_soc, 8)
        with pytest.raises(ConfigurationError, match="prune"):
            partition_evaluate(tables, 8, 2, prune="maybe")

    def test_dense_matrix_can_be_supplied(self, tiny_soc):
        tables = tables_for(tiny_soc, 10)
        matrix = build_dense_matrix(tables, 10)
        direct = partition_evaluate(tables, 8, 2)
        supplied = partition_evaluate(tables, 8, 2, dense=matrix)
        assert search_key(direct) == search_key(supplied)

    def test_dense_matrix_shape_checked(self, tiny_soc):
        tables = tables_for(tiny_soc, 10)
        matrix = build_dense_matrix(tables, 6)
        with pytest.raises(ConfigurationError, match="dense matrix"):
            partition_evaluate(tables, 8, 2, dense=matrix)


class TestEnginePathDefaults:
    def test_evaluate_point_defaults_to_lb_kernel(self, tiny_soc):
        from repro.analysis.sweep import evaluate_point

        default = evaluate_point(tiny_soc, 8, num_tams=2)
        explicit = evaluate_point(
            tiny_soc, 8, num_tams=2, prune="lb", sweep_engine="kernel"
        )
        assert default == explicit

    def test_evaluate_point_accepts_legacy_oracle(self, tiny_soc):
        # The lb default must not leak into the legacy engine — the
        # documented differential-oracle path through the batch/
        # service layers has to stay usable.
        from repro.analysis.sweep import evaluate_point

        legacy = evaluate_point(
            tiny_soc, 8, num_tams=2, sweep_engine="legacy"
        )
        kernel = evaluate_point(tiny_soc, 8, num_tams=2)
        assert legacy == kernel


class TestDenseTimeTable:
    """The times-only stand-in answers exactly like the real table."""

    @pytest.mark.parametrize("seed", range(4))
    def test_times_and_designs_match(self, seed):
        soc = random_soc(f"adapter{seed}", 3 + seed, 30 + seed)
        width = 12
        real = build_time_tables(soc, width)
        matrix = build_dense_matrix(
            [real[c.name] for c in soc.cores], width
        )
        adapters = dense_time_tables(soc.cores, matrix)
        for core in soc.cores:
            table, adapter = real[core.name], adapters[core.name]
            assert adapter.max_width == width
            assert adapter.min_time == table.min_time
            for w in range(1, width + 1):
                assert adapter.time(w) == table.time(w)
                assert adapter.design(w) == table.design(w)

    def test_core_count_mismatch_rejected(self, tiny_soc):
        tables = tables_for(tiny_soc, 8)
        matrix = build_dense_matrix(tables, 8)
        with pytest.raises(ConfigurationError):
            dense_time_tables(tiny_soc.cores[:2], matrix)


class TestReferenceBuses:
    def test_matches_bruteforce(self):
        for widths in itertools.chain(
            itertools.product((1, 2, 3), repeat=3),
            [(32, 16, 8), (5,), (2, 2), (1, 4, 2, 4, 1)],
        ):
            references = reference_buses(widths)
            for bus, width in enumerate(widths):
                narrower = [
                    b for b in range(len(widths))
                    if widths[b] < width
                ]
                if not narrower:
                    assert references[bus] == -1
                else:
                    expected = max(
                        narrower, key=lambda b: (widths[b], -b)
                    )
                    assert references[bus] == expected
