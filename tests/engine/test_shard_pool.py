"""Engine-level sharding: pool execution, transports, and counters."""

import pytest

import repro.engine.shm as shm
from repro.engine.batch import BatchJob, BatchRunner, _run_job_cached
from repro.engine.kernel import build_dense_matrix, dense_time_tables
from repro.engine.shm import (
    IncumbentBoard,
    SegmentRegistry,
    attach_design_steps,
    design_steps_blob,
    parse_design_steps,
)
from repro.api.specs import GridSpec
from repro.soc.fingerprint import soc_fingerprint
from repro.wrapper.pareto import build_time_tables


def _drop(fingerprint):
    if fingerprint in shm._ATTACHED:
        shm._release_entry(fingerprint)
    shm._DESIGN_STEPS.pop(fingerprint, None)


class TestShardedPoolIdentity:
    def test_sharded_job_matches_inline_and_plain_pool(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, 10, (1, 2, 3))]
        inline = BatchRunner(max_workers=1).run(jobs)
        plain = BatchRunner(max_workers=2, shard=None).run(jobs)
        sharded_runner = BatchRunner(max_workers=2, shard=4)
        sharded = sharded_runner.run(jobs)
        assert inline == plain == sharded
        assert sharded_runner.jobs_sharded == 1

    def test_shard_hint_via_grid_spec_runner(self, tiny_soc,
                                             monkeypatch):
        import repro.soc.loader as loader

        monkeypatch.setattr(
            loader, "load_source",
            lambda source: tiny_soc,
        )
        spec = GridSpec.from_axes(
            ["tiny"], [8, 10], num_tams=2, runner={"shard": 3},
        )
        runner = BatchRunner(max_workers=2)
        grid = runner.run_grid(spec)
        assert runner.jobs_sharded == len(grid) == 2
        reference = BatchRunner(max_workers=1).run(
            [BatchJob(tiny_soc, width, 2) for width in (8, 10)]
        )
        assert [result for _, result in grid] == reference

    def test_shard_hint_excluded_from_canonical_key(self, tiny_soc,
                                                    monkeypatch):
        import repro.soc.loader as loader

        monkeypatch.setattr(loader, "load_source",
                            lambda source: tiny_soc)
        plain = GridSpec.from_axes(["tiny"], [8], num_tams=2)
        hinted = GridSpec.from_axes(
            ["tiny"], [8], num_tams=2, runner={"shard": 16},
        )
        assert plain.canonical_key() == hinted.canonical_key()
        # ...but the hint survives serialization.
        assert GridSpec.from_dict(
            hinted.to_dict()
        ).runner_options() == {"shard": 16}

    def test_auto_policy_skips_small_and_crowded_grids(self, tiny_soc):
        runner = BatchRunner(max_workers=2, shard="auto")
        job = BatchJob(tiny_soc, 10, 2)
        # Small enumeration: p(10, 2) is far below the auto floor.
        assert runner._shard_count(job, None, 4, 1) == 0
        # Jobs >= workers: whole-job parallelism already saturates.
        assert runner._shard_count(job, None, 4, 4) == 0
        # Explicit override shards regardless of size.
        assert runner._shard_count(job, 3, 4, 4) == 3

    def test_non_shardable_options_fall_back(self, tiny_soc):
        runner = BatchRunner(max_workers=2, shard=4)
        stratified = BatchJob(
            tiny_soc, 10, (1, 2),
            options={"polish_per_tam_count": True, "polish_top_k": 2},
        )
        assert runner._shard_count(stratified, None, 2, 1) == 0
        legacy = BatchJob(
            tiny_soc, 10, 2, options={"sweep_engine": "legacy"},
        )
        assert runner._shard_count(legacy, None, 2, 1) == 0
        # And the runs still succeed (served by whole-job dispatch).
        inline = BatchRunner(max_workers=1).run([stratified, legacy])
        pooled = runner.run([stratified, legacy])
        assert inline == pooled
        assert runner.jobs_sharded == 0

    def test_shard_validation(self, tiny_soc):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            BatchRunner(shard=-1)
        with pytest.raises(ConfigurationError):
            BatchRunner(shard="sideways")
        # The per-call override — the path an untrusted submitted
        # GridSpec runner hint arrives through — is validated too.
        runner = BatchRunner(max_workers=1)
        job = BatchJob(tiny_soc, 6, 2)
        with pytest.raises(ConfigurationError):
            runner.run([job], shard="garbage")
        with pytest.raises(ConfigurationError):
            runner.run([job], shard=-3)

    def test_single_unshardable_job_runs_inline(self, tiny_soc):
        # One job, no sharding: the old inline path (no pool spawn).
        runner = BatchRunner(max_workers=4, shard=None)
        results = runner.run([BatchJob(tiny_soc, 8, 2)])
        assert runner.pools_started == 0
        assert results == BatchRunner(max_workers=1).run(
            [BatchJob(tiny_soc, 8, 2)]
        )


class TestPooledColdBuilds:
    def test_cold_multi_soc_grid_builds_through_pool(
        self, tiny_soc, d695, p21241
    ):
        socs = [tiny_soc, d695, p21241]
        jobs = [BatchJob(soc, 12, 2) for soc in socs]
        serial = BatchRunner(max_workers=1).run(jobs)
        pooled_runner = BatchRunner(max_workers=2)
        pooled = pooled_runner.run(jobs)
        assert serial == pooled
        assert pooled_runner.shm_fallbacks == 0

    def test_warm_parent_reuses_matrices_across_runs(self, tiny_soc):
        with BatchRunner(max_workers=2, persistent=True) as runner:
            jobs = [BatchJob(tiny_soc, 10, 2)]
            first = runner.run(jobs)
            assert runner.run(jobs) == first
            fingerprint = soc_fingerprint(tiny_soc)
            assert fingerprint in runner._matrices


class TestStaircaseTransport:
    def test_descriptor_carries_design_staircases(self, tiny_soc):
        tables = build_time_tables(tiny_soc, 10)
        table_list = [tables[c.name] for c in tiny_soc.cores]
        matrix = build_dense_matrix(table_list, 10)
        blob = design_steps_blob(table_list)
        registry = SegmentRegistry()
        try:
            descriptor = registry.publish(
                "fp-stairs", matrix, designs=blob
            )
            assert descriptor.design_shm_name is not None
            assert descriptor.design_size == len(blob)
            steps = attach_design_steps(descriptor)
            assert set(steps) == {c.name for c in tiny_soc.cores}
        finally:
            registry.close()
            _drop("fp-stairs")

    def test_dense_tables_decode_designs_without_design_wrapper(
        self, tiny_soc, monkeypatch
    ):
        tables = build_time_tables(tiny_soc, 10)
        table_list = [tables[c.name] for c in tiny_soc.cores]
        matrix = build_dense_matrix(table_list, 10)
        steps = parse_design_steps(design_steps_blob(table_list))
        dense = dense_time_tables(
            tiny_soc.cores, matrix, design_steps=steps
        )

        import repro.engine.kernel as kernel_module

        def exploding(core, width):
            raise AssertionError(
                "design recovery must use the transported staircase"
            )

        monkeypatch.setattr(
            kernel_module, "design_wrapper", exploding
        )
        for core in tiny_soc.cores:
            for width in (1, 4, 10):
                assert dense[core.name].design(width) == \
                    tables[core.name].design(width)

    def test_worker_job_pays_zero_designs_with_staircases(
        self, tiny_soc, monkeypatch
    ):
        tables = build_time_tables(tiny_soc, 8)
        table_list = [tables[c.name] for c in tiny_soc.cores]
        matrix = build_dense_matrix(table_list, 8)
        registry = SegmentRegistry()
        try:
            descriptor = registry.publish(
                soc_fingerprint(tiny_soc), matrix,
                designs=design_steps_blob(table_list),
            )
            job = BatchJob(tiny_soc, 8, 2, options={"polish": False})
            reference = _run_job_cached({}, job)

            import repro.engine.kernel as kernel_module
            import repro.wrapper.pareto as pareto

            def exploding(core, width):
                raise AssertionError("worker ran Design_wrapper")

            monkeypatch.setattr(pareto, "design_wrapper", exploding)
            monkeypatch.setattr(
                kernel_module, "design_wrapper", exploding
            )
            caches = {}
            point = _run_job_cached(
                caches, job, descriptor=descriptor
            )
            assert point == reference
            assert caches == {}
        finally:
            registry.close()
            _drop(soc_fingerprint(tiny_soc))

    def test_corrupt_blob_degrades_to_none(self):
        assert parse_design_steps(b"not json") is None
        assert parse_design_steps(b'{"schema": 99}') is None


class TestIncumbentBoardShm:
    def test_round_trip_and_forward_only_reads(self):
        board = IncumbentBoard.create(3, keep_top=2)
        if board is None:
            pytest.skip("shared memory unavailable")
        try:
            board.publish(0, [7])
            board.publish(2, [1, 2])
            attached = IncumbentBoard.attach(board.descriptor())
            try:
                assert attached.earlier_times(0) == []
                assert attached.earlier_times(1) == [7]
                assert attached.earlier_times(2) == [7]
            finally:
                attached.close()
        finally:
            board.close()

    def test_attach_missing_board_returns_none(self):
        from repro.engine.shm import BoardDescriptor

        ghost = BoardDescriptor(
            shm_name="psm_no_such_board_repro",
            num_shards=2, keep_top=1,
        )
        assert IncumbentBoard.attach(ghost) is None
        assert IncumbentBoard.attach(None) is None

    def test_publish_shrinking_entry_resets_sentinel(self):
        board = IncumbentBoard.create(2, keep_top=3)
        if board is None:
            pytest.skip("shared memory unavailable")
        try:
            board.publish(0, [5, 6, 7])
            board.publish(0, [3])
            assert board.earlier_times(1) == [3]
        finally:
            board.close()


class TestFallbackCounter:
    def test_lost_segment_fallback_is_counted(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, width, 2) for width in (6, 8)]
        runner = BatchRunner(max_workers=1)
        # Inline mode never ships descriptors: no fallbacks.
        runner.run(jobs)
        assert runner.shm_fallbacks == 0
        # Worker-path fallback: a descriptor whose segment is gone
        # forces the silent private rebuild — exercised in-process
        # through the same tracked entry point the pool worker uses.
        from repro.engine.batch import _run_job_safe
        from repro.engine.shm import DenseDescriptor

        tables = build_time_tables(tiny_soc, 8)
        matrix = build_dense_matrix(
            [tables[c.name] for c in tiny_soc.cores], 8
        )
        descriptor = DenseDescriptor(
            fingerprint=soc_fingerprint(tiny_soc),
            num_cores=matrix.num_cores,
            total_width=matrix.total_width,
            shm_name="psm_gone_repro",
        )
        result, fallbacks = _run_job_safe(
            {}, jobs[0], "raise", 0, descriptor=descriptor,
        )
        assert fallbacks == 1
        assert result == BatchRunner(max_workers=1).run([jobs[0]])[0]

    def test_counter_reported_by_server_info(self, tiny_soc):
        from repro.service.server import ExplorationServer

        with ExplorationServer(max_workers=1) as server:
            record = server.submit([BatchJob(tiny_soc, 6, 2)])
            server.wait(record.job_id, timeout=60)
            info = server.info()
            assert "shm_fallbacks" in info
            assert "jobs_sharded" in info
