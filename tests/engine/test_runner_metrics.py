"""Per-run metrics on a persistent runner, and the telemetry channel.

The regression this file pins down: ``BatchRunner`` used to keep its
execution counters (``jobs_sharded``, ``shm_fallbacks``, ...) as
plain attributes that were *never reset*, so on a persistent runner
the second ``run_grid`` call reported the first call's work too.
Counters now live in a :class:`repro.obs.MetricsRegistry` and every
run publishes ``last_run_metrics`` — the snapshot *delta* for that
run alone — while the registry keeps the lifetime totals.
"""

import pytest

from repro.engine.batch import (
    BatchJob,
    BatchRunner,
    FailedPoint,
    align_point_telemetry,
)
from repro.obs import MetricsSnapshot, TaskTelemetry


class TestPerRunSnapshots:
    def test_second_run_reports_only_its_own_work(self, d695):
        runner = BatchRunner(max_workers=1)
        runner.run_grid([d695], [8, 10], num_tams=2)
        first = runner.last_run_metrics
        runner.run_grid([d695], [12], num_tams=2)
        second = runner.last_run_metrics

        assert first.counter("sweep.points") == 2
        # The regression: this used to read 3 on a reused runner.
        assert second.counter("sweep.points") == 1
        # The registry still carries the lifetime totals.
        assert runner.metrics.counter("sweep.points").value == 3

    def test_partition_counters_ride_the_run_delta(self, d695):
        runner = BatchRunner(max_workers=1)
        runner.run_grid([d695], [12], num_tams=2)
        delta = runner.last_run_metrics
        assert delta.counter("sweep.partitions_enumerated") > 0
        assert delta.counter("sweep.partitions_completed") > 0

    def test_legacy_counter_properties_stay_cumulative(self, d695):
        runner = BatchRunner(max_workers=1)
        runner.run_grid([d695], [8], num_tams=2)
        runner.run_grid([d695], [8], num_tams=2)
        # The read-only compatibility surface: lifetime totals, as
        # the CLI --stats block and existing tests expect.
        assert runner.pools_started == 0  # inline: no pool
        assert runner.shm_fallbacks == 0
        assert runner.jobs_sharded == 0

    def test_snapshot_delta_is_a_metrics_snapshot(self, d695):
        runner = BatchRunner(max_workers=1)
        runner.run_grid([d695], [8], num_tams=2)
        assert isinstance(runner.last_run_metrics, MetricsSnapshot)
        # Serializes for events / info / warehouse.
        record = runner.last_run_metrics.to_dict()
        assert record["counters"]["sweep.points"] == 1


class TestPerJobTelemetry:
    def test_inline_run_fills_one_slot_per_job(self, d695):
        runner = BatchRunner(max_workers=1)
        runner.run_grid([d695], [8, 10], num_tams=2)
        telemetry = runner.last_run_telemetry
        assert len(telemetry) == 2
        for entry in telemetry:
            assert isinstance(entry, TaskTelemetry)
            assert entry.metrics.counter("sweep.points") == 1

    def test_failed_jobs_drop_out_of_point_alignment(self, d695):
        runner = BatchRunner(max_workers=1, on_error="record")
        jobs = [
            BatchJob(d695, total_width=12, num_tams=2),
            # Infeasible: more TAMs than wires.
            BatchJob(d695, total_width=2, num_tams=5),
        ]
        results = runner.run(jobs)
        assert isinstance(results[1], FailedPoint)
        aligned = align_point_telemetry(
            results, runner.last_run_telemetry
        )
        # One entry per *successful* point — the warehouse's
        # points-row alignment contract.
        assert len(aligned) == 1

    def test_pool_run_ships_worker_telemetry_back(self, d695):
        with BatchRunner(max_workers=2, persistent=True) as runner:
            runner.run_grid([d695], [8, 10], num_tams=2)
            telemetry = runner.last_run_telemetry
            assert len(telemetry) == 2
            for entry in telemetry:
                assert isinstance(entry, TaskTelemetry)
            # Worker deltas absorbed exactly once: the run total
            # equals the per-job sum, no double counting.
            assert runner.last_run_metrics.counter(
                "sweep.points"
            ) == 2
            assert runner.pools_started == 1

    def test_sharded_job_merges_shard_telemetry(self, d695):
        with BatchRunner(
            max_workers=2, shard=2, persistent=True
        ) as runner:
            runner.run([BatchJob(d695, total_width=12, num_tams=2)])
            assert runner.jobs_sharded == 1
            delta = runner.last_run_metrics
            assert delta.counter("shard.shards_planned") == 2
            assert delta.counter("shard.shards_run") == 2
            (merged,) = runner.last_run_telemetry
            assert isinstance(merged, TaskTelemetry)
