"""Unit and equivalence tests for the parallel batch-sweep engine."""

import pytest

import repro.wrapper.pareto as pareto
from repro.analysis.certificates import certify
from repro.analysis.sweep import SweepPoint, sweep_widths
from repro.analysis.utilization import analyze_utilization
from repro.engine.batch import BatchJob, BatchRunner
from repro.exceptions import ConfigurationError
from repro.optimize.co_optimize import co_optimize
from repro.wrapper.pareto import build_time_tables


def sequential_reference(soc, widths, num_tams):
    """The seed's code path: rebuild tables per width, no sharing."""
    points = []
    for width in widths:
        result = co_optimize(soc, width, num_tams=num_tams)
        tables = build_time_tables(soc, width)
        points.append(SweepPoint(
            total_width=width,
            num_tams=result.num_tams,
            partition=result.partition,
            testing_time=result.testing_time,
            certificate=certify(soc, result.final, tables),
            utilization=analyze_utilization(soc, result.final, tables),
        ))
    return points


class TestBatchJob:
    def test_freezes_count_iterables(self, tiny_soc):
        job = BatchJob(tiny_soc, 8, num_tams=range(1, 4))
        assert job.num_tams == (1, 2, 3)

    def test_keeps_int_and_none(self, tiny_soc):
        assert BatchJob(tiny_soc, 8, num_tams=2).num_tams == 2
        assert BatchJob(tiny_soc, 8).num_tams is None

    def test_rejects_bad_width(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            BatchJob(tiny_soc, 0)

    def test_describe(self, tiny_soc):
        assert "tiny W=8 B=2" in BatchJob(tiny_soc, 8, 2).describe()
        assert "B=auto" in BatchJob(tiny_soc, 8).describe()
        assert "B in [1, 2]" in BatchJob(tiny_soc, 8, (1, 2)).describe()

    def test_freezes_option_mappings(self, tiny_soc):
        job = BatchJob(tiny_soc, 8, 2, options={"polish": False})
        assert job.options == (("polish", False),)
        assert job.options_dict() == {"polish": False}

    def test_options_reach_co_optimize(self, tiny_soc):
        unpolished = BatchRunner(max_workers=1).run([
            BatchJob(tiny_soc, 8, 2, options={"polish": False}),
        ])[0]
        polished = BatchRunner(max_workers=1).run([
            BatchJob(tiny_soc, 8, 2),
        ])[0]
        assert unpolished.testing_time >= polished.testing_time


class TestBatchRunner:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(max_workers=0)
        with pytest.raises(ConfigurationError):
            BatchRunner(chunksize=0)

    def test_empty_batch(self):
        assert BatchRunner().run([]) == []

    def test_inline_results_in_job_order(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, w, 2) for w in (8, 4, 6)]
        points = BatchRunner(max_workers=1).run(jobs)
        assert [p.total_width for p in points] == [8, 4, 6]

    def test_parallel_equals_inline(self, tiny_soc):
        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 6, 8)]
        inline = BatchRunner(max_workers=1).run(jobs)
        pooled = BatchRunner(max_workers=2, chunksize=2).run(jobs)
        assert inline == pooled

    def test_run_grid_pairs_jobs_with_points(self, tiny_soc):
        grid = BatchRunner(max_workers=1).run_grid(
            [tiny_soc], (4, 6), num_tams=2
        )
        assert [(job.total_width, point.total_width)
                for job, point in grid] == [(4, 4), (6, 6)]

    def test_run_grid_accepts_one_shot_iterables(self, tiny_soc):
        grid = BatchRunner(max_workers=1).run_grid(
            iter([tiny_soc, tiny_soc]), (w for w in (4, 6)), num_tams=2
        )
        assert [job.total_width for job, _ in grid] == [4, 6, 4, 6]

    def test_cache_reused_across_runs(self, tiny_soc):
        runner = BatchRunner(max_workers=1)
        runner.run([BatchJob(tiny_soc, 6, 2)])
        cache = runner.cache_for(tiny_soc)
        assert cache.max_width == 6


class TestSequentialEquivalence:
    """Cached/parallel sweeps reproduce the seed's rebuild-per-point
    results exactly — same times, certificates and utilization."""

    def test_inline_sweep_matches_seed_reference(self, d695):
        widths = (4, 8, 12)
        assert sweep_widths(d695, widths, num_tams=2) == \
            sequential_reference(d695, widths, 2)

    def test_parallel_sweep_matches_seed_reference(self, d695):
        widths = (4, 8, 12)
        runner = BatchRunner(max_workers=2)
        assert sweep_widths(d695, widths, num_tams=2, runner=runner) == \
            sequential_reference(d695, widths, 2)


class TestDesignCallBudget:
    """Acceptance criterion: a width sweep over 1..W on d695 performs
    exactly one ``design_wrapper`` call per (core, width) pair."""

    def test_width_sweep_is_linear_in_designs(self, d695, monkeypatch):
        calls = []
        original = pareto.design_wrapper

        def counting(core, width):
            calls.append((core.name, width))
            return original(core, width)

        monkeypatch.setattr(pareto, "design_wrapper", counting)
        max_width = 8
        points = sweep_widths(d695, range(1, max_width + 1))
        assert len(points) == max_width
        expected = {
            (core.name, width)
            for core in d695.cores
            for width in range(1, max_width + 1)
        }
        assert len(calls) == len(expected)  # one call per pair...
        assert set(calls) == expected       # ...covering every pair
