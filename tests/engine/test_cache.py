"""Unit tests for the shared wrapper-table cache."""

import pytest

import repro.wrapper.pareto as pareto
from repro.engine.cache import WrapperTableCache
from repro.exceptions import ConfigurationError
from repro.wrapper.pareto import TimeTable


class TestCacheEquivalence:
    """A cached (possibly extended) table answers like a fresh build."""

    @pytest.mark.parametrize(
        "soc_name", ["d695", "p21241", "p31108", "p93791"]
    )
    def test_slices_match_fresh_tables_on_itc02_cores(
        self, soc_name, request
    ):
        soc = request.getfixturevalue(soc_name)
        cache = WrapperTableCache(soc)
        tables = cache.tables(8)
        for core in soc.cores:
            cached = tables[core.name]
            for sliced_width in (1, 4, 8):
                fresh = TimeTable(core, sliced_width)
                for width in range(1, sliced_width + 1):
                    assert cached.time(width) == fresh.time(width)
                    assert cached.design(width) == fresh.design(width)

    def test_extension_matches_fresh_build(self, d695):
        cache = WrapperTableCache(d695)
        small = cache.tables(3)
        grown = cache.tables(9)
        for core in d695.cores:
            fresh = TimeTable(core, 9)
            cached = grown[core.name]
            assert cached._times == fresh._times
            assert cached.pareto_points() == fresh.pareto_points()
            assert cached.saturation_width == fresh.saturation_width
            assert cached.min_time == fresh.min_time
        # Extension happened in place: the same mapping was grown.
        assert small is grown

    def test_extend_to_is_noop_when_covered(self, scan_core):
        table = TimeTable(scan_core, 6)
        times_before = list(table._times)
        table.extend_to(4)
        assert table.max_width == 6
        assert table._times == times_before


class TestCacheSharing:
    def test_hands_out_the_same_objects(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        first = cache.tables(5)
        second = cache.tables(5)
        assert first is second
        for name in first:
            assert first[name] is second[name]

    def test_wider_request_extends_same_objects(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        before = dict(cache.tables(4))
        after = cache.tables(7)
        for name, table in after.items():
            assert table is before[name]
            assert table.max_width == 7

    def test_narrower_request_keeps_width(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        cache.tables(7)
        cache.tables(3)
        assert cache.max_width == 7

    def test_table_list_follows_core_order(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        tables = cache.table_list(4)
        assert [t.core.name for t in tables] == [
            core.name for core in tiny_soc.cores
        ]

    def test_table_by_name(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        table = cache.table("scan_core", 4)
        assert table.core.name == "scan_core"

    def test_empty_cache_properties(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        assert cache.max_width == 0
        assert cache.design_calls() == 0

    def test_invalid_width_rejected(self, tiny_soc):
        cache = WrapperTableCache(tiny_soc)
        with pytest.raises(ConfigurationError):
            cache.tables(0)


class TestDesignCallCounting:
    """The cache's raison d'être: one design per (core, width), ever."""

    def test_extension_never_repeats_a_width(
        self, tiny_soc, monkeypatch
    ):
        calls = []
        original = pareto.design_wrapper

        def counting(core, width):
            calls.append((core.name, width))
            return original(core, width)

        monkeypatch.setattr(pareto, "design_wrapper", counting)
        cache = WrapperTableCache(tiny_soc)
        cache.tables(4)
        cache.tables(4)
        cache.tables(9)
        cache.tables(6)
        assert len(calls) == len(set(calls))
        assert len(calls) == len(tiny_soc.cores) * 9
        assert cache.design_calls() == len(calls)
