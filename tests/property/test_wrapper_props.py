"""Property-based tests for the wrapper-design layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.core import Core
from repro.wrapper.bfd import balance_units, pack_decreasing
from repro.wrapper.design import design_wrapper
from repro.wrapper.pareto import TimeTable

@st.composite
def cores_strategy(draw):
    """Valid cores only: ensure at least one terminal or scan chain."""
    chains = tuple(draw(st.lists(
        st.integers(min_value=1, max_value=100), max_size=12
    )))
    min_inputs = 0 if chains else 1
    return Core(
        name="prop",
        num_patterns=draw(st.integers(min_value=1, max_value=300)),
        num_inputs=draw(st.integers(min_value=min_inputs, max_value=80)),
        num_outputs=draw(st.integers(min_value=0, max_value=80)),
        num_bidirs=draw(st.integers(min_value=0, max_value=10)),
        scan_chain_lengths=chains,
    )


cores = cores_strategy()


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class TestBfdProperties:
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=50),
                         max_size=15),
        max_bins=st.integers(min_value=1, max_value=8),
    )
    def test_pack_places_every_item_once(self, weights, max_bins):
        bins = pack_decreasing(weights, max_bins)
        placed = sorted(index for bin_ in bins for index in bin_)
        assert placed == list(range(len(weights)))
        assert len(bins) <= max_bins

    @given(
        weights=st.lists(st.integers(min_value=1, max_value=50),
                         min_size=1, max_size=15),
        max_bins=st.integers(min_value=1, max_value=8),
    )
    def test_pack_within_capacity_when_bins_suffice(self, weights, max_bins):
        # With as many bins as items, no bin ever exceeds the soft
        # capacity (= max weight).
        bins = pack_decreasing(weights, max_bins=len(weights))
        capacity = max(weights)
        for bin_ in bins:
            assert sum(weights[i] for i in bin_) <= capacity

    @given(
        loads=st.lists(st.integers(min_value=0, max_value=40),
                       min_size=1, max_size=8),
        units=st.integers(min_value=0, max_value=60),
    )
    def test_balance_units_optimal(self, loads, units):
        placements, max_load = balance_units(loads, units)
        assert sum(placements) == units
        assert all(placed >= 0 for placed in placements)
        # Water-filling optimum: the smallest cap >= max(loads) whose
        # total headroom fits all units.  Greedy must achieve it.
        cap = max(loads)
        while sum(max(0, cap - load) for load in loads) < units:
            cap += 1
        assert max_load == cap


class TestDesignWrapperProperties:
    @settings(max_examples=60, deadline=None)
    @given(core=cores, width=st.integers(min_value=1, max_value=24))
    def test_design_is_conserving_and_within_width(self, core, width):
        design = design_wrapper(core, width)
        # Construction runs WrapperDesign validation (conservation);
        # additionally the used width never exceeds the offer.
        assert design.used_width <= width
        assert design.testing_time >= core.num_patterns

    @settings(max_examples=40, deadline=None)
    @given(core=cores)
    def test_time_table_monotone(self, core):
        table = TimeTable(core, max_width=16)
        times = [table.time(w) for w in range(1, 17)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    @settings(max_examples=40, deadline=None)
    @given(core=cores, width=st.integers(min_value=1, max_value=16))
    def test_table_never_above_raw_design(self, core, width):
        table = TimeTable(core, max_width=16)
        assert table.time(width) <= design_wrapper(core, width).testing_time

    @settings(max_examples=40, deadline=None)
    @given(core=cores, width=st.integers(min_value=1, max_value=12))
    def test_simulator_agrees_with_formula(self, core, width):
        # The cycle-accurate shift simulation must reproduce the
        # analytical model T = (1+max(si,so))p + min(si,so) exactly,
        # for any core at any width.
        from repro.wrapper.simulate import simulate_wrapper_test
        design = design_wrapper(core, width)
        result = simulate_wrapper_test(design)
        assert result.total_cycles == design.testing_time

    @settings(max_examples=40, deadline=None)
    @given(core=cores, width=st.integers(min_value=1, max_value=16))
    def test_payload_lower_bound(self, core, width):
        # The payload cannot be spread over more than `width` wrapper
        # chains, so si >= ceil(payload_in / width) (and likewise for
        # scan-out); T >= (1 + that) * p.
        table = TimeTable(core, max_width=16)
        min_shift = max(
            ceil_div(core.total_scan_cells + core.num_input_cells, width),
            ceil_div(core.total_scan_cells + core.num_output_cells, width),
        )
        assert table.time(width) >= (1 + min_shift) * core.num_patterns - \
            core.num_patterns * 0  # readable floor
