"""Property-based round-trip tests for the .soc format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.core import Core
from repro.soc.itc02 import format_soc, parse_soc
from repro.soc.soc import Soc

core_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="_-"),
    min_size=1, max_size=12,
)

@st.composite
def cores_strategy(draw):
    """Valid cores only: at least one terminal or scan chain."""
    chains = tuple(draw(st.lists(
        st.integers(min_value=1, max_value=1000), max_size=20
    )))
    min_inputs = 0 if chains else 1
    return Core(
        name=draw(core_names),
        num_patterns=draw(st.integers(min_value=1, max_value=10_000)),
        num_inputs=draw(st.integers(min_value=min_inputs, max_value=500)),
        num_outputs=draw(st.integers(min_value=0, max_value=500)),
        num_bidirs=draw(st.integers(min_value=0, max_value=50)),
        scan_chain_lengths=chains,
    )


cores = cores_strategy()


@st.composite
def socs(draw):
    name = draw(core_names)
    core_list = draw(st.lists(cores, min_size=1, max_size=8,
                              unique_by=lambda c: c.name))
    return Soc(name=name, cores=tuple(core_list))


@settings(max_examples=60, deadline=None)
@given(soc=socs())
def test_format_parse_roundtrip(soc):
    assert parse_soc(format_soc(soc)) == soc


@settings(max_examples=30, deadline=None)
@given(soc=socs())
def test_format_is_stable(soc):
    # format(parse(format(x))) == format(x)
    once = format_soc(soc)
    assert format_soc(parse_soc(once)) == once
