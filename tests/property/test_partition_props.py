"""Property-based tests for partition counting and enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.count import (
    count_partitions,
    count_partitions_up_to,
    partitions_three,
    partitions_two,
)
from repro.partition.enumerate import (
    increment_partitions,
    unique_partitions,
)

wb = st.tuples(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=6),
).filter(lambda pair: pair[1] <= pair[0])


class TestEnumerationProperties:
    @settings(max_examples=80, deadline=None)
    @given(pair=wb)
    def test_unique_matches_count(self, pair):
        total, parts = pair
        emitted = list(unique_partitions(total, parts))
        assert len(emitted) == count_partitions(total, parts)
        assert len({tuple(sorted(p)) for p in emitted}) == len(emitted)

    @settings(max_examples=80, deadline=None)
    @given(pair=wb)
    def test_every_partition_sums_and_sorted(self, pair):
        total, parts = pair
        for widths in unique_partitions(total, parts):
            assert sum(widths) == total
            assert len(widths) == parts
            assert all(w >= 1 for w in widths)
            assert list(widths) == sorted(widths)

    @settings(max_examples=50, deadline=None)
    @given(pair=wb)
    def test_increment_covers_unique(self, pair):
        total, parts = pair
        unique = {tuple(sorted(p)) for p in unique_partitions(total, parts)}
        odometer = {
            tuple(sorted(p)) for p in increment_partitions(total, parts)
        }
        assert odometer == unique

    @settings(max_examples=50, deadline=None)
    @given(pair=wb)
    def test_increment_never_fewer_than_unique(self, pair):
        total, parts = pair
        n_odometer = sum(1 for _ in increment_partitions(total, parts))
        assert n_odometer >= count_partitions(total, parts)


class TestCountProperties:
    @settings(max_examples=80, deadline=None)
    @given(total=st.integers(min_value=2, max_value=200))
    def test_two_part_closed_form(self, total):
        assert partitions_two(total) == count_partitions(total, 2)

    @settings(max_examples=80, deadline=None)
    @given(total=st.integers(min_value=3, max_value=200))
    def test_three_part_closed_form(self, total):
        assert partitions_three(total) == count_partitions(total, 3)

    @settings(max_examples=50, deadline=None)
    @given(total=st.integers(min_value=1, max_value=60))
    def test_up_to_is_cumulative(self, total):
        for max_parts in (1, 2, 3):
            if max_parts <= total:
                assert count_partitions_up_to(total, max_parts) == sum(
                    count_partitions(total, b)
                    for b in range(1, max_parts + 1)
                )

    @settings(max_examples=50, deadline=None)
    @given(pair=wb)
    def test_classical_recurrence(self, pair):
        # p(n, k) = p(n-1, k-1) + p(n-k, k);  p(m, k) = 0 for m < k.
        total, parts = pair
        if total > parts > 1:
            assert count_partitions(total, parts) == (
                count_partitions(total - 1, parts - 1)
                + count_partitions(total - parts, parts)
            )
