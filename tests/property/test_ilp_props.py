"""Property-based tests for the generic ILP substrate."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.branch_and_bound import solve_model
from repro.ilp.model import LinExpr, Model
from repro.ilp.solution import SolveStatus


@st.composite
def knapsacks(draw):
    """Random 0-1 knapsack: max value under a weight cap."""
    n = draw(st.integers(min_value=1, max_value=7))
    values = draw(st.lists(st.integers(min_value=0, max_value=30),
                           min_size=n, max_size=n))
    weights = draw(st.lists(st.integers(min_value=1, max_value=20),
                            min_size=n, max_size=n))
    cap = draw(st.integers(min_value=0, max_value=60))
    return values, weights, cap


def knapsack_brute_force(values, weights, cap):
    best = 0
    n = len(values)
    for choice in product((0, 1), repeat=n):
        weight = sum(w for w, c in zip(weights, choice) if c)
        if weight <= cap:
            best = max(best, sum(v for v, c in zip(values, choice) if c))
    return best


class TestBranchAndBoundProperties:
    @settings(max_examples=40, deadline=None)
    @given(instance=knapsacks())
    def test_knapsack_optimal(self, instance):
        values, weights, cap = instance
        model = Model("kp")
        items = [model.add_binary(f"x{i}") for i in range(len(values))]
        weight_expr = sum(
            (w * x for w, x in zip(weights, items)), start=LinExpr()
        )
        model.add_constraint(weight_expr + 0 * items[0], "<=", cap)
        value_expr = sum(
            (v * x for v, x in zip(values, items)), start=LinExpr()
        )
        model.minimize(-(value_expr) - 0 * items[0])
        solution = solve_model(model)
        assert solution.status is SolveStatus.OPTIMAL
        assert -solution.objective == knapsack_brute_force(
            values, weights, cap
        )
        assert solution.check_feasibility(model)

    @settings(max_examples=30, deadline=None)
    @given(instance=knapsacks())
    def test_solution_certificate_always_valid(self, instance):
        values, weights, cap = instance
        model = Model("kp")
        items = [model.add_binary(f"x{i}") for i in range(len(values))]
        model.add_constraint(
            sum((w * x for w, x in zip(weights, items)), start=LinExpr())
            + 0 * items[0],
            "<=",
            cap,
        )
        model.minimize(
            sum((-v * x for v, x in zip(values, items)), start=LinExpr())
            + 0 * items[0]
        )
        solution = solve_model(model)
        if solution.is_feasible:
            assert solution.check_feasibility(model)
