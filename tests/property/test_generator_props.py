"""Property-based tests for the SOC generator's range contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.generator import CoreRanges, SocSpec, generate_soc


@st.composite
def range_pair(draw, lo_min, lo_max, span_max):
    lo = draw(st.integers(min_value=lo_min, max_value=lo_max))
    hi = lo + draw(st.integers(min_value=0, max_value=span_max))
    return (lo, hi)


@st.composite
def specs(draw):
    logic = CoreRanges(
        patterns=draw(range_pair(1, 50, 400)),
        functional_ios=draw(range_pair(2, 30, 200)),
        scan_chains=draw(range_pair(1, 4, 12)),
        scan_lengths=draw(range_pair(1, 20, 300)),
    )
    memory = CoreRanges(
        patterns=draw(range_pair(1, 100, 2000)),
        functional_ios=draw(range_pair(1, 20, 100)),
    )
    return SocSpec(
        name="prop",
        num_logic_cores=draw(st.integers(min_value=1, max_value=8)),
        num_memory_cores=draw(st.integers(min_value=0, max_value=5)),
        logic=logic,
        memory=memory,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


class TestRangeContract:
    @settings(max_examples=40, deadline=None)
    @given(spec=specs())
    def test_all_values_within_ranges(self, spec):
        soc = generate_soc(spec)
        for core in soc.logic_cores:
            assert (spec.logic.patterns[0] <= core.num_patterns
                    <= spec.logic.patterns[1])
            assert (spec.logic.functional_ios[0] <= core.total_terminals
                    <= spec.logic.functional_ios[1])
            assert (spec.logic.scan_chains[0] <= core.num_scan_chains
                    <= spec.logic.scan_chains[1])
            for length in core.scan_chain_lengths:
                assert (spec.logic.scan_lengths[0] <= length
                        <= spec.logic.scan_lengths[1])
        for core in soc.memory_cores:
            assert (spec.memory.patterns[0] <= core.num_patterns
                    <= spec.memory.patterns[1])
            assert not core.is_scan_testable

    @settings(max_examples=40, deadline=None)
    @given(spec=specs())
    def test_deterministic(self, spec):
        assert generate_soc(spec) == generate_soc(spec)

    @settings(max_examples=30, deadline=None)
    @given(spec=specs())
    def test_extremes_attained_with_enough_cores(self, spec):
        # With >= 6 logic cores every published extreme has a carrier.
        if spec.num_logic_cores < 6:
            return
        soc = generate_soc(spec)
        summary = soc.logic_range_summary()
        assert summary.patterns == spec.logic.patterns
        assert summary.functional_ios == spec.logic.functional_ios
        assert summary.scan_chains == spec.logic.scan_chains
        assert summary.scan_lengths == spec.logic.scan_lengths

    @settings(max_examples=25, deadline=None)
    @given(spec=specs(), target=st.integers(min_value=10, max_value=10_000))
    def test_calibration_never_breaks_ranges(self, spec, target):
        calibrated = SocSpec(
            name=spec.name,
            num_logic_cores=spec.num_logic_cores,
            num_memory_cores=spec.num_memory_cores,
            logic=spec.logic,
            memory=spec.memory,
            complexity_target=float(target),
            seed=spec.seed,
        )
        soc = generate_soc(calibrated)
        for core in soc.logic_cores:
            assert (spec.logic.patterns[0] <= core.num_patterns
                    <= spec.logic.patterns[1])
            for length in core.scan_chain_lengths:
                assert (spec.logic.scan_lengths[0] <= length
                        <= spec.logic.scan_lengths[1])
