"""Property-based tests for the assignment layer."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.core_assign import core_assign
from repro.assign.exact import exact_assign
from repro.assign.lower_bounds import paw_lower_bound
from repro.schedule.lpt import graham_bound, lpt_schedule


@st.composite
def paw_instances(draw, max_cores=7, max_buses=3):
    """A random P_AW instance with width-consistent times.

    Times on wider buses are never larger than on narrower buses —
    the structure real instances always have (TimeTable monotonicity).
    """
    num_cores = draw(st.integers(min_value=1, max_value=max_cores))
    num_buses = draw(st.integers(min_value=1, max_value=max_buses))
    widths = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=32),
                min_size=num_buses, max_size=num_buses, unique=True,
            )
        ),
        reverse=True,
    )
    times = []
    for _ in range(num_cores):
        base = draw(st.integers(min_value=1, max_value=80))
        # Non-decreasing as width decreases.
        increments = draw(
            st.lists(
                st.integers(min_value=0, max_value=40),
                min_size=num_buses - 1, max_size=num_buses - 1,
            )
        )
        row = [base]
        for inc in increments:
            row.append(row[-1] + inc)
        times.append(row)
    return times, widths


def brute_force(times, num_buses):
    best = float("inf")
    for assign in product(range(num_buses), repeat=len(times)):
        loads = [0] * num_buses
        for core, bus in enumerate(assign):
            loads[bus] += times[core][bus]
        best = min(best, max(loads))
    return best


class TestCoreAssignProperties:
    @settings(max_examples=80, deadline=None)
    @given(instance=paw_instances())
    def test_heuristic_returns_consistent_result(self, instance):
        times, widths = instance
        outcome = core_assign(times, widths)
        assert outcome.completed
        result = outcome.result
        loads = [0] * len(widths)
        for core, bus in enumerate(result.assignment):
            loads[bus] += times[core][bus]
        assert tuple(loads) == result.bus_times
        assert outcome.testing_time == max(loads)

    @settings(max_examples=60, deadline=None)
    @given(instance=paw_instances(max_cores=6, max_buses=2))
    def test_heuristic_never_beats_optimum(self, instance):
        times, widths = instance
        outcome = core_assign(times, widths)
        assert outcome.testing_time >= brute_force(times, len(widths))

    @settings(max_examples=60, deadline=None)
    @given(instance=paw_instances())
    def test_abort_consistent_with_completion(self, instance):
        times, widths = instance
        full = core_assign(times, widths)
        # With the completed value as incumbent, the rerun must abort
        # (>= semantics) and echo it back.
        rerun = core_assign(times, widths, best_known=full.testing_time)
        assert not rerun.completed
        assert rerun.testing_time == full.testing_time
        # With a looser incumbent it completes with the same answer.
        loose = core_assign(times, widths,
                            best_known=full.testing_time + 1)
        assert loose.completed
        assert loose.testing_time == full.testing_time


class TestExactProperties:
    @settings(max_examples=40, deadline=None)
    @given(instance=paw_instances(max_cores=6, max_buses=2))
    def test_exact_matches_brute_force(self, instance):
        times, widths = instance
        exact = exact_assign(times, widths)
        assert exact.optimal
        assert exact.result.testing_time == brute_force(times, len(widths))

    @settings(max_examples=60, deadline=None)
    @given(instance=paw_instances())
    def test_exact_within_heuristic_and_above_bound(self, instance):
        times, widths = instance
        heuristic = core_assign(times, widths)
        exact = exact_assign(times, widths)
        assert exact.result.testing_time <= heuristic.testing_time
        assert exact.result.testing_time >= paw_lower_bound(times)


class TestLptProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        durations=st.lists(st.integers(min_value=0, max_value=50),
                           min_size=1, max_size=8),
        machines=st.integers(min_value=1, max_value=3),
    )
    def test_lpt_within_graham_bound(self, durations, machines):
        result = lpt_schedule(durations, machines)
        optimal = min(
            max(
                sum(d for d, m in zip(durations, assign) if m == machine)
                for machine in range(machines)
            )
            for assign in product(range(machines), repeat=len(durations))
        )
        assert result.makespan <= graham_bound(machines) * optimal + 1e-9
