"""Property-based end-to-end invariants on random SOCs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.certificates import certify
from repro.analysis.utilization import analyze_utilization
from repro.optimize.co_optimize import co_optimize
from repro.schedule.power import (
    PowerProfile,
    schedule_with_power,
    verify_power_feasible,
)
from repro.soc.generator import random_soc
from repro.wrapper.pareto import build_time_tables

soc_params = st.tuples(
    st.integers(min_value=1, max_value=6),    # cores
    st.integers(min_value=0, max_value=9999), # seed
    st.integers(min_value=2, max_value=10),   # width
)


def _build(params):
    num_cores, seed, width = params
    soc = random_soc(
        f"prop{seed}", num_cores=num_cores, seed=seed,
        max_patterns=120, max_ios=40, max_chains=4, max_chain_length=24,
    )
    return soc, width


class TestCoOptimizeInvariants:
    @settings(max_examples=25, deadline=None)
    @given(params=soc_params)
    def test_result_well_formed(self, params):
        soc, width = _build(params)
        result = co_optimize(soc, width, num_tams=range(1, 4))
        assert sum(result.partition) == width
        assert all(w >= 1 for w in result.partition)
        assert len(result.final.assignment) == len(soc)
        assert result.testing_time <= result.search.testing_time

    @settings(max_examples=20, deadline=None)
    @given(params=soc_params)
    def test_certificate_and_utilization_coherent(self, params):
        soc, width = _build(params)
        result = co_optimize(soc, width, num_tams=range(1, 4))
        tables = build_time_tables(soc, width)
        certificate = certify(soc, result.final, tables)
        assert certificate.gap >= 0.0
        utilization = analyze_utilization(soc, result.final, tables)
        assert 0.0 < utilization.utilization <= 1.0
        assert utilization.idle_wire_cycles >= 0

    @settings(max_examples=15, deadline=None)
    @given(params=soc_params)
    def test_per_b_polish_never_worse(self, params):
        soc, width = _build(params)
        base = co_optimize(soc, width, num_tams=range(1, 4))
        per_b = co_optimize(soc, width, num_tams=range(1, 4),
                            polish_per_tam_count=True)
        assert per_b.testing_time <= base.testing_time


class TestPowerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        params=soc_params,
        budget_scale=st.integers(min_value=1, max_value=4),
    )
    def test_power_schedule_always_feasible(self, params, budget_scale):
        soc, width = _build(params)
        result = co_optimize(soc, width, num_tams=range(1, 3))
        tables = build_time_tables(soc, width)
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in soc
        ]
        powers = tuple(1 + c.total_scan_cells // 10 for c in soc)
        budget = max(powers) * budget_scale
        profile = PowerProfile(powers, power_budget=budget)
        scheduled = schedule_with_power(
            result.final, times, [c.name for c in soc], profile
        )
        assert verify_power_feasible(scheduled, profile)
        assert scheduled.makespan >= result.testing_time
        serial = sum(
            times[core][bus]
            for core, bus in enumerate(result.final.assignment)
        )
        assert scheduled.makespan <= serial
