"""Unit tests for TamArchitecture."""

import pytest

from repro.exceptions import ValidationError
from repro.tam.bus import TamArchitecture


def test_basic():
    arch = TamArchitecture((8, 16, 8))
    assert arch.num_tams == 3
    assert arch.total_width == 32


def test_iteration_and_indexing():
    arch = TamArchitecture((4, 2))
    assert list(arch) == [4, 2]
    assert arch[1] == 2
    assert len(arch) == 2


def test_empty_rejected():
    with pytest.raises(ValidationError):
        TamArchitecture(())


def test_zero_width_rejected():
    with pytest.raises(ValidationError):
        TamArchitecture((4, 0))


def test_canonical_sorts():
    assert TamArchitecture((5, 3, 8)).canonical() == TamArchitecture((3, 5, 8))


def test_canonical_equivalence():
    assert (TamArchitecture((8, 16)).canonical()
            == TamArchitecture((16, 8)).canonical())


def test_notation():
    assert TamArchitecture((5, 3, 8)).notation() == "5+3+8"


def test_widths_normalized_to_tuple():
    arch = TamArchitecture([1, 2])
    assert isinstance(arch.widths, tuple)
