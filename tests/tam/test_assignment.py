"""Unit tests for AssignmentResult / evaluate_assignment."""

import pytest

from repro.exceptions import ValidationError
from repro.tam.assignment import AssignmentResult, evaluate_assignment

TIMES = [
    [10, 20],
    [30, 15],
    [5, 50],
]


class TestEvaluateAssignment:
    def test_bus_times(self):
        result = evaluate_assignment(TIMES, [8, 4], [0, 1, 0])
        assert result.bus_times == (15, 15)
        assert result.testing_time == 15

    def test_all_on_one_bus(self):
        result = evaluate_assignment(TIMES, [8, 4], [0, 0, 0])
        assert result.bus_times == (45, 0)
        assert result.testing_time == 45

    def test_out_of_range_bus(self):
        with pytest.raises(ValidationError):
            evaluate_assignment(TIMES, [8, 4], [0, 2, 0])

    def test_wrong_length(self):
        with pytest.raises(ValidationError):
            evaluate_assignment(TIMES, [8, 4], [0, 1])

    def test_optimal_flag_passthrough(self):
        result = evaluate_assignment(TIMES, [8, 4], [0, 1, 0], optimal=True)
        assert result.optimal


class TestAssignmentResult:
    def _result(self):
        return evaluate_assignment(TIMES, [8, 4], [1, 0, 1])

    def test_vector_notation_one_based(self):
        assert self._result().vector_notation() == "(2,1,2)"

    def test_cores_on_bus(self):
        result = self._result()
        assert result.cores_on_bus(0) == (1,)
        assert result.cores_on_bus(1) == (0, 2)

    def test_architecture(self):
        assert self._result().architecture.notation() == "8+4"

    def test_num_tams(self):
        assert self._result().num_tams == 2

    def test_inconsistent_testing_time_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentResult(
                widths=(8, 4),
                assignment=(0, 1, 0),
                bus_times=(15, 15),
                testing_time=99,
            )

    def test_inconsistent_bus_count_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentResult(
                widths=(8, 4),
                assignment=(0,),
                bus_times=(15,),
                testing_time=15,
            )

    def test_assignment_bus_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentResult(
                widths=(8,),
                assignment=(1,),
                bus_times=(10,),
                testing_time=10,
            )
