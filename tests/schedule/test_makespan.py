"""Unit tests for makespan lower bounds."""

import pytest

from repro.exceptions import ConfigurationError
from repro.schedule.makespan import (
    identical_lower_bound,
    saturation_lower_bound,
    unrelated_lower_bound,
)


class TestIdentical:
    def test_area_bound_dominates(self):
        assert identical_lower_bound([3, 3, 3, 3], 2) == 6

    def test_longest_job_dominates(self):
        assert identical_lower_bound([10, 1, 1], 3) == 10

    def test_empty(self):
        assert identical_lower_bound([], 2) == 0

    def test_invalid_machines(self):
        with pytest.raises(ConfigurationError):
            identical_lower_bound([1], 0)


class TestUnrelated:
    def test_uses_per_job_minima(self):
        times = [[10, 2], [10, 2], [10, 2], [10, 2]]
        # all jobs prefer machine 1 at cost 2: area = ceil(8/2) = 4
        assert unrelated_lower_bound(times) == 4

    def test_big_job_dominates(self):
        times = [[100, 120], [1, 2]]
        assert unrelated_lower_bound(times) == 100

    def test_empty(self):
        assert unrelated_lower_bound([]) == 0

    def test_bound_never_exceeds_any_assignment(self):
        from itertools import product
        times = [[7, 9], [4, 3], [6, 2], [5, 5]]
        bound = unrelated_lower_bound(times)
        for assign in product(range(2), repeat=4):
            loads = [0, 0]
            for job, machine in enumerate(assign):
                loads[machine] += times[job][machine]
            assert bound <= max(loads)


class TestSaturation:
    def test_value(self):
        times = [[10, 8], [3, 30]]
        assert saturation_lower_bound(times) == 8

    def test_empty(self):
        assert saturation_lower_bound([]) == 0
