"""Unit tests for test-session timelines."""

import pytest

from repro.exceptions import ValidationError
from repro.schedule.session import ScheduledTest, TestSchedule, build_schedule
from repro.tam.assignment import evaluate_assignment

TIMES = [
    [10, 20],
    [30, 15],
    [5, 50],
]
NAMES = ["a", "b", "c"]


def _result():
    return evaluate_assignment(TIMES, [8, 4], [0, 1, 0])


class TestBuildSchedule:
    def test_serial_per_bus(self):
        schedule = build_schedule(_result(), TIMES, NAMES)
        bus0 = schedule.bus_sessions(0)
        assert [s.core_name for s in bus0] == ["a", "c"]
        assert bus0[0].start == 0 and bus0[0].end == 10
        assert bus0[1].start == 10 and bus0[1].end == 15

    def test_makespan_matches_assignment(self):
        schedule = build_schedule(_result(), TIMES, NAMES)
        assert schedule.makespan == 15

    def test_names_length_checked(self):
        with pytest.raises(ValidationError):
            build_schedule(_result(), TIMES, ["a", "b"])

    def test_idle_time(self):
        schedule = build_schedule(_result(), TIMES, NAMES)
        assert schedule.idle_time(0) == 0
        assert schedule.idle_time(1) == 0
        assert schedule.total_idle_time() == 0

    def test_idle_time_uneven(self):
        result = evaluate_assignment(TIMES, [8, 4], [0, 0, 0])
        schedule = build_schedule(result, TIMES, NAMES)
        assert schedule.idle_time(1) == schedule.makespan

    def test_gantt_renders(self):
        schedule = build_schedule(_result(), TIMES, NAMES)
        chart = schedule.gantt(width=40)
        assert "bus 1" in chart and "bus 2" in chart
        assert "makespan: 15" in chart


class TestValidation:
    def test_overlap_rejected(self):
        sessions = (
            ScheduledTest(0, "a", 0, 0, 10),
            ScheduledTest(1, "b", 0, 5, 12),
        )
        with pytest.raises(ValidationError, match="overlap"):
            TestSchedule(widths=(8,), sessions=sessions)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValidationError):
            TestSchedule(
                widths=(8,),
                sessions=(ScheduledTest(0, "a", 0, 5, 3),),
            )

    def test_bad_bus_rejected(self):
        with pytest.raises(ValidationError):
            TestSchedule(
                widths=(8,),
                sessions=(ScheduledTest(0, "a", 1, 0, 3),),
            )

    def test_empty_schedule(self):
        schedule = TestSchedule(widths=(4,), sessions=())
        assert schedule.makespan == 0
