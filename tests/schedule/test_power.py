"""Unit tests for power-constrained test scheduling."""

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.schedule.power import (
    PowerProfile,
    schedule_with_power,
    verify_power_feasible,
)
from repro.tam.assignment import evaluate_assignment

TIMES = [
    [10, 20],
    [30, 15],
    [5, 50],
    [8, 12],
]
NAMES = ["a", "b", "c", "d"]


def _result():
    # buses 8+4: cores a,c on bus 0; b,d on bus 1.
    return evaluate_assignment(TIMES, [8, 4], [0, 1, 0, 1])


class TestProfileValidation:
    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            PowerProfile((1, 1, 1, 1), power_budget=0)

    def test_negative_power(self):
        with pytest.raises(ConfigurationError):
            PowerProfile((1, -1, 1, 1), power_budget=5)

    def test_core_exceeding_budget(self):
        with pytest.raises(ConfigurationError, match="never run"):
            PowerProfile((1, 9, 1, 1), power_budget=5)


class TestScheduling:
    def test_loose_budget_matches_unconstrained(self):
        result = _result()
        profile = PowerProfile((1, 1, 1, 1), power_budget=100)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        assert scheduled.makespan == result.testing_time
        assert verify_power_feasible(scheduled, profile)

    def test_tight_budget_serializes(self):
        result = _result()
        # Each core needs 3 units; budget 3 forces full serialization.
        profile = PowerProfile((3, 3, 3, 3), power_budget=3)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        serial_total = sum(
            TIMES[core][bus]
            for core, bus in enumerate(result.assignment)
        )
        assert scheduled.makespan == serial_total
        assert scheduled.peak_power == 3
        assert verify_power_feasible(scheduled, profile)

    def test_intermediate_budget(self):
        result = _result()
        profile = PowerProfile((2, 2, 2, 2), power_budget=4)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        assert result.testing_time <= scheduled.makespan <= sum(
            TIMES[core][bus]
            for core, bus in enumerate(result.assignment)
        )
        assert scheduled.peak_power <= 4
        assert verify_power_feasible(scheduled, profile)

    def test_makespan_monotone_in_budget(self):
        result = _result()
        makespans = []
        for budget in (3, 4, 6, 100):
            profile = PowerProfile((3, 3, 3, 3), power_budget=budget)
            scheduled = schedule_with_power(result, TIMES, NAMES, profile)
            makespans.append(scheduled.makespan)
        assert all(a >= b for a, b in zip(makespans, makespans[1:]))

    def test_zero_power_cores_always_parallel(self):
        result = _result()
        profile = PowerProfile((0, 0, 0, 0), power_budget=1)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        assert scheduled.makespan == result.testing_time
        assert scheduled.peak_power == 0

    def test_every_core_scheduled_once(self):
        result = _result()
        profile = PowerProfile((2, 2, 2, 2), power_budget=4)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        names = sorted(s.core_name for s in scheduled.schedule.sessions)
        assert names == sorted(NAMES)

    def test_no_overlap_per_bus(self):
        # TestSchedule validates this on construction; reaching here
        # without ValidationError is the assertion.
        result = _result()
        profile = PowerProfile((2, 2, 2, 2), power_budget=2)
        scheduled = schedule_with_power(result, TIMES, NAMES, profile)
        assert scheduled.schedule.makespan > 0


class TestInputValidation:
    def test_times_size_mismatch(self):
        profile = PowerProfile((1, 1, 1, 1), power_budget=5)
        with pytest.raises(ValidationError):
            schedule_with_power(_result(), TIMES[:2], NAMES, profile)

    def test_profile_size_mismatch(self):
        profile = PowerProfile((1, 1), power_budget=5)
        with pytest.raises(ValidationError):
            schedule_with_power(_result(), TIMES, NAMES, profile)


class TestOnPipeline:
    def test_d695_with_synthetic_powers(self, d695):
        from repro.optimize.co_optimize import co_optimize
        from repro.wrapper.pareto import build_time_tables

        result = co_optimize(d695, 24, num_tams=range(1, 4))
        tables = build_time_tables(d695, 24)
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in d695
        ]
        # Power proportional to scan size (a common proxy).
        powers = tuple(
            1 + core.total_scan_cells // 200 for core in d695
        )
        budget = max(powers) + sum(powers) // 3
        profile = PowerProfile(powers, power_budget=budget)
        scheduled = schedule_with_power(
            result.final, times, [c.name for c in d695], profile
        )
        assert scheduled.makespan >= result.testing_time
        assert verify_power_feasible(scheduled, profile)
