"""Unit tests for LPT scheduling."""

import pytest

from repro.exceptions import ConfigurationError
from repro.schedule.lpt import graham_bound, lpt_schedule


class TestLpt:
    def test_classic_example(self):
        result = lpt_schedule([7, 5, 3, 2], 2)
        assert result.makespan == 9
        assert sorted(result.machine_loads) == [8, 9]

    def test_single_machine(self):
        result = lpt_schedule([3, 1, 4], 1)
        assert result.makespan == 8
        assert result.assignment == (0, 0, 0)

    def test_more_machines_than_jobs(self):
        result = lpt_schedule([5, 2], 4)
        assert result.makespan == 5
        assert sorted(result.machine_loads) == [0, 0, 2, 5]

    def test_empty_jobs(self):
        result = lpt_schedule([], 3)
        assert result.makespan == 0

    def test_loads_consistent_with_assignment(self):
        durations = [9, 4, 6, 2, 8, 5]
        result = lpt_schedule(durations, 3)
        loads = [0, 0, 0]
        for job, machine in enumerate(result.assignment):
            loads[machine] += durations[job]
        assert tuple(loads) == result.machine_loads
        assert result.makespan == max(loads)

    def test_invalid_machine_count(self):
        with pytest.raises(ConfigurationError):
            lpt_schedule([1], 0)

    def test_negative_duration(self):
        with pytest.raises(ConfigurationError):
            lpt_schedule([1, -1], 2)


class TestGrahamBound:
    def test_values(self):
        assert graham_bound(1) == pytest.approx(1.0)
        assert graham_bound(2) == pytest.approx(7 / 6)
        assert graham_bound(3) == pytest.approx(4 / 3 - 1 / 9)

    def test_monotone_in_machines(self):
        assert graham_bound(2) < graham_bound(4) < 4 / 3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            graham_bound(0)

    def test_lpt_within_bound_brute_force(self):
        # LPT on small instances never exceeds Graham's ratio.
        from itertools import product
        durations = [4, 3, 3, 2, 2]
        machines = 2
        optimal = min(
            max(
                sum(d for d, m in zip(durations, assign) if m == machine)
                for machine in range(machines)
            )
            for assign in product(range(machines), repeat=len(durations))
        )
        lpt = lpt_schedule(durations, machines).makespan
        assert lpt <= graham_bound(machines) * optimal + 1e-9
