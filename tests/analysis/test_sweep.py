"""Unit tests for design-space sweeps."""

import pytest

from repro.analysis.certificates import certify
from repro.analysis.sweep import evaluate_point, sweep_tam_counts, sweep_widths
from repro.analysis.utilization import analyze_utilization
from repro.exceptions import ConfigurationError
from repro.optimize.co_optimize import co_optimize
from repro.wrapper.pareto import build_time_tables


class TestSweepWidths:
    def test_points_cover_requested_widths(self, tiny_soc):
        points = sweep_widths(tiny_soc, widths=(4, 8), num_tams=2)
        assert [p.total_width for p in points] == [4, 8]

    def test_testing_time_non_increasing(self, tiny_soc):
        points = sweep_widths(tiny_soc, widths=(4, 8, 12),
                              num_tams=range(1, 4))
        times = [p.testing_time for p in points]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_points_carry_certificates(self, tiny_soc):
        for point in sweep_widths(tiny_soc, widths=(6,), num_tams=2):
            assert point.certificate.gap >= 0.0
            assert 0.0 < point.wire_efficiency <= 1.0

    def test_partition_sums_to_width(self, tiny_soc):
        for point in sweep_widths(tiny_soc, widths=(5, 9),
                                  num_tams=range(1, 3)):
            assert sum(point.partition) == point.total_width
            assert point.num_tams == len(point.partition)


class TestSweepTamCounts:
    def test_counts_covered(self, tiny_soc):
        points = sweep_tam_counts(tiny_soc, 8, tam_counts=(1, 2, 3))
        assert [p.num_tams for p in points] == [1, 2, 3]

    def test_oversized_counts_rejected(self, tiny_soc):
        # A count wider than the budget is a configuration error, not
        # a silently dropped point (matches the partition enumerator).
        with pytest.raises(ConfigurationError, match="cannot split"):
            sweep_tam_counts(tiny_soc, 2, tam_counts=(1, 2, 3, 4))

    def test_each_point_respects_count(self, tiny_soc):
        for point in sweep_tam_counts(tiny_soc, 8, tam_counts=(2,)):
            assert point.num_tams == 2


class TestTableReuse:
    """The sweep reuses the optimizer's tables — and loses nothing."""

    def test_annotations_identical_to_fresh_rebuild(self, tiny_soc):
        # The seed rebuilt tables for certificates/utilization; the
        # shared-table path must be byte-identical to that.
        point = evaluate_point(tiny_soc, 8, num_tams=2)
        result = co_optimize(tiny_soc, 8, num_tams=2)
        fresh = build_time_tables(tiny_soc, 8)
        rebuilt_certificate = certify(tiny_soc, result.final, fresh)
        rebuilt_utilization = analyze_utilization(
            tiny_soc, result.final, fresh
        )
        assert point.certificate == rebuilt_certificate
        assert repr(point.certificate) == repr(rebuilt_certificate)
        assert point.utilization == rebuilt_utilization
        assert repr(point.utilization) == repr(rebuilt_utilization)

    def test_evaluate_point_uses_optimizer_tables(
        self, tiny_soc, monkeypatch
    ):
        import repro.analysis.sweep as sweep_module

        seen = {}
        real_certify = sweep_module.certify

        def spying_certify(soc, result, tables=None):
            seen["tables"] = tables
            return real_certify(soc, result, tables)

        monkeypatch.setattr(sweep_module, "certify", spying_certify)
        shared = build_time_tables(tiny_soc, 8)
        evaluate_point(tiny_soc, 8, num_tams=2, tables=shared)
        assert seen["tables"] is shared


class TestParetoOnlySweep:
    """Adaptive width enumeration: sweep only Pareto breakpoints."""

    def test_swept_widths_are_the_breakpoint_union(self, tiny_soc):
        from repro.analysis.sweep import pareto_widths

        max_width = 10
        union = pareto_widths(tiny_soc, max_width)
        # Widths start at 2: a B=2 point needs a wire per bus.
        points = sweep_widths(
            tiny_soc, range(2, max_width + 1), num_tams=2,
            pareto_only=True,
        )
        expected = sorted(
            {w for w in union if 2 <= w <= max_width} | {max_width}
        )
        assert [p.total_width for p in points] == expected
        # On real cores the union is a strict subset of the dense grid.
        assert len(expected) < max_width - 1

    def test_results_match_dense_sweep_at_those_widths(self, tiny_soc):
        dense = {
            p.total_width: p
            for p in sweep_widths(tiny_soc, range(2, 11), num_tams=2)
        }
        adaptive = sweep_widths(
            tiny_soc, range(2, 11), num_tams=2, pareto_only=True,
        )
        for point in adaptive:
            assert point == dense[point.total_width]

    def test_top_budget_is_always_swept(self, tiny_soc):
        points = sweep_widths(
            tiny_soc, (4, 5, 6, 7), num_tams=2, pareto_only=True,
        )
        assert points[-1].total_width == 7

    def test_breakpoints_outside_the_range_are_skipped(self, tiny_soc):
        from repro.analysis.sweep import pareto_widths

        union = set(pareto_widths(tiny_soc, 9))
        points = sweep_widths(
            tiny_soc, (5, 6, 7, 8, 9), num_tams=2, pareto_only=True,
        )
        swept = {p.total_width for p in points}
        assert swept <= (union & set(range(5, 10))) | {9}

    def test_pareto_widths_match_table_breakpoints(self, tiny_soc):
        from repro.analysis.sweep import pareto_widths

        tables = build_time_tables(tiny_soc, 8)
        union = {
            w
            for table in tables.values()
            for w, _ in table.pareto_points()
        }
        assert pareto_widths(tiny_soc, 8, tables=tables) == sorted(union)

    def test_dense_and_adaptive_agree_with_pool_runner(self, tiny_soc):
        from repro.engine.batch import BatchRunner

        dense = {
            p.total_width: p
            for p in sweep_widths(tiny_soc, range(2, 9), num_tams=2)
        }
        runner = BatchRunner(max_workers=2)
        adaptive = sweep_widths(
            tiny_soc, range(2, 9), num_tams=2, runner=runner,
            pareto_only=True,
        )
        for point in adaptive:
            assert point == dense[point.total_width]
