"""Unit tests for design-space sweeps."""

from repro.analysis.sweep import sweep_tam_counts, sweep_widths


class TestSweepWidths:
    def test_points_cover_requested_widths(self, tiny_soc):
        points = sweep_widths(tiny_soc, widths=(4, 8), num_tams=2)
        assert [p.total_width for p in points] == [4, 8]

    def test_testing_time_non_increasing(self, tiny_soc):
        points = sweep_widths(tiny_soc, widths=(4, 8, 12),
                              num_tams=range(1, 4))
        times = [p.testing_time for p in points]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_points_carry_certificates(self, tiny_soc):
        for point in sweep_widths(tiny_soc, widths=(6,), num_tams=2):
            assert point.certificate.gap >= 0.0
            assert 0.0 < point.wire_efficiency <= 1.0

    def test_partition_sums_to_width(self, tiny_soc):
        for point in sweep_widths(tiny_soc, widths=(5, 9),
                                  num_tams=range(1, 3)):
            assert sum(point.partition) == point.total_width
            assert point.num_tams == len(point.partition)


class TestSweepTamCounts:
    def test_counts_covered(self, tiny_soc):
        points = sweep_tam_counts(tiny_soc, 8, tam_counts=(1, 2, 3))
        assert [p.num_tams for p in points] == [1, 2, 3]

    def test_oversized_counts_skipped(self, tiny_soc):
        points = sweep_tam_counts(tiny_soc, 2, tam_counts=(1, 2, 3, 4))
        assert [p.num_tams for p in points] == [1, 2]

    def test_each_point_respects_count(self, tiny_soc):
        for point in sweep_tam_counts(tiny_soc, 8, tam_counts=(2,)):
            assert point.num_tams == 2
