"""Unit tests for the lint engine: suppression, walking, reporting."""

import json

import pytest

from repro.analysis.lint import run_lint
from repro.analysis.lint.cli import main
from repro.analysis.lint.engine import (
    PARSE_ERROR_CODE,
    Violation,
    _parse_suppressions,
)
from repro.analysis.lint.report import render_json, render_text


def write(tree, relpath, text):
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestSuppressions:
    def test_single_code(self):
        table = _parse_suppressions(
            "x = 1  # repro: allow[RPR006] shared sentinel\n"
        )
        assert table == {1: {"RPR006"}}

    def test_multiple_codes_one_comment(self):
        table = _parse_suppressions(
            "x = 1  # repro: allow[RPR001, RPR005]\n"
        )
        assert table == {1: {"RPR001", "RPR005"}}

    def test_marker_inside_string_is_not_a_suppression(self):
        table = _parse_suppressions(
            's = "# repro: allow[RPR006]"\n'
        )
        assert table == {}

    def test_codes_track_their_line(self):
        text = "a = 1\nb = 2  # repro: allow[RPR007]\n"
        assert _parse_suppressions(text) == {2: {"RPR007"}}


class TestRunLint:
    def test_clean_file_reports_ok(self, tmp_path):
        write(tmp_path, "src/clean.py", "def f(x: int) -> int:\n    return x\n")
        report = run_lint(root=tmp_path, select={"RPR006", "RPR007"})
        assert report.ok
        assert report.files_checked == 1

    def test_violation_found_and_sorted(self, tmp_path):
        write(
            tmp_path, "src/bad.py",
            "def g(x={}):\n    return x\n\n\ndef f(x=[]):\n    return x\n",
        )
        report = run_lint(root=tmp_path, select={"RPR006"})
        assert [v.line for v in report.violations] == [1, 5]
        assert all(v.rule == "RPR006" for v in report.violations)

    def test_suppressed_violation_is_dropped(self, tmp_path):
        write(
            tmp_path, "src/ok.py",
            "def f(x=[]):  # repro: allow[RPR006] read-only sentinel\n"
            "    return x\n",
        )
        report = run_lint(root=tmp_path, select={"RPR006"})
        assert report.ok

    def test_wrong_code_does_not_suppress(self, tmp_path):
        write(
            tmp_path, "src/bad.py",
            "def f(x=[]):  # repro: allow[RPR007]\n    return x\n",
        )
        report = run_lint(root=tmp_path, select={"RPR006"})
        assert len(report.violations) == 1

    def test_syntax_error_becomes_parse_error_violation(self, tmp_path):
        write(tmp_path, "src/broken.py", "def f(:\n")
        report = run_lint(root=tmp_path, select={"RPR006"})
        assert [v.rule for v in report.violations] == [PARSE_ERROR_CODE]

    def test_unknown_select_raises(self, tmp_path):
        write(tmp_path, "src/clean.py", "x = 1\n")
        with pytest.raises(ValueError, match="RPR999"):
            run_lint(root=tmp_path, select={"RPR999"})

    def test_explicit_paths_override_default(self, tmp_path):
        write(tmp_path, "src/bad.py", "def f(x=[]):\n    return x\n")
        other = write(tmp_path, "elsewhere.py", "x = 1\n")
        report = run_lint(
            paths=[other], root=tmp_path, select={"RPR006"}
        )
        assert report.ok
        assert report.files_checked == 1


class TestReporters:
    def _report(self, tmp_path):
        write(tmp_path, "src/bad.py", "def f(x=[]):\n    return x\n")
        return run_lint(root=tmp_path, select={"RPR006"})

    def test_text_has_location_and_summary(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "src/bad.py:1:" in text
        assert "RPR006" in text
        assert "FAILED" in text

    def test_text_ok_summary(self, tmp_path):
        write(tmp_path, "src/clean.py", "x = 1\n")
        report = run_lint(root=tmp_path, select={"RPR006"})
        assert "ok:" in render_text(report)

    def test_json_round_trips(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["kind"] == "lint"
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "RPR006"

    def test_violation_render(self):
        violation = Violation("RPR001", "a.py", 3, 7, "boom")
        assert violation.render() == "a.py:3:7: RPR001 boom"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "src/clean.py", "x = 1\n")
        assert main(["--root", str(tmp_path), "--select", "RPR006"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        write(tmp_path, "src/bad.py", "def f(x=[]):\n    return x\n")
        assert main(["--root", str(tmp_path), "--select", "RPR006"]) == 1
        assert "RPR006" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write(tmp_path, "src/clean.py", "x = 1\n")
        assert main(["--root", str(tmp_path), "--select", "RPR999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR004", "RPR007"):
            assert code in out

    def test_json_format(self, tmp_path, capsys):
        write(tmp_path, "src/clean.py", "x = 1\n")
        assert main([
            "--root", str(tmp_path), "--select", "RPR006",
            "--format", "json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
