"""Unit tests for optimality certificates."""

import pytest

from repro.analysis.certificates import (
    Certificate,
    certify,
    global_lower_bound,
)
from repro.exceptions import ValidationError
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.wrapper.pareto import build_time_tables


class TestCertificate:
    def test_gap_zero_when_tight(self):
        certificate = Certificate(100, 100, 90)
        assert certificate.gap == 0.0
        assert certificate.is_provably_optimal

    def test_gap_positive(self):
        certificate = Certificate(110, 100, 90)
        assert certificate.gap == pytest.approx(0.10)
        assert not certificate.is_provably_optimal

    def test_bound_takes_tighter(self):
        assert Certificate(110, 100, 105).bound == 105

    def test_zero_bound_rejected(self):
        with pytest.raises(ValidationError):
            _ = Certificate(10, 0, 0).gap

    def test_describe(self):
        text = Certificate(110, 100, 90).describe()
        assert "gap" in text and "110" in text


class TestGlobalBound:
    def test_bound_below_any_achievable_time(self, tiny_soc):
        tables = build_time_tables(tiny_soc, 8)
        bound = global_lower_bound(tiny_soc, tables, 8)
        exhaustive = exhaustive_optimize(tiny_soc, 8,
                                         num_tams=range(1, 4))
        assert bound <= exhaustive.testing_time

    def test_bound_bottleneck_component(self, tiny_soc):
        tables = build_time_tables(tiny_soc, 8)
        bound = global_lower_bound(tiny_soc, tables, 8)
        bottleneck = max(tables[c.name].time(8) for c in tiny_soc)
        assert bound >= bottleneck

    def test_bound_grows_as_width_shrinks(self, tiny_soc):
        tables = build_time_tables(tiny_soc, 16)
        assert (global_lower_bound(tiny_soc, tables, 4)
                >= global_lower_bound(tiny_soc, tables, 16))


class TestCertify:
    def test_certified_result_above_bounds(self, tiny_soc):
        result = co_optimize(tiny_soc, 8, num_tams=range(1, 4))
        tables = build_time_tables(tiny_soc, 8)
        certificate = certify(tiny_soc, result.final, tables)
        assert certificate.testing_time == result.testing_time
        assert certificate.gap >= 0.0

    def test_d695_gap_reasonable(self, d695):
        # The method is near-optimal; the *bound* is the looser side,
        # so just check the certificate is coherent and not absurd.
        result = co_optimize(d695, 24, num_tams=range(1, 4))
        tables = build_time_tables(d695, 24)
        certificate = certify(d695, result.final, tables)
        assert 0.0 <= certificate.gap < 1.0

    def test_p31108_saturated_is_certified_optimal(self, p31108):
        # Past saturation the bottleneck bound is tight: gap == 0.
        result = co_optimize(p31108, 64, num_tams=range(1, 7))
        tables = build_time_tables(p31108, 64)
        certificate = certify(p31108, result.final, tables)
        assert certificate.gap < 0.15
