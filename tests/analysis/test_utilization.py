"""Unit tests for wire-cycle utilization accounting."""

import pytest

from repro.analysis.utilization import analyze_utilization
from repro.exceptions import ValidationError
from repro.optimize.co_optimize import co_optimize
from repro.tam.assignment import evaluate_assignment
from repro.wrapper.pareto import build_time_tables


@pytest.fixture
def analyzed(tiny_soc):
    result = co_optimize(tiny_soc, 8, num_tams=2)
    tables = build_time_tables(tiny_soc, 8)
    return analyze_utilization(tiny_soc, result.final, tables), result


class TestAccounting:
    def test_totals_consistent(self, analyzed):
        utilization, result = analyzed
        assert utilization.total_wire_cycles == (
            sum(result.partition) * result.testing_time
        )
        assert (
            utilization.useful_wire_cycles
            + utilization.idle_wire_cycles
            == utilization.total_wire_cycles
        )

    def test_utilization_in_unit_interval(self, analyzed):
        utilization, _ = analyzed
        assert 0.0 < utilization.utilization <= 1.0

    def test_bus_busy_cycles_bounded_by_makespan(self, analyzed):
        utilization, _ = analyzed
        for bus in utilization.buses:
            assert 0 <= bus.busy_cycles <= utilization.makespan
            assert bus.idle_cycles >= 0

    def test_core_idle_wires_non_negative(self, analyzed):
        utilization, _ = analyzed
        for bus in utilization.buses:
            for core in bus.cores:
                assert 0 <= core.used_width <= core.bus_width
                assert core.idle_wires == core.bus_width - core.used_width

    def test_every_core_appears_once(self, analyzed, tiny_soc):
        utilization, _ = analyzed
        names = [
            core.core_name
            for bus in utilization.buses
            for core in bus.cores
        ]
        assert sorted(names) == sorted(c.name for c in tiny_soc)

    def test_describe_mentions_buses(self, analyzed):
        utilization, _ = analyzed
        text = utilization.describe()
        assert "bus 1" in text and "utilization" in text


class TestWidthMatchingEffect:
    def test_multiple_tams_do_not_raise_idle_waste(self, d695):
        """The paper's argument: width matching reduces idle wires."""
        tables = build_time_tables(d695, 32)
        single = co_optimize(d695, 32, num_tams=1)
        multi = co_optimize(d695, 32, num_tams=range(1, 6))
        u_single = analyze_utilization(d695, single.final, tables)
        u_multi = analyze_utilization(d695, multi.final, tables)
        # The multi-TAM design must spend its wire-cycles at least as
        # efficiently (it was chosen for lower makespan at equal W).
        assert u_multi.makespan <= u_single.makespan

    def test_mismatched_assignment_wastes_more(self, tiny_soc):
        tables = build_time_tables(tiny_soc, 8)
        times = [
            [tables[c.name].time(w) for w in (4, 4)]
            for c in tiny_soc
        ]
        balanced = evaluate_assignment(times, (4, 4), [0, 1, 0])
        lopsided = evaluate_assignment(times, (4, 4), [0, 0, 0])
        u_bal = analyze_utilization(tiny_soc, balanced, tables)
        u_lop = analyze_utilization(tiny_soc, lopsided, tables)
        assert u_lop.utilization <= u_bal.utilization


class TestValidation:
    def test_assignment_size_mismatch(self, tiny_soc, d695):
        result = co_optimize(d695, 8, num_tams=2)
        tables = build_time_tables(tiny_soc, 8)
        with pytest.raises(ValidationError):
            analyze_utilization(tiny_soc, result.final, tables)
