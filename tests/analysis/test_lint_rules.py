"""Each project rule fires on a seeded violation and stays silent on
the idiomatic equivalent the codebase actually uses."""

from repro.analysis.lint import run_lint


def lint_file(tmp_path, relpath, text, rule):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return run_lint(
        paths=[path], root=tmp_path, select={rule}
    ).violations


HOT = "src/repro/partition/evaluate.py"


class TestDeterminismRule:
    def test_wall_clock_call_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "import time\n\n\ndef f():\n    return time.time()\n",
            "RPR001",
        )
        assert len(found) == 1
        assert "time.time()" in found[0].message

    def test_monotonic_clock_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, HOT,
            "import time\n\n\ndef f():\n    return time.monotonic()\n",
            "RPR001",
        )

    def test_aliased_time_module_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "import time as _time\n\n\ndef f():\n"
            "    return _time.time()\n",
            "RPR001",
        )
        assert len(found) == 1

    def test_unseeded_random_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "import random\n\n\ndef f():\n    return random.random()\n",
            "RPR001",
        )
        assert len(found) == 1

    def test_seeded_random_instance_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, HOT,
            "import random\n\n\ndef f(seed):\n"
            "    return random.Random(seed)\n",
            "RPR001",
        )

    def test_from_random_import_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "from random import shuffle\n", "RPR001",
        )
        assert len(found) == 1

    def test_set_iteration_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "def f(xs):\n    for x in set(xs):\n        print(x)\n",
            "RPR001",
        )
        assert len(found) == 1
        assert "sorted" in found[0].message

    def test_sorted_set_iteration_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, HOT,
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n        print(x)\n",
            "RPR001",
        )

    def test_sum_over_set_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, HOT,
            "def f(xs):\n    return sum({x * 0.5 for x in xs})\n",
            "RPR001",
        )
        assert len(found) == 1

    def test_obs_span_instrumentation_allowed(self, tmp_path):
        # The telemetry spine's no-op fast path is deliberately
        # legal in hot modules: spans use monotonic clocks only and
        # never feed a scored value.
        assert not lint_file(
            tmp_path, HOT,
            "from repro.obs import span\n\n\n"
            "def f(xs):\n"
            "    with span('sweep_count', n=len(xs)) as live:\n"
            "        live.annotate(completed=len(xs))\n"
            "    return sorted(xs)\n",
            "RPR001",
        )

    def test_obs_counters_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, HOT,
            "from repro.obs import REGISTRY\n\n\n"
            "def f(xs):\n"
            "    REGISTRY.counter('sweep.points').inc()\n"
            "    return xs\n",
            "RPR001",
        )

    def test_wall_clock_next_to_obs_still_flagged(self, tmp_path):
        # Instrumentation does not grandfather the module: banned
        # calls beside a span are still violations.
        found = lint_file(
            tmp_path, HOT,
            "import time\n\nfrom repro.obs import span\n\n\n"
            "def f():\n"
            "    with span('x'):\n"
            "        return time.time()\n",
            "RPR001",
        )
        assert len(found) == 1

    def test_cold_paths_not_patrolled(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/repro/report/tables.py",
            "import time\n\n\ndef f():\n    return time.time()\n",
            "RPR001",
        )

    def test_assign_package_is_hot(self, tmp_path):
        found = lint_file(
            tmp_path, "src/repro/assign/greedy.py",
            "import time\n\n\ndef f():\n    return time.time()\n",
            "RPR001",
        )
        assert len(found) == 1


class TestShmLifecycleRule:
    def test_create_without_cleanup_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/leaky.py",
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n\ndef f(n):\n"
            "    return SharedMemory(create=True, size=n)\n",
            "RPR002",
        )
        assert len(found) == 1
        assert ".unlink()" in found[0].message

    def test_create_with_cleanup_path_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/tidy.py",
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n\ndef f(n):\n"
            "    segment = SharedMemory(create=True, size=n)\n"
            "    try:\n"
            "        return bytes(segment.buf)\n"
            "    finally:\n"
            "        segment.close()\n"
            "        segment.unlink()\n",
            "RPR002",
        )

    def test_attach_without_close_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/leaky.py",
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n\ndef f(name):\n"
            "    return SharedMemory(name=name)\n",
            "RPR002",
        )
        assert len(found) == 1
        assert ".close()" in found[0].message


class TestPicklabilityRule:
    def test_lambda_payload_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/jobs.py",
            "def f(pool, xs):\n"
            "    return pool.submit(lambda: xs)\n",
            "RPR003",
        )
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_def_payload_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/jobs.py",
            "def f(executor, xs):\n"
            "    def worker():\n"
            "        return xs\n"
            "    return executor.submit(worker)\n",
            "RPR003",
        )
        assert len(found) == 1
        assert "worker" in found[0].message

    def test_module_level_payload_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/jobs.py",
            "def worker(x):\n    return x\n\n\n"
            "def f(pool, xs):\n"
            "    return pool.submit(worker, xs)\n",
            "RPR003",
        )

    def test_non_pool_submit_ignored(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/server.py",
            "def f(exploration, job):\n"
            "    def decorate():\n"
            "        return job\n"
            "    return exploration.submit(decorate)\n",
            "RPR003",
        )

    def test_attribute_pool_receiver_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/jobs.py",
            "def f(self, xs):\n"
            "    return self._executor.submit(lambda: xs)\n",
            "RPR003",
        )
        assert len(found) == 1


WIRE = "src/repro/service/client.py"


class TestProtocolDisciplineRule:
    def test_raw_loads_in_wire_module_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, WIRE,
            "import json\n\n\ndef decode(line):\n"
            "    return json.loads(line)\n",
            "RPR005",
        )
        assert len(found) == 1
        assert "envelope" in found[0].message

    def test_loads_routed_through_envelope_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, WIRE,
            "import json\n\n"
            "from repro.api.envelopes import JobRequest\n\n\n"
            "def decode(line):\n"
            "    return JobRequest.from_dict(json.loads(line))\n",
            "RPR005",
        )

    def test_module_level_loads_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, WIRE,
            "import json\n\nDEFAULTS = json.loads('{}')\n",
            "RPR005",
        )
        assert len(found) == 1

    def test_store_module_exempt(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/repro/service/store.py",
            "import json\n\n\ndef load(path):\n"
            "    return json.loads(path.read_text())\n",
            "RPR005",
        )


class TestHygieneRules:
    def test_mutable_default_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/m.py",
            "def f(x=[], y={}, z=set()):\n    return x, y, z\n",
            "RPR006",
        )
        assert len(found) == 3

    def test_keyword_only_mutable_default_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/m.py",
            "def f(*, x=[]):\n    return x\n",
            "RPR006",
        )
        assert len(found) == 1

    def test_none_default_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/m.py",
            "def f(x=None, y=()):\n    return x, y\n",
            "RPR006",
        )

    def test_bare_except_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, "src/m.py",
            "try:\n    pass\nexcept:\n    pass\n",
            "RPR007",
        )
        assert len(found) == 1

    def test_typed_except_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/m.py",
            "try:\n    pass\nexcept OSError:\n    pass\n",
            "RPR007",
        )


SERVICE = "src/repro/service/client.py"


class TestBoundedBackoffRule:
    def test_literal_sleep_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, SERVICE,
            "import time\n\n\ndef f():\n    time.sleep(0.5)\n",
            "RPR008",
        )
        assert len(found) == 1
        assert "backoff_schedule" in found[0].message

    def test_literal_arithmetic_sleep_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, SERVICE,
            "from time import sleep\n\n\ndef f():\n"
            "    sleep(0.1 * 3)\n",
            "RPR008",
        )
        assert len(found) == 1

    def test_schedule_derived_sleep_allowed(self, tmp_path):
        assert not lint_file(
            tmp_path, SERVICE,
            "import time\n"
            "from repro.retry import backoff_schedule\n\n\n"
            "def f(attempt):\n"
            "    delays = backoff_schedule(3)\n"
            "    time.sleep(delays[attempt])\n",
            "RPR008",
        )

    def test_unbounded_retry_loop_flagged(self, tmp_path):
        found = lint_file(
            tmp_path, SERVICE,
            "def f(call):\n"
            "    while True:\n"
            "        try:\n"
            "            return call()\n"
            "        except OSError:\n"
            "            continue\n",
            "RPR008",
        )
        assert len(found) == 1
        assert "unbounded" in found[0].message

    def test_bounded_retry_loop_allowed(self, tmp_path):
        # The idiom the codebase uses: counted attempts, re-raise on
        # exhaustion.
        assert not lint_file(
            tmp_path, SERVICE,
            "def f(call, attempts):\n"
            "    failures = 0\n"
            "    while True:\n"
            "        try:\n"
            "            return call()\n"
            "        except OSError:\n"
            "            failures += 1\n"
            "            if failures > attempts:\n"
            "                raise\n"
            "            continue\n",
            "RPR008",
        )

    def test_rule_only_patrols_service_and_engine(self, tmp_path):
        assert not lint_file(
            tmp_path, "src/repro/report/render.py",
            "import time\n\n\ndef f():\n    time.sleep(1.0)\n",
            "RPR008",
        )
