"""The RPR004 golden spec-schema lock: drift detection + regeneration."""

import copy
import json

from repro.analysis.lint import (
    check_drift,
    current_schema,
    golden_path,
    load_golden,
    write_golden,
)
from repro.analysis.lint.schema_lock import SchemaLockRule, _versions_bumped


class TestCurrentSchema:
    def test_locks_all_four_classes(self):
        classes = current_schema()["classes"]
        assert sorted(classes) == [
            "GridSpec", "JobEvent", "JobRequest", "OptimizeSpec",
        ]

    def test_carries_every_version_constant(self):
        schema = current_schema()
        assert schema["spec_schema_version"] == 2
        assert schema["protocol_version"] == 3
        assert schema["supported_protocol_versions"] == [1, 2, 3]

    def test_json_round_trip_is_lossless(self):
        schema = current_schema()
        assert json.loads(json.dumps(schema)) == schema


class TestCheckDrift:
    def test_identical_records_are_clean(self):
        schema = current_schema()
        assert check_drift(schema, copy.deepcopy(schema)) == []

    def test_added_field_detected(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        live["classes"]["GridSpec"]["fields"]["rogue"] = "int"
        problems = check_drift(live, golden)
        assert any("GridSpec.rogue was added" in p for p in problems)

    def test_removed_field_detected(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        name = next(iter(live["classes"]["JobEvent"]["fields"]))
        del live["classes"]["JobEvent"]["fields"][name]
        problems = check_drift(live, golden)
        assert any(f"JobEvent.{name} was removed" in p for p in problems)

    def test_retyped_field_detected(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        name = next(iter(live["classes"]["OptimizeSpec"]["fields"]))
        live["classes"]["OptimizeSpec"]["fields"][name] = "complex"
        problems = check_drift(live, golden)
        assert any("changed type" in p for p in problems)

    def test_option_default_change_detected(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        key = next(iter(live["option_defaults"]))
        live["option_defaults"][key] = "changed"
        problems = check_drift(live, golden)
        assert any("option_defaults" in p for p in problems)

    def test_version_move_alone_is_still_drift(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        live["spec_schema_version"] = golden["spec_schema_version"] + 1
        assert check_drift(live, golden)
        assert _versions_bumped(live, golden)

    def test_field_change_without_bump_is_not_a_bump(self):
        golden = current_schema()
        live = copy.deepcopy(golden)
        live["classes"]["GridSpec"]["fields"]["rogue"] = "int"
        assert not _versions_bumped(live, golden)


class TestGoldenArtifact:
    def test_committed_golden_matches_live_schema(self):
        assert check_drift(current_schema(), load_golden()) == []

    def test_regeneration_is_a_no_op_on_clean_tree(self, tmp_path):
        regenerated = write_golden(tmp_path / "spec_schema.json")
        assert regenerated.read_text() == golden_path().read_text()

    def test_load_golden_from_explicit_path(self, tmp_path):
        path = write_golden(tmp_path / "golden.json")
        assert load_golden(path) == load_golden()


class TestSchemaLockRule:
    def rule(self):
        return SchemaLockRule()

    def test_clean_tree_yields_nothing(self, tmp_path):
        assert list(self.rule().check_project(tmp_path)) == []

    def test_missing_golden_reported(self, tmp_path, monkeypatch):
        from repro.analysis.lint import schema_lock

        monkeypatch.setattr(
            schema_lock, "golden_path",
            lambda: tmp_path / "absent.json",
        )
        found = list(self.rule().check_project(tmp_path))
        assert len(found) == 1
        assert "missing" in found[0].message

    def test_unbumped_field_change_is_hard_error(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis.lint import schema_lock

        stale = current_schema()
        del next(iter(stale["classes"].values()))["fields"][
            next(iter(next(iter(stale["classes"].values()))["fields"]))
        ]
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(stale))
        monkeypatch.setattr(schema_lock, "golden_path", lambda: path)
        found = list(self.rule().check_project(tmp_path))
        assert found
        assert all(
            "without a version bump" in v.message for v in found
        )

    def test_stale_after_bump_asks_for_regeneration(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis.lint import schema_lock

        stale = current_schema()
        stale["spec_schema_version"] = 0
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(stale))
        monkeypatch.setattr(schema_lock, "golden_path", lambda: path)
        found = list(self.rule().check_project(tmp_path))
        assert found
        assert all("regenerate" in v.message for v in found)

    def test_unreadable_golden_reported(self, tmp_path, monkeypatch):
        from repro.analysis.lint import schema_lock

        path = tmp_path / "golden.json"
        path.write_text("{not json")
        monkeypatch.setattr(schema_lock, "golden_path", lambda: path)
        found = list(self.rule().check_project(tmp_path))
        assert len(found) == 1
        assert "unreadable" in found[0].message
