"""The committed tree itself must lint clean — the PR gate, as a test."""

from pathlib import Path

from repro.analysis.lint import all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_source_lints_clean():
    report = run_lint(root=REPO_ROOT)
    assert report.ok, "\n" + "\n".join(
        violation.render() for violation in report.violations
    )
    assert report.files_checked > 50


def test_all_project_rules_participate():
    report = run_lint(root=REPO_ROOT)
    assert set(report.rules_run) == {
        rule.code for rule in all_rules()
    }
    assert {
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
    } <= set(report.rules_run)
