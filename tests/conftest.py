"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.soc.core import Core
from repro.soc.data import get_benchmark
from repro.soc.soc import Soc


@pytest.fixture(scope="session")
def d695() -> Soc:
    """The d695 academic benchmark SOC."""
    return get_benchmark("d695")


@pytest.fixture(scope="session")
def p21241() -> Soc:
    return get_benchmark("p21241")


@pytest.fixture(scope="session")
def p31108() -> Soc:
    return get_benchmark("p31108")


@pytest.fixture(scope="session")
def p93791() -> Soc:
    return get_benchmark("p93791")


@pytest.fixture
def scan_core() -> Core:
    """A small scan-testable core with uneven chain lengths."""
    return Core(
        name="scan_core",
        num_patterns=10,
        num_inputs=6,
        num_outputs=4,
        num_bidirs=2,
        scan_chain_lengths=(12, 8, 8, 4),
    )


@pytest.fixture
def memory_core() -> Core:
    """A non-scan (memory-style) core."""
    return Core(
        name="memory_core",
        num_patterns=500,
        num_inputs=20,
        num_outputs=16,
    )


@pytest.fixture
def combinational_core() -> Core:
    """A combinational core: terminals only, no state."""
    return Core(
        name="comb_core",
        num_patterns=25,
        num_inputs=40,
        num_outputs=30,
    )


@pytest.fixture
def tiny_soc(scan_core, memory_core, combinational_core) -> Soc:
    """Three heterogeneous cores — enough for pipeline tests."""
    return Soc(name="tiny", cores=(scan_core, memory_core,
                                   combinational_core))


@pytest.fixture
def fig2_times():
    """The Fig. 2 worked example: 5 cores x 3 TAMs (widths 32/16/8)."""
    return [
        [50, 100, 200],
        [75, 95, 200],
        [90, 100, 150],
        [60, 75, 80],
        [120, 120, 125],
    ]


@pytest.fixture
def fig2_widths():
    return [32, 16, 8]
