"""Unit tests for the exhaustive baseline."""

import pytest

from repro.exceptions import ConfigurationError
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.partition.count import count_partitions


class TestExhaustive:
    def test_basic(self, tiny_soc):
        result = exhaustive_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.complete
        assert result.partitions_evaluated == count_partitions(8, 2)
        assert result.partitions_total == count_partitions(8, 2)

    def test_multiple_tam_counts(self, tiny_soc):
        result = exhaustive_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4)
        )
        assert result.partitions_total == sum(
            count_partitions(8, b) for b in (1, 2, 3)
        )
        assert result.complete

    def test_exhaustive_at_least_as_good_as_heuristic(self, tiny_soc):
        exhaustive = exhaustive_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4)
        )
        heuristic = co_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4), polish=False
        )
        assert exhaustive.testing_time <= heuristic.search.testing_time

    def test_heuristic_with_polish_close_to_exhaustive(self, tiny_soc):
        # The paper's headline claim, at toy scale: within a few %.
        exhaustive = exhaustive_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4)
        )
        cooptimized = co_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4)
        )
        assert cooptimized.testing_time <= 1.25 * exhaustive.testing_time

    def test_deadline_checked_between_tam_counts(self, tiny_soc,
                                                 monkeypatch):
        # Expire the budget right after the first count's enumeration
        # finishes: the outer loop must stop before starting B=2
        # rather than letting the next count's sweep begin.
        import repro.optimize.exhaustive as module

        real = module._time.monotonic
        start = real()

        class Clock:
            calls = 0

            @staticmethod
            def monotonic():
                Clock.calls += 1
                # Calls 1-3: taking `start`, entering B=1, checking
                # before its only partition.  From call 4 on (the
                # outer check before B=2), the budget is over.
                if Clock.calls <= 3:
                    return start
                return start + 100.0

        monkeypatch.setattr(module, "_time", Clock)
        result = module.exhaustive_optimize(
            tiny_soc, total_width=6, num_tams=[1, 2],
            total_time_limit=50.0,
        )
        assert not result.complete
        # B=1 has a single partition; B=2 never started.
        assert result.partitions_evaluated == 1

    def test_zero_time_budget_raises(self, tiny_soc):
        # The deadline is checked before each partition, so a zero
        # budget evaluates nothing and the sweep cannot return a best.
        with pytest.raises(ConfigurationError, match="no partitions"):
            exhaustive_optimize(
                tiny_soc, total_width=12, num_tams=range(1, 5),
                total_time_limit=0.0,
            )

    def test_summary_mentions_status(self, tiny_soc):
        result = exhaustive_optimize(tiny_soc, total_width=8, num_tams=2)
        assert "complete" in result.summary()

    def test_invalid_width(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            exhaustive_optimize(tiny_soc, total_width=0, num_tams=1)

    def test_empty_tams(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            exhaustive_optimize(tiny_soc, total_width=8, num_tams=[])

    def test_all_exact_flag(self, tiny_soc):
        result = exhaustive_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.all_exact
        assert result.best.optimal
