"""Unit tests for result records and the delta formula."""

import pytest

from repro.optimize.result import percent_delta


class TestPercentDelta:
    def test_increase(self):
        assert percent_delta(110, 100) == pytest.approx(10.0)

    def test_decrease(self):
        assert percent_delta(90, 100) == pytest.approx(-10.0)

    def test_equal(self):
        assert percent_delta(100, 100) == 0.0

    def test_paper_example(self):
        # Table 2(b), W=24: new 34455 vs old 29501 -> +16.79%.
        assert percent_delta(34455, 29501) == pytest.approx(16.79, abs=0.01)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            percent_delta(10, 0)


class TestResultRecords:
    def test_co_optimization_result_fields(self, tiny_soc):
        from repro.optimize.co_optimize import co_optimize
        result = co_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.num_tams == len(result.partition)
        assert result.elapsed_seconds >= 0
        assert result.search.elapsed_seconds >= 0

    def test_exhaustive_result_fields(self, tiny_soc):
        from repro.optimize.exhaustive import exhaustive_optimize
        result = exhaustive_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.partition == result.best.widths
        assert result.testing_time == result.best.testing_time
