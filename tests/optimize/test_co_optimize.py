"""Unit tests for the two-step co-optimization pipeline."""

import pytest

from repro.exceptions import ConfigurationError
from repro.optimize.co_optimize import co_optimize


class TestPipeline:
    def test_basic(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=range(1, 4))
        assert result.soc_name == "tiny"
        assert sum(result.partition) == 8
        assert result.testing_time > 0

    def test_polish_never_hurts(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=range(1, 4))
        assert result.testing_time <= result.search.testing_time

    def test_polish_skippable(self, tiny_soc):
        result = co_optimize(
            tiny_soc, total_width=8, num_tams=range(1, 4), polish=False
        )
        assert result.final == result.search.best
        assert not result.final_optimal

    def test_polish_keeps_partition(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=range(1, 4))
        # The final step reoptimizes the assignment only.
        assert result.partition == result.search.best_partition

    def test_default_num_tams_caps_at_width(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=3)
        assert {s.num_tams for s in result.search.stats} == {1, 2, 3}

    def test_default_num_tams_caps_at_ten(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=12)
        assert max(s.num_tams for s in result.search.stats) == 10

    def test_single_tam_count(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.num_tams == 2

    def test_summary_format(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=2)
        text = result.summary()
        assert "tiny" in text and "W=8" in text and "T=" in text

    def test_invalid_width(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            co_optimize(tiny_soc, total_width=0)

    def test_result_exposes_tables(self, tiny_soc):
        result = co_optimize(tiny_soc, total_width=8, num_tams=2)
        assert set(result.tables) == {c.name for c in tiny_soc.cores}
        assert all(t.max_width >= 8 for t in result.tables.values())

    def test_accepts_prebuilt_tables(self, tiny_soc):
        from repro.wrapper.pareto import build_time_tables

        shared = build_time_tables(tiny_soc, 8)
        result = co_optimize(
            tiny_soc, total_width=8, num_tams=2, tables=shared
        )
        baseline = co_optimize(tiny_soc, total_width=8, num_tams=2)
        assert result.tables is shared
        assert result.final == baseline.final

    def test_undersized_tables_rejected(self, tiny_soc):
        from repro.wrapper.pareto import build_time_tables

        small = build_time_tables(tiny_soc, 4)
        with pytest.raises(ConfigurationError):
            co_optimize(tiny_soc, total_width=8, num_tams=2, tables=small)


class TestMonotonicity:
    def test_testing_time_non_increasing_in_width(self, tiny_soc):
        times = [
            co_optimize(tiny_soc, total_width=w, num_tams=range(1, 4))
            .testing_time
            for w in (4, 8, 12, 16)
        ]
        assert all(a >= b for a, b in zip(times, times[1:]))


class TestD695:
    """Sanity anchors on the real benchmark (fast widths only)."""

    def test_w16_regime(self, d695):
        result = co_optimize(d695, total_width=16, num_tams=range(1, 5))
        # The paper reports 42644-45055 cycles for W=16 depending on
        # B; our data reproduces the same regime.
        assert 35_000 < result.testing_time < 55_000

    def test_improves_with_width(self, d695):
        t16 = co_optimize(d695, 16, num_tams=range(1, 4)).testing_time
        t32 = co_optimize(d695, 32, num_tams=range(1, 4)).testing_time
        assert t32 < t16
        # Paper: roughly 2x improvement from W=16 to W=32.
        assert t32 < 0.7 * t16
