"""Unit tests for the exact branch-and-bound P_AW solver."""

from itertools import product

import pytest

from repro.assign.core_assign import core_assign
from repro.assign.exact import exact_assign
from repro.exceptions import ConfigurationError


def brute_force_makespan(times, num_buses):
    """Reference optimum by full enumeration (small instances only)."""
    best = float("inf")
    for assign in product(range(num_buses), repeat=len(times)):
        loads = [0] * num_buses
        for core, bus in enumerate(assign):
            loads[bus] += times[core][bus]
        best = min(best, max(loads))
    return best


class TestOptimality:
    def test_fig2_instance(self, fig2_times, fig2_widths):
        exact = exact_assign(fig2_times, fig2_widths)
        assert exact.optimal
        assert exact.result.testing_time == brute_force_makespan(
            fig2_times, 3
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_random(self, seed):
        import random
        rng = random.Random(seed)
        num_cores = rng.randint(3, 7)
        num_buses = rng.randint(2, 3)
        times = [
            [rng.randint(1, 60) for _ in range(num_buses)]
            for _ in range(num_cores)
        ]
        widths = sorted(
            rng.sample(range(1, 33), num_buses), reverse=True
        )
        exact = exact_assign(times, widths)
        assert exact.optimal
        assert exact.result.testing_time == brute_force_makespan(
            times, num_buses
        )

    def test_never_worse_than_heuristic(self, fig2_times, fig2_widths):
        heuristic = core_assign(fig2_times, fig2_widths)
        exact = exact_assign(fig2_times, fig2_widths)
        assert exact.result.testing_time <= heuristic.testing_time

    def test_result_flag_matches_optimal(self, fig2_times, fig2_widths):
        exact = exact_assign(fig2_times, fig2_widths)
        assert exact.result.optimal == exact.optimal

    def test_warm_start_accepted(self, fig2_times, fig2_widths):
        heuristic = core_assign(fig2_times, fig2_widths)
        exact = exact_assign(
            fig2_times, fig2_widths, incumbent=heuristic.result
        )
        assert exact.optimal
        assert exact.result.testing_time <= heuristic.testing_time


class TestSymmetryAndStructure:
    def test_identical_buses(self):
        times = [[7, 7], [5, 5], [4, 4], [4, 4]]
        exact = exact_assign(times, [8, 8])
        assert exact.optimal
        # Best split of {7,5,4,4}: {7,4} vs {5,4} -> makespan 11.
        assert exact.result.testing_time == 11

    def test_single_bus(self):
        times = [[3], [9], [5]]
        exact = exact_assign(times, [16])
        assert exact.result.testing_time == 17

    def test_one_core_per_bus_possible(self):
        times = [[10, 50], [50, 10]]
        exact = exact_assign(times, [16, 8])
        assert exact.result.testing_time == 10


class TestBudgets:
    def test_node_limit_degrades_gracefully(self, fig2_times, fig2_widths):
        exact = exact_assign(fig2_times, fig2_widths, node_limit=1)
        assert not exact.optimal
        # Still returns the heuristic-quality incumbent.
        heuristic = core_assign(fig2_times, fig2_widths)
        assert exact.result.testing_time <= heuristic.testing_time

    def test_nodes_counted(self, fig2_times, fig2_widths):
        exact = exact_assign(fig2_times, fig2_widths)
        assert exact.nodes_explored >= 1

    def test_invalid_budgets(self, fig2_times, fig2_widths):
        with pytest.raises(ConfigurationError):
            exact_assign(fig2_times, fig2_widths, node_limit=0)
        with pytest.raises(ConfigurationError):
            exact_assign(fig2_times, fig2_widths, time_limit=0)
