"""Unit tests for the Core_assign heuristic (Fig. 1)."""

import pytest

from repro.assign.core_assign import core_assign
from repro.exceptions import ConfigurationError, ValidationError


class TestFig2Example:
    """The paper's worked example must reproduce exactly."""

    def test_final_assignment(self, fig2_times, fig2_widths):
        outcome = core_assign(fig2_times, fig2_widths)
        assert outcome.completed
        # Figure 2(b): cores 1..5 -> TAMs 2, 3, 2, 1, 1.
        assert outcome.result.vector_notation() == "(2,3,2,1,1)"

    def test_bus_times(self, fig2_times, fig2_widths):
        outcome = core_assign(fig2_times, fig2_widths)
        # "The testing times on TAMs 1, 2, and 3 are 180, 200, and
        #  200 clock cycles, respectively."
        assert outcome.result.bus_times == (180, 200, 200)
        assert outcome.testing_time == 200

    def test_first_pick_is_core5_on_widest(self, fig2_times, fig2_widths):
        # Core 5 has the highest time on TAM 1 (widest, considered
        # first at all-zero loads); verify it did land on TAM 1.
        outcome = core_assign(fig2_times, fig2_widths)
        assert outcome.result.assignment[4] == 0


class TestEarlyAbort:
    def test_aborts_against_incumbent(self, fig2_times, fig2_widths):
        outcome = core_assign(fig2_times, fig2_widths, best_known=150)
        assert not outcome.completed
        assert outcome.testing_time == 150
        assert outcome.result is None

    def test_abort_at_equal_incumbent(self, fig2_times, fig2_widths):
        # Reaching tau exactly cannot improve it: abort (>= semantics).
        outcome = core_assign(fig2_times, fig2_widths, best_known=200)
        assert not outcome.completed

    def test_completes_under_loose_incumbent(self, fig2_times, fig2_widths):
        outcome = core_assign(fig2_times, fig2_widths, best_known=201)
        assert outcome.completed
        assert outcome.testing_time == 200

    def test_none_never_aborts(self, fig2_times, fig2_widths):
        outcome = core_assign(fig2_times, fig2_widths, best_known=None)
        assert outcome.completed


class TestMechanics:
    def test_single_bus(self):
        outcome = core_assign([[5], [7]], [8])
        assert outcome.testing_time == 12
        assert outcome.result.assignment == (0, 0)

    def test_single_core(self):
        outcome = core_assign([[9, 4]], [16, 8])
        # min-load tie at 0: widest bus first; core lands there.
        assert outcome.result.assignment == (0,)
        assert outcome.testing_time == 9

    def test_equal_width_buses(self):
        outcome = core_assign(
            [[6, 6], [5, 5], [4, 4]], [8, 8]
        )
        assert outcome.completed
        assert outcome.testing_time == 9  # LPT: 6+4 / 5 -> max 10? no: 6|5, then 4 joins 5 -> 9

    def test_tie_break_uses_narrower_bus(self):
        # Two cores tie on the chosen bus; the one that is slower on
        # the narrower bus must be placed first (= paper's rule).
        times = [
            [10, 100],   # core 0: terrible on narrow bus
            [10, 20],    # core 1: fine on narrow bus
        ]
        outcome = core_assign(times, [16, 8])
        # First pick: bus 0 (widest, load 0). Both cores cost 10 ->
        # tie; core 0 is slower on the 8-bit bus, so core 0 goes to
        # bus 0 and core 1 to bus 1.
        assert outcome.result.assignment == (0, 1)

    def test_all_cores_assigned_exactly_once(self):
        times = [[3, 4, 9], [8, 2, 7], [5, 5, 5], [9, 1, 2]]
        outcome = core_assign(times, [32, 16, 8])
        assert len(outcome.result.assignment) == 4

    def test_makespan_definition(self):
        times = [[3, 4], [8, 2], [5, 5]]
        outcome = core_assign(times, [16, 8])
        result = outcome.result
        loads = [0, 0]
        for core, bus in enumerate(result.assignment):
            loads[bus] += times[core][bus]
        assert outcome.testing_time == max(loads)


class TestValidation:
    def test_no_cores(self):
        with pytest.raises(ConfigurationError):
            core_assign([], [8])

    def test_no_buses(self):
        with pytest.raises(ConfigurationError):
            core_assign([[1]], [])

    def test_zero_width(self):
        with pytest.raises(ConfigurationError):
            core_assign([[1, 2]], [8, 0])

    def test_ragged_times(self):
        with pytest.raises(ValidationError):
            core_assign([[1, 2], [3]], [8, 4])

    def test_negative_time(self):
        with pytest.raises(ValidationError):
            core_assign([[1, -2]], [8, 4])
