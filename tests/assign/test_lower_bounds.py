"""Unit tests for P_AW lower bounds."""

from itertools import product

from repro.assign.lower_bounds import (
    partial_lower_bound,
    paw_lower_bound,
    placement_lower_bound,
)


def test_paw_lower_bound_valid():
    times = [[7, 9], [4, 3], [6, 2], [5, 5]]
    bound = paw_lower_bound(times)
    best = min(
        max(
            sum(times[i][m] for i, mm in enumerate(assign) if mm == m)
            for m in range(2)
        )
        for assign in product(range(2), repeat=4)
    )
    assert bound <= best


def test_partial_bound_empty_remaining():
    assert partial_lower_bound([10, 4], 0) == 10


def test_partial_bound_area():
    # loads 2+2, remaining min sum 8 -> ceil(12/2) = 6
    assert partial_lower_bound([2, 2], 8) == 6


def test_placement_bound_dominant_core():
    loads = [5, 0]
    times = [[100, 200], [1, 1]]
    bound = placement_lower_bound(loads, [0], times)
    assert bound == 105  # core 0 must land somewhere


def test_placement_bound_no_remaining():
    assert placement_lower_bound([3, 7], [], [[1, 1]]) == 7


def test_bounds_consistent_with_exact():
    from repro.assign.exact import exact_assign
    times = [[12, 20], [8, 15], [25, 40], [9, 9]]
    exact = exact_assign(times, [16, 8])
    assert paw_lower_bound(times) <= exact.result.testing_time
