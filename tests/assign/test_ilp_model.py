"""Unit tests for the literal P_AW ILP formulation."""

import pytest

from repro.assign.exact import exact_assign
from repro.assign.ilp_model import (
    build_paw_model,
    extract_assignment,
    solve_paw_ilp,
)
from repro.ilp.solution import Solution, SolveStatus


class TestModelShape:
    def test_variable_count_matches_paper(self, fig2_times, fig2_widths):
        # The paper: N*B (binary) variables; we add the single tau.
        model = build_paw_model(fig2_times, fig2_widths)
        assert model.num_variables == 5 * 3 + 1
        assert len(model.integer_indices) == 15

    def test_constraint_count_matches_paper(self, fig2_times, fig2_widths):
        # N + B constraints.
        model = build_paw_model(fig2_times, fig2_widths)
        assert model.num_constraints == 5 + 3

    def test_objective_is_tau(self, fig2_times, fig2_widths):
        model = build_paw_model(fig2_times, fig2_widths)
        tau = model.variable_by_name("tau")
        assert model.objective.terms == {tau.index: 1.0}


class TestSolve:
    def test_fig2_optimal(self, fig2_times, fig2_widths):
        result, solution = solve_paw_ilp(fig2_times, fig2_widths)
        assert solution.status is SolveStatus.OPTIMAL
        exact = exact_assign(fig2_times, fig2_widths)
        assert result.testing_time == exact.result.testing_time
        assert result.optimal

    def test_every_core_on_one_bus(self, fig2_times, fig2_widths):
        result, _ = solve_paw_ilp(fig2_times, fig2_widths)
        assert len(result.assignment) == 5
        assert all(0 <= bus < 3 for bus in result.assignment)

    def test_single_bus(self):
        times = [[4], [9]]
        result, solution = solve_paw_ilp(times, [8])
        assert result.testing_time == 13
        assert solution.status is SolveStatus.OPTIMAL


class TestExtraction:
    def test_extract_happy_path(self):
        solution = Solution(
            SolveStatus.OPTIMAL, 1.0,
            {"x_0_0": 1.0, "x_0_1": 0.0, "x_1_0": 0.0, "x_1_1": 1.0},
        )
        assert extract_assignment(solution, 2, 2) == [0, 1]

    def test_extract_rejects_unassigned_core(self):
        from repro.exceptions import InfeasibleError
        solution = Solution(
            SolveStatus.OPTIMAL, 1.0,
            {"x_0_0": 0.0, "x_0_1": 0.0},
        )
        with pytest.raises(InfeasibleError):
            extract_assignment(solution, 1, 2)

    def test_extract_rejects_doubly_assigned_core(self):
        from repro.exceptions import InfeasibleError
        solution = Solution(
            SolveStatus.OPTIMAL, 1.0,
            {"x_0_0": 1.0, "x_0_1": 1.0},
        )
        with pytest.raises(InfeasibleError):
            extract_assignment(solution, 1, 2)
