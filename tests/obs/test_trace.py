"""The span tracer: no-op fast path, nesting, and record transport."""

import pickle
import threading

import pytest

from repro.obs import NOOP_SPAN, SpanRecord, TaskTelemetry, Tracer
from repro.obs import span as module_span
from repro.obs import trace as trace_module


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestDisabledFastPath:
    def test_disabled_tracer_hands_out_the_singleton(self):
        tracer = Tracer()
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("other", soc="d695") is NOOP_SPAN

    def test_module_span_uses_the_global_tracer(self):
        assert not trace_module.TRACER.enabled
        assert module_span("anything") is NOOP_SPAN

    def test_noop_span_is_a_context_manager_and_annotates(self):
        with NOOP_SPAN as live:
            live.annotate(anything=1)

    def test_noop_span_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with NOOP_SPAN:
                raise RuntimeError("propagates")

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("invisible"):
            pass
        assert tracer.drain() == []


class TestLiveSpans:
    def test_root_span_recorded_on_exit(self, tracer):
        with tracer.span("root", soc="d695"):
            pass
        (record,) = tracer.drain()
        assert record.name == "root"
        assert record.start_s == 0.0
        assert record.elapsed_s >= 0.0
        assert dict(record.meta) == {"soc": "d695"}
        assert record.children == ()

    def test_nesting_builds_a_tree(self, tracer):
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.drain()
        assert [child.name for child in root.children] == [
            "mid", "sibling",
        ]
        assert root.children[0].children[0].name == "inner"

    def test_child_offsets_are_relative_to_the_root(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.drain()
        inner = root.children[0]
        assert inner.start_s >= 0.0
        assert inner.start_s + inner.elapsed_s <= root.elapsed_s + 1e-6

    def test_annotate_lands_in_meta(self, tracer):
        with tracer.span("sweep") as live:
            live.annotate(completed=7, lb_pruned=3)
        (record,) = tracer.drain()
        assert dict(record.meta) == {"completed": 7, "lb_pruned": 3}

    def test_exception_tags_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.drain()
        assert dict(record.meta)["error"] == "ValueError"

    def test_drain_claims_and_clears(self, tracer):
        with tracer.span("one"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_threads_nest_independently(self, tracer):
        def worker(name):
            with tracer.span(name):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(4)
        ]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        roots = tracer.drain()
        # Every thread's span is its own root, never a child of the
        # main thread's open span.
        assert sorted(r.name for r in roots) == [
            "main", "t0", "t1", "t2", "t3",
        ]
        (main,) = [r for r in roots if r.name == "main"]
        assert main.children == ()


class TestRecordTransport:
    def _tree(self):
        return SpanRecord(
            name="outer", start_s=0.0, elapsed_s=1.5,
            meta=(("soc", "d695"),),
            children=(
                SpanRecord("inner", 0.25, 1.0, (("B", 3),)),
            ),
        )

    def test_walk_yields_slash_paths_preorder(self):
        paths = [path for path, _ in self._tree().walk()]
        assert paths == ["outer", "outer/inner"]

    def test_dict_round_trip(self):
        tree = self._tree()
        assert SpanRecord.from_dict(tree.to_dict()) == tree

    def test_records_pickle(self):
        tree = self._tree()
        assert pickle.loads(pickle.dumps(tree)) == tree

    def test_task_telemetry_pickles_and_serializes(self):
        telemetry = TaskTelemetry(spans=(self._tree(),))
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone == telemetry
        record = telemetry.to_dict()
        assert record["spans"][0]["name"] == "outer"
        assert record["metrics"] == {
            "counters": {}, "gauges": {}, "timers": {},
        }
