"""The metrics registry: instruments, snapshots, deltas, absorption."""

import pytest

from repro.exceptions import ValidationError
from repro.obs import MetricsRegistry, MetricsSnapshot


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_get_or_create_and_inc(self, registry):
        registry.counter("cache.hits").inc()
        registry.counter("cache.hits").inc(4)
        assert registry.counter("cache.hits").value == 5

    def test_gauge_sets_a_level(self, registry):
        registry.gauge("queue_depth").set(3)
        registry.gauge("queue_depth").set(1)
        assert registry.gauge("queue_depth").value == 1.0

    def test_timer_accumulates(self, registry):
        timer = registry.timer("phase.sweep")
        timer.observe(0.5)
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.total_s >= 0.5

    def test_instruments_lists_every_name(self, registry):
        registry.counter("b")
        registry.gauge("a")
        registry.timer("c")
        assert list(registry.instruments()) == ["a", "b", "c"]


class TestSnapshots:
    def test_snapshot_is_sorted_and_frozen(self, registry):
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        snapshot = registry.snapshot()
        assert snapshot.counters == (("a", 2), ("z", 1))
        with pytest.raises(Exception):
            snapshot.counters = ()

    def test_named_getters_default_to_zero(self):
        empty = MetricsSnapshot()
        assert empty.counter("missing") == 0
        assert empty.gauge("missing") == 0.0
        assert empty.timer("missing") == (0, 0.0)

    def test_delta_subtracts_and_drops_unmoved(self, registry):
        registry.counter("moved").inc(2)
        registry.counter("still").inc(5)
        earlier = registry.snapshot()
        registry.counter("moved").inc(3)
        delta = registry.snapshot().delta(earlier)
        assert delta.counter("moved") == 3
        # An unmoved counter does not appear in the delta at all.
        assert dict(delta.counters).keys() == {"moved"}

    def test_delta_keeps_the_later_gauge_reading(self, registry):
        registry.gauge("depth").set(9)
        earlier = registry.snapshot()
        registry.gauge("depth").set(2)
        delta = registry.snapshot().delta(earlier)
        assert delta.gauge("depth") == 2.0

    def test_delta_subtracts_timers(self, registry):
        registry.timer("phase").observe(1.0)
        earlier = registry.snapshot()
        registry.timer("phase").observe(0.25)
        delta = registry.snapshot().delta(earlier)
        assert delta.timer("phase") == (1, pytest.approx(0.25))

    def test_dict_round_trip(self, registry):
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(1.5)
        registry.timer("phase").observe(0.5)
        snapshot = registry.snapshot()
        assert MetricsSnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValidationError):
            MetricsSnapshot.from_dict("not an object")
        with pytest.raises(ValidationError):
            MetricsSnapshot.from_dict(
                {"timers": {"phase": {"count": 1}}}  # no total_s
            )


class TestAbsorb:
    def test_absorb_adds_counters_and_timers(self, registry):
        registry.counter("hits").inc(1)
        registry.timer("phase").observe(1.0)
        worker = MetricsRegistry()
        worker.counter("hits").inc(4)
        worker.timer("phase").observe(0.5)
        worker.gauge("depth").set(7)
        registry.absorb(worker.snapshot())
        assert registry.counter("hits").value == 5
        assert registry.timer("phase").count == 2
        assert registry.timer("phase").total_s == pytest.approx(1.5)
        assert registry.gauge("depth").value == 7.0

    def test_absorb_none_is_a_no_op(self, registry):
        registry.absorb(None)
        assert registry.snapshot() == MetricsSnapshot()

    def test_worker_delta_merge_equals_direct_counting(self):
        # The telemetry channel's invariant: parent absorbs each
        # worker's delta exactly once, so the parent's totals match
        # what direct counting in one process would have produced.
        parent = MetricsRegistry()
        for work in (3, 4):
            worker = MetricsRegistry()
            worker.counter("shards").inc(work)
            baseline = worker.snapshot()
            worker.counter("shards").inc(1)
            parent.absorb(worker.snapshot().delta(baseline))
        assert parent.counter("shards").value == 2
