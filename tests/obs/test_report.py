"""Warehouse reporting: views, event lines, and the bit-identical
reproduction of a live grid table from SQLite alone."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.report import (
    REPORT_VIEWS,
    build_report,
    format_event_line,
    render_report,
)
from repro.obs.warehouse import RunWarehouse

KEY = "cafe0123456789abcdef0123"


def payload():
    return {
        "points": [
            {
                "soc": "d695", "total_width": 16, "num_tams": 4,
                "partition": [3, 3, 5, 5], "testing_time": 42645,
                "gap": 0.1082, "utilization": 0.985,
            },
            {
                "soc": "d695", "total_width": 24, "num_tams": 3,
                "partition": [8, 8, 8], "testing_time": 29980,
                "gap": 0.0, "utilization": 0.987,
            },
            # Dominated: wider AND slower than W=24.
            {
                "soc": "d695", "total_width": 32, "num_tams": 3,
                "partition": [10, 11, 11], "testing_time": 31000,
                "gap": 0.0, "utilization": 0.9,
            },
        ],
        "failures": [],
    }


@pytest.fixture
def warehouse(tmp_path):
    store = RunWarehouse(tmp_path / "warehouse.sqlite")
    store.record_grid(KEY, payload(), source="batch")
    return store


class TestEventLines:
    def test_point_event_line(self):
        line, failed = format_event_line({
            "kind": "point", "index": 0, "total": 2,
            "payload": {
                "soc": "d695", "total_width": 16, "num_tams": 4,
                "testing_time": 42645,
            },
        })
        assert line == "[1/2] d695 W=16 B=4 T=42645"
        assert failed is False

    def test_failed_event_line(self):
        line, failed = format_event_line({
            "kind": "failed", "index": 1, "total": 2,
            "payload": {
                "soc": "p93791", "total_width": 8,
                "error_type": "ConfigurationError",
            },
        })
        assert line == (
            "[2/2] FAILED p93791 W=8: ConfigurationError"
        )
        assert failed is True


class TestBuildReport:
    def test_unknown_view_rejected(self, warehouse):
        with pytest.raises(ValidationError):
            build_report(warehouse, view="nope")
        assert "table" in REPORT_VIEWS

    def test_empty_warehouse_explains_itself(self, tmp_path):
        empty = RunWarehouse(tmp_path / "none.sqlite")
        with pytest.raises(ValidationError) as failure:
            build_report(empty)
        assert "--cache-dir" in str(failure.value)

    def test_table_view_returns_the_stored_payload(self, warehouse):
        report = build_report(warehouse, view="table")
        assert report["campaign"] == KEY
        assert report["points"] == payload()["points"]
        assert report["failures"] == []

    def test_campaign_prefix_and_run_pin(self, warehouse):
        other_payload = payload()
        other_payload["points"] = other_payload["points"][:1]
        warehouse.record_grid("ffff" + KEY[4:], other_payload)
        by_prefix = build_report(warehouse, campaign=KEY[:6])
        assert len(by_prefix["points"]) == 3
        pinned = build_report(
            warehouse, run_id=by_prefix["run"]["run_id"]
        )
        assert pinned["points"] == by_prefix["points"]
        with pytest.raises(ValidationError):
            build_report(warehouse, run_id=999)

    def test_pareto_view_drops_dominated_points(self, warehouse):
        report = build_report(warehouse, view="pareto")
        widths = [p["total_width"] for p in report["pareto"]]
        assert widths == [16, 24]  # W=32 is dominated by W=24

    def test_trend_and_runs_views(self, warehouse):
        warehouse.record_grid(KEY, payload())
        trend = build_report(warehouse, view="trend")
        assert len(trend["trend"]) == 6  # 3 points x 2 runs
        runs = build_report(warehouse, view="runs", limit=1)
        assert len(runs["runs"]) == 1

    def test_report_record_is_json_serializable(self, warehouse):
        for view in REPORT_VIEWS:
            record = build_report(warehouse, view=view)
            assert json.loads(json.dumps(record))["view"] == view


class TestRendering:
    def test_phases_view_hints_when_tracing_was_off(self, warehouse):
        rendered = render_report(
            build_report(warehouse, view="phases")
        )
        assert "REPRO_TRACE=1" in rendered

    def test_failures_render_after_the_table(self, tmp_path):
        store = RunWarehouse(tmp_path / "warehouse.sqlite")
        failing = payload()
        failing["failures"] = [{
            "soc": "p93791", "total_width": 8,
            "error_type": "ConfigurationError",
            "error_message": "too narrow",
        }]
        store.record_grid(KEY, failing)
        rendered = render_report(build_report(store))
        assert "FAILED p93791 W=8" in rendered
        assert "too narrow" in rendered


class TestBitIdenticalReproduction:
    def test_report_reproduces_the_live_batch_table(
        self, tmp_path, capsys
    ):
        """The acceptance property: after a --cache-dir batch run,
        ``repro-tam report`` rebuilds the live run's best-result
        table from SQLite alone, byte for byte."""
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        assert main([
            "batch", "d695", "-W", "8", "12", "-B", "2",
            "--jobs", "1", "--cache-dir", cache_dir,
        ]) == 0
        live = capsys.readouterr().out
        assert main(["report", "--cache-dir", cache_dir]) == 0
        reported = capsys.readouterr().out
        assert reported == live


class TestSearchProvenance:
    """The runs view's mode/gap/seed roll-up of stored points."""

    def search_payload(self):
        record = payload()
        for point in record["points"]:
            point.update(mode="search", seed=7)
        return record

    def test_exact_run_summary(self, warehouse):
        (run,) = warehouse.runs()
        assert run["mode"] == "exact"
        assert run["seeds"] == []
        assert run["worst_gap"] == pytest.approx(0.1082)

    def test_search_run_summary(self, tmp_path):
        store = RunWarehouse(tmp_path / "warehouse.sqlite")
        store.record_grid(KEY, self.search_payload())
        (run,) = store.runs()
        assert run["mode"] == "search"
        assert run["seeds"] == [7]

    def test_mixed_run_summary(self, tmp_path):
        store = RunWarehouse(tmp_path / "warehouse.sqlite")
        mixed = self.search_payload()
        del mixed["points"][0]["mode"]
        store.record_grid(KEY, mixed)
        (run,) = store.runs()
        assert run["mode"] == "mixed"

    def test_runs_view_renders_the_new_columns(self, tmp_path):
        store = RunWarehouse(tmp_path / "warehouse.sqlite")
        store.record_grid(KEY, self.search_payload())
        rendered = render_report(build_report(store, view="runs"))
        header = rendered.splitlines()[1]
        for column in ("mode", "gap", "seed"):
            assert column in header
        assert "search" in rendered
