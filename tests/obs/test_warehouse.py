"""The run warehouse: persistence, reconstruction, queries, retention."""

import json
import sqlite3

import pytest

from repro.exceptions import ValidationError
from repro.obs import MetricsSnapshot, SpanRecord, TaskTelemetry
from repro.obs.warehouse import (
    WAREHOUSE_FILENAME,
    RunWarehouse,
    warehouse_for,
)

KEY = "aa11bb22cc33dd44ee55ff66"

PAYLOAD = {
    "points": [
        {
            "soc": "d695", "total_width": 16, "num_tams": 4,
            "partition": [3, 3, 5, 5], "testing_time": 42645,
            "gap": 0.1082, "utilization": 0.985,
        },
        {
            "soc": "d695", "total_width": 24, "num_tams": 3,
            "partition": [8, 8, 8], "testing_time": 29980,
            "gap": 0.0, "utilization": 0.987,
        },
    ],
    "failures": [
        {
            "soc": "p93791", "total_width": 8,
            "error_type": "ConfigurationError",
            "error_message": "boom",
        },
    ],
}


def telemetry(elapsed=1.0):
    return TaskTelemetry(
        spans=(
            SpanRecord(
                "evaluate_point", 0.0, elapsed,
                children=(SpanRecord("co_optimize", 0.1, 0.8),),
            ),
        ),
        metrics=MetricsSnapshot(counters=(("sweep.points", 1),)),
    )


@pytest.fixture
def warehouse(tmp_path):
    return RunWarehouse(tmp_path / "warehouse.sqlite")


class TestRecordAndReconstruct:
    def test_missing_file_reads_answer_empty(self, warehouse):
        assert warehouse.runs() == []
        assert warehouse.latest_run() is None
        assert warehouse.phase_breakdown() == []
        assert not warehouse.path.exists()

    def test_grid_payload_reconstructs_byte_identically(
        self, warehouse
    ):
        run_id = warehouse.record_grid(KEY, PAYLOAD)
        stored = warehouse.grid_payload(run_id)
        assert json.dumps(stored, sort_keys=True) == json.dumps(
            PAYLOAD, sort_keys=True
        )

    def test_run_row_carries_counts_and_metrics(self, warehouse):
        run_id = warehouse.record_grid(
            KEY, PAYLOAD, job_id="job-0007", source="service",
            metrics={"counters": {"engine.pools_started": 1},
                     "gauges": {}, "timers": {}},
            created_at=1700000000.0,
        )
        run = warehouse.latest_run()
        assert run["run_id"] == run_id
        assert run["key"] == KEY
        assert run["job_id"] == "job-0007"
        assert run["source"] == "service"
        assert run["num_points"] == 2
        assert run["num_failures"] == 1
        assert run["created_at"] == 1700000000.0
        assert run["metrics"]["counters"] == {
            "engine.pools_started": 1,
        }

    def test_point_telemetry_lands_per_point(self, warehouse):
        run_id = warehouse.record_grid(
            KEY, PAYLOAD,
            point_telemetry=[telemetry(), None],
            run_spans=(SpanRecord("publish_tables", 0.0, 0.2),),
        )
        metrics = warehouse.point_metrics(run_id)
        assert metrics[0]["counters"] == {"sweep.points": 1}
        assert metrics[1] is None
        spans = warehouse.spans(run_id)
        paths = {record["path"] for record in spans}
        assert paths == {
            "evaluate_point", "evaluate_point/co_optimize",
            "publish_tables",
        }
        (run_level,) = [
            record for record in spans
            if record["path"] == "publish_tables"
        ]
        assert run_level["point_idx"] is None

    def test_unknown_run_raises(self, warehouse):
        warehouse.record_grid(KEY, PAYLOAD)
        with pytest.raises(ValidationError):
            warehouse.grid_payload(999)


class TestQueries:
    def test_resolve_key_accepts_unambiguous_prefix(self, warehouse):
        warehouse.record_grid(KEY, PAYLOAD)
        assert warehouse.resolve_key(KEY[:6]) == KEY
        assert warehouse.resolve_key(KEY) == KEY

    def test_resolve_key_rejects_missing_and_ambiguous(
        self, warehouse
    ):
        warehouse.record_grid("aa11one", PAYLOAD)
        warehouse.record_grid("aa11two", PAYLOAD)
        with pytest.raises(ValidationError):
            warehouse.resolve_key("zz")
        with pytest.raises(ValidationError):
            warehouse.resolve_key("aa11")

    def test_trend_lists_points_across_runs_oldest_first(
        self, warehouse
    ):
        first = warehouse.record_grid(KEY, PAYLOAD)
        second = warehouse.record_grid(KEY, PAYLOAD)
        trend = warehouse.trend(KEY)
        assert [row["run_id"] for row in trend] == [
            first, first, second, second,
        ]
        assert trend[0]["testing_time"] == 42645

    def test_phase_breakdown_aggregates_by_path(self, warehouse):
        run_id = warehouse.record_grid(
            KEY, PAYLOAD,
            point_telemetry=[telemetry(1.0), telemetry(3.0)],
        )
        breakdown = warehouse.phase_breakdown(run_id=run_id)
        by_path = {row["path"]: row for row in breakdown}
        evaluate = by_path["evaluate_point"]
        assert evaluate["calls"] == 2
        assert evaluate["total_s"] == pytest.approx(4.0)
        assert evaluate["max_s"] == pytest.approx(3.0)
        # Heaviest phase first.
        assert breakdown[0]["path"] == "evaluate_point"


class TestRetentionAndSchema:
    def test_prune_keeps_newest_per_key(self, warehouse):
        for _ in range(3):
            warehouse.record_grid(KEY, PAYLOAD)
        other = warehouse.record_grid("other-key", PAYLOAD)
        dropped = warehouse.prune(keep_per_key=1)
        assert dropped == 2
        remaining = [run["run_id"] for run in warehouse.runs()]
        assert other in remaining
        assert len(remaining) == 2
        # Pruned runs take their points and spans with them.
        kept = max(run_id for run_id in remaining if run_id != other)
        assert warehouse.grid_payload(kept)["points"]
        with pytest.raises(ValidationError):
            warehouse.grid_payload(1)

    def test_prune_validates_keep(self, warehouse):
        with pytest.raises(ValidationError):
            warehouse.prune(keep_per_key=0)

    def test_foreign_sqlite_file_is_refused(self, tmp_path):
        path = tmp_path / "warehouse.sqlite"
        with sqlite3.connect(str(path)) as connection:
            connection.execute("CREATE TABLE unrelated (x)")
        with pytest.raises(ValidationError):
            RunWarehouse(path).runs()

    def test_newer_schema_is_refused(self, warehouse):
        warehouse.record_grid(KEY, PAYLOAD)
        with sqlite3.connect(str(warehouse.path)) as connection:
            connection.execute("UPDATE meta SET schema = 99")
        with pytest.raises(ValidationError):
            warehouse.runs()


class TestWarehouseFor:
    def test_no_cache_dir_means_no_warehouse(self):
        assert warehouse_for(None) is None

    def test_lives_next_to_the_table_store(self, tmp_path):
        warehouse = warehouse_for(tmp_path)
        assert warehouse is not None
        assert warehouse.path == tmp_path / WAREHOUSE_FILENAME
