"""Unit tests for partition enumeration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.partition.count import count_partitions
from repro.partition.enumerate import (
    increment_partitions,
    is_valid_partition,
    unique_partitions,
)


class TestUniquePartitions:
    def test_paper_w8_b4(self):
        assert list(unique_partitions(8, 4)) == [
            (1, 1, 1, 5), (1, 1, 2, 4), (1, 1, 3, 3),
            (1, 2, 2, 3), (2, 2, 2, 2),
        ]

    def test_every_tuple_valid(self):
        for widths in unique_partitions(12, 3):
            assert is_valid_partition(widths, 12)
            assert list(widths) == sorted(widths)

    def test_no_duplicates_up_to_reordering(self):
        seen = set()
        for widths in unique_partitions(14, 4):
            key = tuple(sorted(widths))
            assert key not in seen
            seen.add(key)

    def test_count_matches_exact_formula(self):
        for total in range(1, 18):
            for parts in range(1, total + 1):
                assert sum(1 for _ in unique_partitions(total, parts)) == (
                    count_partitions(total, parts)
                )

    def test_single_part(self):
        assert list(unique_partitions(7, 1)) == [(7,)]

    def test_all_ones(self):
        assert list(unique_partitions(5, 5)) == [(1, 1, 1, 1, 1)]

    def test_infeasible_rejected(self):
        with pytest.raises(ConfigurationError):
            list(unique_partitions(3, 5))

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            list(unique_partitions(0, 1))
        with pytest.raises(ConfigurationError):
            list(unique_partitions(4, 0))


class TestIncrementPartitions:
    def test_paper_first_three(self):
        first = list(increment_partitions(8, 4))[:3]
        assert first == [(1, 1, 1, 5), (1, 1, 2, 4), (1, 1, 3, 3)]

    def test_paper_suppressed_duplicate(self):
        # (1,3,1,3) is a reordering of (1,1,3,3); Line 1 caps w_2 at 2
        # so it is never emitted.
        assert (1, 3, 1, 3) not in set(increment_partitions(8, 4))

    def test_some_duplicates_survive(self):
        # The paper: "a sizeable number ... is prevented", not all.
        emitted = list(increment_partitions(9, 3))
        keys = [tuple(sorted(widths)) for widths in emitted]
        assert len(keys) > len(set(keys))

    def test_covers_every_unique_partition(self):
        for total, parts in ((8, 4), (12, 3), (10, 5)):
            unique = {
                tuple(sorted(w)) for w in unique_partitions(total, parts)
            }
            emitted = {
                tuple(sorted(w)) for w in increment_partitions(total, parts)
            }
            assert emitted == unique

    def test_every_tuple_sums(self):
        for widths in increment_partitions(11, 4):
            assert is_valid_partition(widths, 11)

    def test_emits_at_least_unique_count(self):
        total, parts = 16, 4
        assert sum(1 for _ in increment_partitions(total, parts)) >= (
            count_partitions(total, parts)
        )


class TestIsValidPartition:
    def test_accepts(self):
        assert is_valid_partition((2, 3, 3), 8)

    def test_rejects_sum(self):
        assert not is_valid_partition((2, 3), 8)

    def test_rejects_zero_part(self):
        assert not is_valid_partition((0, 8), 8)

    def test_rejects_empty(self):
        assert not is_valid_partition((), 8)
