"""Differential suite: the sharded sweep is bit-identical to serial.

The acceptance contract of :mod:`repro.partition.shard`: for every
shard count, prune mode, and keep-top setting, the merged result
matches :func:`repro.partition.evaluate.partition_evaluate` on the
*observable* fields — best time, best partition and assignment, the
runners-up in order, and every ``PartitionStats`` counter (including
``num_lb_pruned``, which the merge reconstructs analytically).
"""

import pytest

from repro.engine.cache import WrapperTableCache
from repro.engine.kernel import build_dense_matrix
from repro.exceptions import ConfigurationError
from repro.partition.evaluate import partition_evaluate
from repro.partition.shard import (
    LocalBoard,
    ShardPlan,
    merge_shard_outcomes,
    plan_shards,
    sharded_partition_evaluate,
    sweep_shard,
)

SHARD_COUNTS = (1, 2, 8)


def tables_for(soc, width):
    return WrapperTableCache(soc).table_list(width)


def assert_identical(serial, sharded, context):
    assert sharded.total_width == serial.total_width, context
    assert sharded.best == serial.best, context
    assert sharded.runners_up == serial.runners_up, context
    assert sharded.stats == serial.stats, context


class TestDifferentialD695:
    """d695 across prune modes, keep-top, shard counts, and boards."""

    @pytest.mark.parametrize("prune", [True, "lb", False])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_npaw_sweep(self, d695, prune, num_shards):
        tables = tables_for(d695, 24)
        counts = tuple(range(1, 11))
        serial = partition_evaluate(tables, 24, counts, prune=prune)
        sharded = sharded_partition_evaluate(
            tables, 24, counts, num_shards, prune=prune,
        )
        assert_identical(serial, sharded, (prune, num_shards))

    @pytest.mark.parametrize("keep_top", [1, 3])
    @pytest.mark.parametrize("board", ["local", None])
    def test_top_k_and_board_ablation(self, d695, keep_top, board):
        # Without a board every shard runs blind (loosest possible
        # thresholds): more work, same merged result.
        tables = tables_for(d695, 16)
        serial = partition_evaluate(
            tables, 16, (1, 2, 3, 4), keep_top=keep_top,
        )
        sharded = sharded_partition_evaluate(
            tables, 16, (1, 2, 3, 4), 8,
            keep_top=keep_top, board=board,
        )
        assert_identical(serial, sharded, (keep_top, board))

    def test_single_count_and_initial_best(self, d695):
        tables = tables_for(d695, 20)
        serial = partition_evaluate(
            tables, 20, 3, prune="lb", initial_best=10_000_000,
        )
        sharded = sharded_partition_evaluate(
            tables, 20, 3, 4, prune="lb", initial_best=10_000_000,
        )
        assert_identical(serial, sharded, "initial_best")

    @pytest.mark.parametrize("prune", ["lb", False])
    def test_duplicate_tam_counts(self, d695, prune):
        tables = tables_for(d695, 12)
        counts = (2, 2, 3)
        serial = partition_evaluate(tables, 12, counts, prune=prune)
        sharded = sharded_partition_evaluate(
            tables, 12, counts, 5, prune=prune,
        )
        assert_identical(serial, sharded, ("duplicate counts", prune))

    def test_unpruned_outcomes_stay_bounded(self, d695):
        # prune=False completes every partition; shards must report
        # only their final top-k, not the whole space.
        tables = tables_for(d695, 20)
        matrix = build_dense_matrix(tables, 20)
        plan = plan_shards(20, (1, 2, 3, 4, 5), 4)
        keep_top = 3
        outcomes = [
            sweep_shard(
                matrix, spans, index, 20,
                keep_top=keep_top, prune=False,
            )
            for index, spans in enumerate(plan.shards)
        ]
        for outcome in outcomes:
            assert len(outcome.completions) <= keep_top
        merged = merge_shard_outcomes(
            matrix, plan, outcomes, keep_top=keep_top, prune=False,
        )
        serial = partition_evaluate(
            tables, 20, (1, 2, 3, 4, 5),
            prune=False, keep_top=keep_top,
        )
        assert_identical(serial, merged, "bounded unpruned")

    def test_counts_beyond_width_match_serial_rows(self, d695):
        tables = tables_for(d695, 4)
        counts = (2, 4, 9)  # 9 > W: serial emits an empty stats row
        serial = partition_evaluate(tables, 4, counts)
        sharded = sharded_partition_evaluate(tables, 4, counts, 3)
        assert_identical(serial, sharded, "count > width")

    def test_unbeatable_initial_best_raises_like_serial(self, d695):
        tables = tables_for(d695, 8)
        with pytest.raises(ConfigurationError):
            partition_evaluate(tables, 8, 2, initial_best=1)
        with pytest.raises(ConfigurationError):
            sharded_partition_evaluate(
                tables, 8, 2, 4, initial_best=1,
            )

    @pytest.mark.parametrize("bad_prune", ["abort", "none", 2])
    def test_invalid_prune_rejected_like_serial(self, d695, bad_prune):
        # A job must fail or succeed identically at every shard
        # setting — including on the CLI's prune *names*, which are
        # not engine prune values.
        tables = tables_for(d695, 8)
        with pytest.raises(ConfigurationError):
            partition_evaluate(tables, 8, 2, prune=bad_prune)
        with pytest.raises(ConfigurationError):
            sharded_partition_evaluate(
                tables, 8, 2, 4, prune=bad_prune,
            )


class TestDifferentialP93791:
    """The hot SOC: the configuration the ISSUE pins, and P_NPAW."""

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_w32_b5(self, p93791, num_shards):
        tables = tables_for(p93791, 32)
        serial = partition_evaluate(tables, 32, 5, prune="lb")
        sharded = sharded_partition_evaluate(
            tables, 32, 5, num_shards, prune="lb",
        )
        assert_identical(serial, sharded, num_shards)

    def test_w32_npaw_lb(self, p93791):
        tables = tables_for(p93791, 32)
        counts = tuple(range(1, 11))
        serial = partition_evaluate(tables, 32, counts, prune="lb")
        sharded = sharded_partition_evaluate(
            tables, 32, counts, 8, prune="lb",
        )
        assert_identical(serial, sharded, "npaw")
        # The analytic reconstruction is exercised only when the
        # serial sweep actually lb-pruned something somewhere.
        assert serial.num_lb_pruned == sharded.num_lb_pruned


class TestMergeProtocol:
    """Order-independence and plan shapes, on a small instance."""

    def test_plan_covers_every_rank_exactly_once(self):
        plan = plan_shards(12, (1, 2, 3, 4, 9), 4)
        from repro.partition.count import count_partitions
        seen = {}
        for shard in plan.shards:
            for span in shard:
                for rank in range(span.start, span.stop):
                    key = (span.count_index, rank)
                    assert key not in seen
                    seen[key] = True
        expected = sum(
            count_partitions(12, count) for count in (1, 2, 3, 4, 9)
            if count <= 12
        )
        assert len(seen) == expected

    def test_plan_caps_shards_at_enumeration_size(self):
        plan = plan_shards(4, (4,), 99)  # p(4,4) == 1
        assert plan.num_shards == 1

    def test_outcomes_merge_identically_in_any_execution_order(
        self, d695
    ):
        # Score the shards in reverse (worst-case interleaving: no
        # forward broadcast ever lands) — the merge must still
        # reproduce the serial result exactly.
        tables = tables_for(d695, 16)
        matrix = build_dense_matrix(tables, 16)
        counts = (1, 2, 3, 4)
        plan = plan_shards(16, counts, 8)
        outcomes = [
            sweep_shard(matrix, spans, index, 16, prune="lb")
            for index, spans in reversed(
                list(enumerate(plan.shards))
            )
        ]
        merged = merge_shard_outcomes(
            matrix, plan, outcomes, prune="lb",
        )
        serial = partition_evaluate(tables, 16, counts, prune="lb")
        assert_identical(serial, merged, "reverse execution")

    def test_merge_rejects_missing_outcomes(self, d695):
        tables = tables_for(d695, 12)
        matrix = build_dense_matrix(tables, 12)
        plan = plan_shards(12, (2, 3), 4)
        outcomes = [
            sweep_shard(matrix, spans, index, 12)
            for index, spans in enumerate(plan.shards)
        ]
        with pytest.raises(ConfigurationError):
            merge_shard_outcomes(matrix, plan, outcomes[:-1])

    def test_board_only_exposes_earlier_slots(self):
        board = LocalBoard(3, keep_top=2)
        board.publish(1, [10, 20])
        board.publish(2, [5])
        assert board.earlier_times(0) == []
        assert board.earlier_times(1) == []
        assert sorted(board.earlier_times(2)) == [10, 20]

    def test_plan_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_shards(8, (), 2)
        with pytest.raises(ConfigurationError):
            plan_shards(8, (0,), 2)
        with pytest.raises(ConfigurationError):
            plan_shards(8, (2,), 0)

    def test_plan_is_serial_order(self):
        plan = plan_shards(10, (2, 3), 3)
        flat = [
            (span.count_index, span.start, span.stop)
            for shard in plan.shards for span in shard
        ]
        assert flat == sorted(flat)
        assert isinstance(plan, ShardPlan)
