"""Rank machinery behind the sharded sweep: slices and counted prefixes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.partition.count import (
    count_partitions,
    count_partitions_bounded,
    count_partitions_min,
)
from repro.partition.enumerate import (
    count_slice_max_at_most,
    partitions_slice,
    unique_partitions,
)

CASES = [(5, 2), (8, 4), (12, 3), (16, 5), (20, 7)]


class TestPartitionsSlice:
    @pytest.mark.parametrize("total,parts", CASES)
    def test_slices_concatenate_to_full_enumeration(
        self, total, parts
    ):
        full = list(unique_partitions(total, parts))
        size = count_partitions(total, parts)
        for num_slices in (1, 2, 3, size):
            bounds = [
                index * size // num_slices
                for index in range(num_slices + 1)
            ]
            glued = [
                widths
                for lo, hi in zip(bounds, bounds[1:])
                for widths in partitions_slice(total, parts, lo, hi)
            ]
            assert glued == full, num_slices

    def test_arbitrary_interior_slice(self):
        full = list(unique_partitions(20, 4))
        assert list(partitions_slice(20, 4, 7, 19)) == full[7:19]

    def test_empty_slice(self):
        assert list(partitions_slice(10, 3, 4, 4)) == []

    def test_out_of_range_slices_raise(self):
        size = count_partitions(10, 3)
        with pytest.raises(ConfigurationError):
            list(partitions_slice(10, 3, 0, size + 1))
        with pytest.raises(ConfigurationError):
            list(partitions_slice(10, 3, -1, 2))
        with pytest.raises(ConfigurationError):
            list(partitions_slice(10, 3, 3, 2))


class TestCountSliceMaxAtMost:
    @pytest.mark.parametrize("total,parts", CASES)
    def test_matches_brute_force(self, total, parts):
        full = list(unique_partitions(total, parts))
        for stop in range(len(full) + 1):
            for max_part in range(1, total + 2):
                expected = sum(
                    1 for widths in full[:stop]
                    if max(widths) <= max_part
                )
                assert count_slice_max_at_most(
                    total, parts, stop, max_part
                ) == expected, (stop, max_part)

    def test_zero_cases(self):
        assert count_slice_max_at_most(10, 3, 0, 10) == 0
        assert count_slice_max_at_most(10, 3, 5, 0) == 0

    def test_stop_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            count_slice_max_at_most(
                10, 3, count_partitions(10, 3) + 1, 5
            )


class TestBoundedCounts:
    @pytest.mark.parametrize("total,parts", CASES)
    def test_bounded_matches_brute_force(self, total, parts):
        full = list(unique_partitions(total, parts))
        for lo in range(1, 4):
            for hi in range(lo, total + 1):
                expected = sum(
                    1 for widths in full
                    if min(widths) >= lo and max(widths) <= hi
                )
                assert count_partitions_bounded(
                    total, parts, lo, hi
                ) == expected, (lo, hi)

    def test_min_count_reduction(self):
        # parts >= m  ⟺  ordinary partitions of the reduced total
        assert count_partitions_min(12, 3, 2) == count_partitions(9, 3)
        assert count_partitions_min(6, 3, 3) == 0
        with pytest.raises(ConfigurationError):
            count_partitions_min(6, 3, 0)
