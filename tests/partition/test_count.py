"""Unit tests for partition counting."""

import pytest

from repro.exceptions import ConfigurationError
from repro.partition.count import (
    approx_partitions,
    count_partitions,
    count_partitions_up_to,
    partitions_three,
    partitions_two,
)
from repro.partition.enumerate import unique_partitions


class TestExactCount:
    def test_small_values(self):
        assert count_partitions(8, 4) == 5
        assert count_partitions(5, 5) == 1
        assert count_partitions(5, 1) == 1
        assert count_partitions(4, 5) == 0  # cannot split 4 into 5 parts

    def test_matches_enumeration(self):
        for total in range(1, 16):
            for parts in range(1, total + 1):
                assert count_partitions(total, parts) == sum(
                    1 for _ in unique_partitions(total, parts)
                )

    def test_up_to(self):
        assert count_partitions_up_to(8, 3) == (
            count_partitions(8, 1)
            + count_partitions(8, 2)
            + count_partitions(8, 3)
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            count_partitions(0, 1)
        with pytest.raises(ConfigurationError):
            count_partitions(4, 0)


class TestClosedForms:
    def test_two_parts(self):
        for total in range(2, 40):
            assert partitions_two(total) == count_partitions(total, 2)

    def test_three_parts(self):
        # round(W^2/12) is exact for B=3 (classical result).
        for total in range(3, 40):
            assert partitions_three(total) == count_partitions(total, 3)

    def test_paper_example_w24(self):
        # The paper: P(24, 3) = 48.
        assert partitions_three(24) == 48


class TestApproximation:
    def test_right_order_of_magnitude_for_large_w(self):
        # The paper restricts the asymptotic form to W >= 44 because
        # it is only accurate for large W; check it tracks the exact
        # count within a factor of two there.
        for parts in (4, 5):
            for total in (44, 64, 100):
                exact = count_partitions(total, parts)
                approx = approx_partitions(total, parts)
                assert 0.5 < approx / exact < 2.0

    def test_relative_error_shrinks_with_w(self):
        def rel_error(total):
            exact = count_partitions(total, 4)
            return abs(approx_partitions(total, 4) - exact) / exact

        assert rel_error(200) < rel_error(44)

    def test_b1_is_one(self):
        assert approx_partitions(50, 1) == 1.0

    def test_formula_shape(self):
        # W^(B-1) / (B! (B-1)!) exactly, by construction.
        from math import factorial
        assert approx_partitions(10, 3) == pytest.approx(
            10 ** 2 / (factorial(3) * factorial(2))
        )
