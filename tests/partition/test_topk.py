"""Unit tests for top-k / stratified retention in Partition_evaluate."""

import pytest

from repro.exceptions import ConfigurationError
from repro.partition.evaluate import _TopK, partition_evaluate
from repro.tam.assignment import evaluate_assignment
from repro.wrapper.pareto import build_time_tables


@pytest.fixture
def tiny_tables(tiny_soc):
    tables = build_time_tables(tiny_soc, max_width=16)
    return [tables[core.name] for core in tiny_soc]


def _result(widths, times):
    """An AssignmentResult with everything on bus 0 for given widths."""
    matrix = [[time] * len(widths) for time in times]
    return evaluate_assignment(matrix, widths, [0] * len(times))


class TestTopK:
    def test_keeps_capacity(self):
        top = _TopK(2, None)
        for widths, time in (((3,), 30), ((4,), 10), ((5,), 20)):
            top.offer(_result(widths, [time]))
        kept = [entry.testing_time for entry in top.entries]
        assert kept == [10, 20]

    def test_threshold_none_until_full(self):
        top = _TopK(2, None)
        assert top.threshold() is None
        top.offer(_result((4,), [10]))
        assert top.threshold() is None
        top.offer(_result((5,), [20]))
        assert top.threshold() == 20

    def test_threshold_with_initial_best(self):
        top = _TopK(2, 15)
        assert top.threshold() == 15
        top.offer(_result((4,), [10]))
        top.offer(_result((5,), [12]))
        assert top.threshold() == 12

    def test_duplicate_partition_replaced_not_duplicated(self):
        top = _TopK(3, None)
        top.offer(_result((4, 8), [10, 10]))
        top.offer(_result((8, 4), [5, 4]))   # same canonical partition
        assert len(top.entries) == 1
        assert top.entries[0].testing_time == 9

    def test_duplicate_worse_ignored(self):
        top = _TopK(3, None)
        top.offer(_result((4, 8), [2, 2]))
        top.offer(_result((4, 8), [9, 9]))
        assert len(top.entries) == 1
        assert top.entries[0].testing_time == 4


class TestKeepTopSweep:
    def test_runners_up_distinct_and_ordered(self, tiny_tables):
        result = partition_evaluate(
            tiny_tables, 10, range(1, 4), keep_top=4
        )
        entries = (result.best,) + result.runners_up
        times = [entry.testing_time for entry in entries]
        assert times == sorted(times)
        keys = {tuple(sorted(entry.widths)) for entry in entries}
        assert len(keys) == len(entries)

    def test_keep_top_one_has_no_runners(self, tiny_tables):
        result = partition_evaluate(tiny_tables, 10, range(1, 4))
        assert result.runners_up == ()

    def test_best_unchanged_by_keep_top(self, tiny_tables):
        k1 = partition_evaluate(tiny_tables, 10, range(1, 4), keep_top=1)
        k5 = partition_evaluate(tiny_tables, 10, range(1, 4), keep_top=5)
        assert k1.testing_time == k5.testing_time

    def test_invalid_keep_top(self, tiny_tables):
        with pytest.raises(ConfigurationError):
            partition_evaluate(tiny_tables, 10, 2, keep_top=0)


class TestStratified:
    def test_one_candidate_per_tam_count(self, tiny_tables):
        result = partition_evaluate(
            tiny_tables, 10, range(1, 4), stratify_by_tam_count=True
        )
        entries = (result.best,) + result.runners_up
        counts = sorted(len(entry.widths) for entry in entries)
        assert counts == [1, 2, 3]

    def test_best_matches_unstratified(self, tiny_tables):
        plain = partition_evaluate(tiny_tables, 10, range(1, 4))
        stratified = partition_evaluate(
            tiny_tables, 10, range(1, 4), stratify_by_tam_count=True
        )
        assert stratified.testing_time == plain.testing_time

    def test_stratified_completes_more(self, tiny_tables):
        plain = partition_evaluate(tiny_tables, 12, range(1, 5))
        stratified = partition_evaluate(
            tiny_tables, 12, range(1, 5), stratify_by_tam_count=True
        )
        assert (
            sum(s.num_completed for s in stratified.stats)
            >= sum(s.num_completed for s in plain.stats)
        )


class TestCoOptimizePolishVariants:
    def test_top_k_never_worse(self, tiny_soc):
        from repro.optimize.co_optimize import co_optimize
        base = co_optimize(tiny_soc, 8, num_tams=range(1, 4))
        topk = co_optimize(tiny_soc, 8, num_tams=range(1, 4),
                           polish_top_k=3)
        assert topk.testing_time <= base.testing_time

    def test_per_b_never_worse(self, tiny_soc):
        from repro.optimize.co_optimize import co_optimize
        base = co_optimize(tiny_soc, 8, num_tams=range(1, 4))
        per_b = co_optimize(tiny_soc, 8, num_tams=range(1, 4),
                            polish_per_tam_count=True)
        assert per_b.testing_time <= base.testing_time

    def test_per_b_fixes_d695_w40_anomaly(self, d695):
        from repro.optimize.co_optimize import co_optimize
        base = co_optimize(d695, 40, num_tams=range(1, 11))
        per_b = co_optimize(d695, 40, num_tams=range(1, 11),
                            polish_per_tam_count=True)
        # The documented anomaly: the paper's method lands on a B=5
        # partition (19034 cycles on our data); polishing the best
        # partition of every B recovers the better B=3 architecture.
        assert per_b.testing_time < base.testing_time

    def test_invalid_polish_top_k(self, tiny_soc):
        from repro.exceptions import ConfigurationError
        from repro.optimize.co_optimize import co_optimize
        with pytest.raises(ConfigurationError):
            co_optimize(tiny_soc, 8, num_tams=2, polish_top_k=0)
