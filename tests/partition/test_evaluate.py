"""Unit tests for Partition_evaluate."""

import pytest

from repro.exceptions import ConfigurationError
from repro.partition.count import count_partitions
from repro.partition.evaluate import partition_evaluate
from repro.wrapper.pareto import build_time_tables


@pytest.fixture
def tiny_tables(tiny_soc):
    tables = build_time_tables(tiny_soc, max_width=16)
    return [tables[core.name] for core in tiny_soc]


class TestSearch:
    def test_single_tam_count(self, tiny_tables):
        result = partition_evaluate(tiny_tables, total_width=8, num_tams=2)
        assert sum(result.best_partition) == 8
        assert result.best_num_tams == 2
        assert result.testing_time == result.best.testing_time

    def test_multiple_tam_counts(self, tiny_tables):
        result = partition_evaluate(
            tiny_tables, total_width=8, num_tams=range(1, 4)
        )
        assert result.best_num_tams in (1, 2, 3)
        assert {s.num_tams for s in result.stats} == {1, 2, 3}

    def test_more_tams_never_hurts_search(self, tiny_tables):
        narrow = partition_evaluate(tiny_tables, 8, num_tams=1)
        wide = partition_evaluate(tiny_tables, 8, num_tams=range(1, 4))
        # The wider search includes B=1, so can only match or improve.
        assert wide.testing_time <= narrow.testing_time

    def test_wider_budget_never_hurts(self, tiny_tables):
        result8 = partition_evaluate(tiny_tables, 8, num_tams=range(1, 4))
        result12 = partition_evaluate(tiny_tables, 12, num_tams=range(1, 4))
        assert result12.testing_time <= result8.testing_time

    def test_b_larger_than_width_skipped(self, tiny_tables):
        result = partition_evaluate(
            tiny_tables, total_width=2, num_tams=range(1, 5)
        )
        stats = {s.num_tams: s for s in result.stats}
        assert stats[3].num_enumerated == 0
        assert stats[4].num_enumerated == 0

    def test_best_matches_exhaustive_recheck(self, tiny_tables):
        from repro.assign.core_assign import core_assign
        from repro.partition.enumerate import unique_partitions

        result = partition_evaluate(tiny_tables, 6, num_tams=2)
        best = min(
            core_assign(
                [[t.time(w) for w in widths] for t in tiny_tables],
                widths,
            ).testing_time
            for widths in unique_partitions(6, 2)
        )
        assert result.testing_time == best


class TestStats:
    def test_enumerated_counts_every_partition(self, tiny_tables):
        result = partition_evaluate(tiny_tables, 10, num_tams=3)
        stats = result.stats_for(3)
        assert stats.num_enumerated == count_partitions(10, 3)
        assert stats.num_unique == count_partitions(10, 3)

    def test_pruning_reduces_completions(self, tiny_tables):
        pruned = partition_evaluate(
            tiny_tables, 12, num_tams=range(1, 5), prune=True
        )
        unpruned = partition_evaluate(
            tiny_tables, 12, num_tams=range(1, 5), prune=False
        )
        total_pruned = sum(s.num_completed for s in pruned.stats)
        total_unpruned = sum(s.num_completed for s in unpruned.stats)
        assert total_pruned < total_unpruned
        # Pruning never changes the answer.
        assert pruned.testing_time == unpruned.testing_time

    def test_efficiency_ratio(self, tiny_tables):
        result = partition_evaluate(tiny_tables, 12, num_tams=4)
        stats = result.stats_for(4)
        assert 0.0 <= stats.efficiency <= 1.0
        assert stats.efficiency == (
            stats.num_completed / stats.num_unique
        )

    def test_stats_for_missing(self, tiny_tables):
        result = partition_evaluate(tiny_tables, 8, num_tams=2)
        with pytest.raises(KeyError):
            result.stats_for(7)


class TestEnumeratorChoice:
    def test_increment_same_best(self, tiny_tables):
        unique = partition_evaluate(
            tiny_tables, 10, num_tams=range(1, 4), enumerator="unique"
        )
        increment = partition_evaluate(
            tiny_tables, 10, num_tams=range(1, 4), enumerator="increment"
        )
        assert unique.testing_time == increment.testing_time

    def test_increment_enumerates_more(self, tiny_tables):
        unique = partition_evaluate(tiny_tables, 12, num_tams=4,
                                    enumerator="unique")
        increment = partition_evaluate(tiny_tables, 12, num_tams=4,
                                       enumerator="increment")
        assert (increment.stats_for(4).num_enumerated
                >= unique.stats_for(4).num_enumerated)

    def test_unknown_enumerator(self, tiny_tables):
        with pytest.raises(ConfigurationError):
            partition_evaluate(tiny_tables, 8, 2, enumerator="magic")


class TestValidation:
    def test_empty_tables(self):
        with pytest.raises(ConfigurationError):
            partition_evaluate([], 8, 2)

    def test_table_too_narrow(self, tiny_soc):
        tables = build_time_tables(tiny_soc, max_width=4)
        table_list = [tables[c.name] for c in tiny_soc]
        with pytest.raises(ConfigurationError):
            partition_evaluate(table_list, 8, 2)

    def test_bad_width(self, tiny_tables):
        with pytest.raises(ConfigurationError):
            partition_evaluate(tiny_tables, 0, 1)

    def test_bad_tam_count(self, tiny_tables):
        with pytest.raises(ConfigurationError):
            partition_evaluate(tiny_tables, 8, 0)

    def test_empty_tam_iterable(self, tiny_tables):
        with pytest.raises(ConfigurationError):
            partition_evaluate(tiny_tables, 8, [])
