"""The seeded backoff schedule every retry loop derives from."""

import pytest

from repro.retry import backoff_schedule


class TestBackoffSchedule:
    def test_geometric_growth_up_to_cap(self):
        assert backoff_schedule(4, base=0.1, factor=2.0, cap=0.5) == (
            0.1, 0.2, 0.4, 0.5,
        )

    def test_zero_attempts_is_empty(self):
        assert backoff_schedule(0) == ()

    def test_deterministic_across_calls(self):
        first = backoff_schedule(6, jitter=0.5, seed=42)
        second = backoff_schedule(6, jitter=0.5, seed=42)
        assert first == second

    def test_jitter_is_seeded_and_bounded(self):
        plain = backoff_schedule(5, base=0.1, cap=10.0)
        jittered = backoff_schedule(5, base=0.1, cap=10.0,
                                    jitter=0.5, seed=1)
        assert jittered != backoff_schedule(5, base=0.1, cap=10.0,
                                            jitter=0.5, seed=2)
        for exact, fuzzed in zip(plain, jittered):
            assert exact * 0.5 <= fuzzed <= exact * 1.5

    @pytest.mark.parametrize("kwargs", [
        {"attempts": -1},
        {"attempts": 2, "base": -0.1},
        {"attempts": 2, "factor": 0.5},
        {"attempts": 2, "cap": -1.0},
        {"attempts": 2, "jitter": 1.5},
    ])
    def test_rejects_nonsense_parameters(self, kwargs):
        attempts = kwargs.pop("attempts")
        with pytest.raises(ValueError):
            backoff_schedule(attempts, **kwargs)
