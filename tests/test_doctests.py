"""Run the executable examples embedded in module docstrings.

Keeps every ``>>>`` snippet in the public API honest — a doc example
that drifts from the code fails the suite.
"""

import doctest

import pytest

import repro
import repro.partition.count
import repro.partition.enumerate
import repro.report.tables
import repro.schedule.lpt
import repro.soc.complexity
import repro.wrapper.design
import repro.wrapper.timing

MODULES = [
    repro,
    repro.partition.count,
    repro.partition.enumerate,
    repro.report.tables,
    repro.schedule.lpt,
    repro.soc.complexity,
    repro.wrapper.design,
    repro.wrapper.timing,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda module: module.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.attempted > 0, (
        f"{module.__name__} has no doctests — drop it from MODULES"
    )
    assert results.failed == 0
