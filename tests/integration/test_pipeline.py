"""Integration tests: the full co-optimization stack end to end."""

import pytest

from repro.assign.core_assign import core_assign
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.schedule.session import build_schedule
from repro.soc.generator import random_soc
from repro.wrapper.pareto import build_time_tables


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_socs_heuristic_close_to_exhaustive(self, seed):
        soc = random_soc(f"fuzz{seed}", num_cores=6, seed=seed,
                         max_patterns=200, max_ios=60, max_chains=6,
                         max_chain_length=40)
        width = 12
        heuristic = co_optimize(soc, width, num_tams=range(1, 4))
        exhaustive = exhaustive_optimize(soc, width, num_tams=range(1, 4))
        assert heuristic.testing_time >= exhaustive.testing_time
        # The paper's claim: comparable testing times (within ~20%
        # on every instance it reports; allow modest slack on fuzz).
        assert heuristic.testing_time <= 1.30 * exhaustive.testing_time

    def test_schedule_materializes_from_pipeline(self, d695):
        result = co_optimize(d695, total_width=24, num_tams=range(1, 4))
        tables = build_time_tables(d695, 24)
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in d695
        ]
        schedule = build_schedule(
            result.final, times, [c.name for c in d695]
        )
        assert schedule.makespan == result.testing_time
        assert "makespan" in schedule.gantt()

    def test_full_api_surface_importable(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_time_tables_shared_between_pipelines(self, d695):
        # Same tables -> heuristic bus times must be reproducible by
        # direct core_assign on the chosen partition.
        result = co_optimize(d695, total_width=16, num_tams=2,
                             polish=False)
        tables = build_time_tables(d695, 16)
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in d695
        ]
        outcome = core_assign(times, result.partition)
        assert outcome.testing_time == result.testing_time


class TestPaperShapes:
    """Qualitative claims of the evaluation section, at test scale."""

    def test_more_tams_help_at_large_width(self, d695):
        # Table 3: at W=48+, the best architectures use B >= 4.
        b2 = co_optimize(d695, 48, num_tams=2).testing_time
        b_many = co_optimize(d695, 48, num_tams=range(1, 7)).testing_time
        assert b_many <= b2

    def test_heuristic_orders_of_magnitude_faster(self, d695):
        import time
        start = time.monotonic()
        co_optimize(d695, 24, num_tams=range(1, 4), polish=False)
        heuristic_time = time.monotonic() - start

        start = time.monotonic()
        exhaustive_optimize(d695, 24, num_tams=range(1, 4))
        exhaustive_time = time.monotonic() - start
        # The paper reports >= 10-100x; even at this tiny scale the
        # heuristic must be clearly faster.
        assert heuristic_time < exhaustive_time

    def test_pruning_efficiency_small(self, d695):
        # Table 1: only a small fraction of partitions is evaluated
        # to completion.
        result = co_optimize(d695, 32, num_tams=range(1, 6),
                             polish=False)
        total_unique = sum(s.num_unique for s in result.search.stats)
        total_completed = sum(
            s.num_completed for s in result.search.stats
        )
        assert total_completed < 0.35 * total_unique

    def test_anomaly_possible_but_consistent(self, d695):
        # The polish never worsens the heuristic result even when the
        # heuristic picked a different partition than the exhaustive
        # winner (the paper's documented anomaly).
        result = co_optimize(d695, 16, num_tams=range(1, 5))
        assert result.testing_time <= result.search.testing_time
