"""Golden regression pins.

Every benchmark SOC is deterministic, every algorithm is
deterministic, so the end-to-end results are exact constants of this
codebase.  These pins freeze them: any refactor that changes an
algorithm's decisions (tie-breaks, packing order, pruning) trips a
failure here even if the qualitative benchmarks still pass.

If a change is *intended* to alter results (e.g. improving a
heuristic), update the constants in the same commit and say why.
"""

import pytest

from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize

# (width -> (testing_time, partition)) for the paper's method, P_NPAW.
D695_NPAW_GOLDEN = {
    16: (42645, (3, 3, 5, 5)),
    32: (21566, (4, 4, 6, 9, 9)),
}

# Fixed-B golden values (exhaustive baseline, proven optimal).
D695_EXHAUSTIVE_B2_GOLDEN = {
    16: 44188,
    32: 24864,
}


class TestD695Golden:
    @pytest.mark.parametrize("width", sorted(D695_NPAW_GOLDEN))
    def test_npaw(self, d695, width):
        expected_time, expected_partition = D695_NPAW_GOLDEN[width]
        result = co_optimize(d695, width, num_tams=range(1, 11))
        assert result.testing_time == expected_time
        assert tuple(sorted(result.partition)) == expected_partition

    @pytest.mark.parametrize("width", sorted(D695_EXHAUSTIVE_B2_GOLDEN))
    def test_exhaustive_b2(self, d695, width):
        result = exhaustive_optimize(d695, width, num_tams=2)
        assert result.complete and result.all_exact
        assert result.testing_time == D695_EXHAUSTIVE_B2_GOLDEN[width]


class TestPhilipsGolden:
    def test_p31108_b3_w40(self, p31108):
        result = co_optimize(p31108, 40, num_tams=3)
        assert result.testing_time == 840481

    def test_p21241_b2_w16(self, p21241):
        result = co_optimize(p21241, 16, num_tams=2)
        assert result.testing_time == 1858126

    def test_p93791_complexity_pinned(self, p93791):
        from repro.soc.complexity import test_complexity
        assert round(test_complexity(p93791)) == 88871
