"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.soc.itc02 import write_soc


class TestDescribe:
    def test_benchmark(self, capsys):
        assert main(["describe", "d695"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "complexity" in out

    def test_soc_file(self, tmp_path, capsys, tiny_soc):
        path = tmp_path / "tiny.soc"
        write_soc(tiny_soc, path)
        assert main(["describe", str(path)]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_missing_source(self, capsys):
        assert main(["describe", "no_such_thing"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCooptimize:
    def test_npaw_run(self, capsys):
        assert main(["cooptimize", "d695", "-W", "16", "--bmax", "3"]) == 0
        out = capsys.readouterr().out
        assert "W=16" in out
        assert "assignment: (" in out

    def test_fixed_b(self, capsys):
        assert main(["cooptimize", "d695", "-W", "16", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "B=2" in out

    def test_stats_flag(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "--bmax", "2", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruning statistics" in out

    def test_gantt_flag(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "-B", "2", "--gantt",
        ]) == 0
        out = capsys.readouterr().out
        assert "makespan:" in out

    def test_no_polish(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "-B", "2", "--no-polish",
        ]) == 0


class TestExhaustive:
    def test_run(self, capsys):
        assert main(["exhaustive", "d695", "-W", "12", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "complete" in out

    def test_respects_time_limit_flag(self, capsys):
        # Zero budget -> evaluates nothing -> clean CLI error.
        assert main([
            "exhaustive", "d695", "-W", "12", "-B", "2",
            "--time-limit", "0",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_reports_certificate_and_utilization(self, capsys):
        assert main(["analyze", "d695", "-W", "12", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out
        assert "utilization" in out

    def test_free_b(self, capsys):
        assert main(["analyze", "d695", "-W", "12", "--bmax", "3"]) == 0
        assert "architecture" in capsys.readouterr().out


class TestBatch:
    def test_grid_over_two_socs(self, capsys):
        assert main([
            "batch", "d695", "p21241", "-W", "8", "12", "--jobs", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch sweep" in out
        assert "d695" in out and "p21241" in out
        # One row per (SOC, width) grid point.
        assert out.count("d695") == 2 and out.count("p21241") == 2

    def test_matches_cooptimize_point(self, capsys):
        assert main(["cooptimize", "d695", "-W", "12", "-B", "2"]) == 0
        single = capsys.readouterr().out
        time = single.split("T=")[1].split(" ")[0]
        assert main([
            "batch", "d695", "-W", "12", "-B", "2", "--jobs", "1",
        ]) == 0
        assert time in capsys.readouterr().out

    def test_parallel_workers(self, capsys):
        assert main([
            "batch", "d695", "-W", "8", "10", "--jobs", "2", "-B", "2",
        ]) == 0
        assert "batch sweep" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main([
            "batch", "d695", "-W", "8", "-B", "2", "--jobs", "1",
            "--json",
        ]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "batch"
        point = record["points"][0]
        assert point["soc"] == "d695"
        assert point["total_width"] == 8
        assert point["testing_time"] > 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_width_required(self):
        with pytest.raises(SystemExit):
            main(["cooptimize", "d695"])
