"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.soc.itc02 import write_soc


class TestDescribe:
    def test_benchmark(self, capsys):
        assert main(["describe", "d695"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "complexity" in out

    def test_soc_file(self, tmp_path, capsys, tiny_soc):
        path = tmp_path / "tiny.soc"
        write_soc(tiny_soc, path)
        assert main(["describe", str(path)]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_missing_source(self, capsys):
        assert main(["describe", "no_such_thing"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCooptimize:
    def test_npaw_run(self, capsys):
        assert main(["cooptimize", "d695", "-W", "16", "--bmax", "3"]) == 0
        out = capsys.readouterr().out
        assert "W=16" in out
        assert "assignment: (" in out

    def test_fixed_b(self, capsys):
        assert main(["cooptimize", "d695", "-W", "16", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "B=2" in out

    def test_stats_flag(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "--bmax", "2", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruning statistics" in out

    def test_gantt_flag(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "-B", "2", "--gantt",
        ]) == 0
        out = capsys.readouterr().out
        assert "makespan:" in out

    def test_no_polish(self, capsys):
        assert main([
            "cooptimize", "d695", "-W", "12", "-B", "2", "--no-polish",
        ]) == 0


class TestExhaustive:
    def test_run(self, capsys):
        assert main(["exhaustive", "d695", "-W", "12", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "complete" in out

    def test_respects_time_limit_flag(self, capsys):
        # Zero budget -> evaluates nothing -> clean CLI error.
        assert main([
            "exhaustive", "d695", "-W", "12", "-B", "2",
            "--time-limit", "0",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_reports_certificate_and_utilization(self, capsys):
        assert main(["analyze", "d695", "-W", "12", "-B", "2"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out
        assert "utilization" in out

    def test_free_b(self, capsys):
        assert main(["analyze", "d695", "-W", "12", "--bmax", "3"]) == 0
        assert "architecture" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_width_required(self):
        with pytest.raises(SystemExit):
            main(["cooptimize", "d695"])
