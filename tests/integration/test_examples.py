"""Smoke tests for the runnable examples.

The two quick examples run end to end; the longer sweeps are compiled
and import-checked only (their logic is exercised by the benchmark
harness with the same drivers).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "design_space_exploration.py",
    "custom_soc_itc02.py",
    "industrial_flow.py",
    "power_aware_scheduling.py",
    "service_smoke.py",
]
FAST_EXAMPLES = ["quickstart.py", "custom_soc_itc02.py",
                 "power_aware_scheduling.py"]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_architecture():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "best architecture" in completed.stdout
    assert "makespan" in completed.stdout
