"""Integration tests for the experiment drivers (fast configurations)."""

from repro.report.experiments import (
    FIG2_WIDTHS,
    run_fig2_example,
    run_npaw,
    run_paw_comparison,
    run_range_table,
    run_table1,
    rows_to_table,
)


class TestFig2:
    def test_reproduces_paper_exactly(self):
        result = run_fig2_example()
        assert result["assignment"] == "(2,3,2,1,1)"
        assert result["bus_times"] == (180, 200, 200)
        assert result["testing_time"] == 200

    def test_widths_constant(self):
        assert FIG2_WIDTHS == (32, 16, 8)


class TestRangeTable:
    def test_d695(self, d695):
        rows = run_range_table(d695)
        assert len(rows) == 2
        assert rows[0]["circuit"] == "Logic cores"

    def test_renders(self, d695):
        rows = run_range_table(d695)
        text = rows_to_table(
            rows, ["circuit", "cores", "patterns"], title="Table 4-ish"
        )
        assert "Logic cores" in text and "Table 4-ish" in text


class TestTable1:
    def test_small_configuration(self, d695):
        rows = run_table1(d695, widths=(20, 24), tam_counts=(3,))
        assert [row["W"] for row in rows] == [20, 24]
        for row in rows:
            assert row["Neval(B=3)"] <= row["P(W,3)"]
            assert 0 <= row["E(B=3)"] <= 1


class TestPawComparison:
    def test_small_configuration(self, tiny_soc):
        rows = run_paw_comparison(
            tiny_soc, num_tams=2, widths=(8, 12),
            exhaustive_time_per_partition=2.0,
            exhaustive_total_time=30.0,
        )
        assert len(rows) == 2
        for row in rows:
            # Heuristic never beats a complete exact sweep.
            if row["old_complete"]:
                assert row["delta_pct"] >= -1e-9


class TestRowsToTable:
    def test_missing_keys_render_empty(self):
        text = rows_to_table([{"a": 1}], ["a", "b"])
        lines = text.splitlines()
        assert lines[-1].startswith("1")

    def test_title_passthrough(self):
        text = rows_to_table([{"a": 1}], ["a"], title="T")
        assert text.splitlines()[0] == "T"


class TestNpaw:
    def test_small_configuration(self, tiny_soc):
        rows = run_npaw(tiny_soc, widths=(8, 12), max_tams=3)
        assert len(rows) == 2
        for row in rows:
            assert sum(map(int, row["partition"].split("+"))) == row["W"]
            assert row["B"] <= 3

    def test_time_non_increasing_in_width(self, tiny_soc):
        rows = run_npaw(tiny_soc, widths=(6, 10, 14), max_tams=3)
        times = [row["T_new"] for row in rows]
        assert all(a >= b for a, b in zip(times, times[1:]))
