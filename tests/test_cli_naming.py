"""The two CLI entry points must agree and say so.

Satellite of the api_redesign PR: README used to mix `repro-tam
serve` and `python -m repro serve` without stating they are the same
program.  These tests pin the invariant: the installed console
script, the module entry point, and the documented prose all point
at one `repro.cli.main`.
"""

import tomllib
from pathlib import Path

from repro.cli import ENTRY_POINT_EPILOG, build_parser

ROOT = Path(__file__).resolve().parent.parent


def test_console_script_points_at_cli_main():
    pyproject = tomllib.loads((ROOT / "pyproject.toml").read_text())
    scripts = pyproject["project"]["scripts"]
    assert scripts == {"repro-tam": "repro.cli:main"}


def test_module_entry_point_uses_the_same_main():
    source = (ROOT / "src" / "repro" / "__main__.py").read_text()
    assert "from repro.cli import main" in source


def test_parser_prog_matches_console_script():
    parser = build_parser()
    assert parser.prog == "repro-tam"


def test_epilog_names_both_entry_points():
    assert "repro-tam" in ENTRY_POINT_EPILOG
    assert "python -m repro" in ENTRY_POINT_EPILOG
    parser = build_parser()
    assert parser.epilog == ENTRY_POINT_EPILOG


def test_every_subcommand_help_carries_the_epilog():
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    for name, sub in subparsers.choices.items():
        assert sub.epilog == ENTRY_POINT_EPILOG, (
            f"subcommand {name!r} drifted from the shared epilog"
        )


def test_readme_states_the_equivalence():
    readme = (ROOT / "README.md").read_text()
    assert "python -m repro" in readme
    assert "repro-tam" in readme
    # The prose must state the two forms are the same entry point.
    assert "same entry point" in readme or "identical CLI" in readme
