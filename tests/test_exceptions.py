"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    InfeasibleError,
    ParseError,
    ReproError,
    SolverLimitError,
    ValidationError,
)


def test_all_derive_from_repro_error():
    for exc_type in (ValidationError, ParseError, InfeasibleError,
                     SolverLimitError, ConfigurationError):
        assert issubclass(exc_type, ReproError)


def test_parse_error_with_line_number():
    error = ParseError("bad token", line_number=7)
    assert error.line_number == 7
    assert "line 7" in str(error)
    assert "bad token" in str(error)


def test_parse_error_without_line_number():
    error = ParseError("general failure")
    assert error.line_number is None
    assert str(error) == "general failure"


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise ValidationError("x")
    with pytest.raises(ReproError):
        raise ParseError("y", 1)
