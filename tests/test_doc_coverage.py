"""Meta-test: every public item in the library carries a docstring.

"Public" means: any module under ``repro``, and any class, function
or method whose name does not start with an underscore, defined in
this package (not re-exported from elsewhere).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (item.__doc__ and item.__doc__.strip()):
            missing.append(name)
            continue
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    missing.append(f"{name}.{member_name}")
    assert not missing, (
        f"{module.__name__}: public items without docstrings: {missing}"
    )
