"""Unit tests for the synthetic SOC generator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.soc.complexity import test_complexity as complexity_of
from repro.soc.generator import (
    CoreRanges,
    SocGenerator,
    SocSpec,
    generate_soc,
    random_soc,
)

LOGIC = CoreRanges(
    patterns=(10, 500),
    functional_ios=(8, 120),
    scan_chains=(1, 8),
    scan_lengths=(4, 64),
)
MEMORY = CoreRanges(patterns=(100, 2000), functional_ios=(4, 40))


def _spec(**overrides):
    base = dict(
        name="synth",
        num_logic_cores=6,
        num_memory_cores=3,
        logic=LOGIC,
        memory=MEMORY,
        seed=7,
    )
    base.update(overrides)
    return SocSpec(**base)


class TestRangesValidation:
    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreRanges(patterns=(10, 5), functional_ios=(1, 2))

    def test_zero_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreRanges(patterns=(0, 5), functional_ios=(1, 2))

    def test_zero_ios_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreRanges(patterns=(1, 5), functional_ios=(0, 2))

    def test_has_scan(self):
        assert LOGIC.has_scan
        assert not MEMORY.has_scan


class TestSpecValidation:
    def test_memory_ranges_required(self):
        with pytest.raises(ConfigurationError):
            SocSpec(name="x", num_logic_cores=1, num_memory_cores=1,
                    logic=LOGIC, memory=None)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            SocSpec(name="x", num_logic_cores=0, num_memory_cores=0,
                    logic=LOGIC)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            SocSpec(name="x", num_logic_cores=-1, num_memory_cores=0,
                    logic=LOGIC)


class TestGeneration:
    def test_core_counts(self):
        soc = generate_soc(_spec())
        assert len(soc.logic_cores) == 6
        assert len(soc.memory_cores) == 3

    def test_deterministic(self):
        assert generate_soc(_spec()) == generate_soc(_spec())

    def test_seed_changes_output(self):
        assert generate_soc(_spec()) != generate_soc(_spec(seed=8))

    def test_values_within_ranges(self):
        soc = generate_soc(_spec())
        for core in soc.logic_cores:
            assert LOGIC.patterns[0] <= core.num_patterns <= LOGIC.patterns[1]
            assert (LOGIC.functional_ios[0] <= core.total_terminals
                    <= LOGIC.functional_ios[1])
            assert (LOGIC.scan_chains[0] <= core.num_scan_chains
                    <= LOGIC.scan_chains[1])
            for length in core.scan_chain_lengths:
                assert LOGIC.scan_lengths[0] <= length <= LOGIC.scan_lengths[1]
        for core in soc.memory_cores:
            assert (MEMORY.patterns[0] <= core.num_patterns
                    <= MEMORY.patterns[1])
            assert not core.is_scan_testable

    def test_extremes_attained(self):
        soc = generate_soc(_spec())
        summary = soc.logic_range_summary()
        assert summary.patterns == LOGIC.patterns
        assert summary.functional_ios == LOGIC.functional_ios
        assert summary.scan_chains == LOGIC.scan_chains
        assert summary.scan_lengths == LOGIC.scan_lengths
        memory_summary = soc.memory_range_summary()
        assert memory_summary.patterns == MEMORY.patterns
        assert memory_summary.functional_ios == MEMORY.functional_ios

    def test_calibration_hits_target(self):
        spec = _spec(complexity_target=500.0)
        soc = generate_soc(spec)
        assert abs(complexity_of(soc) - 500.0) / 500.0 < 0.10
        # Calibration must not break the published ranges.
        assert soc.logic_range_summary().patterns == LOGIC.patterns

    def test_unreachable_target_clamps(self):
        spec = _spec(complexity_target=1e12)
        soc = generate_soc(spec)   # should not raise
        assert complexity_of(soc) < 1e12

    def test_logic_only_soc(self):
        spec = SocSpec(name="x", num_logic_cores=3, num_memory_cores=0,
                       logic=LOGIC, seed=1)
        soc = generate_soc(spec)
        assert len(soc) == 3
        assert not soc.memory_cores

    def test_logic_floor_budget_respected(self):
        budget = 5000
        soc = generate_soc(_spec(logic_floor_budget=budget))
        for core in soc.logic_cores:
            floor = core.num_patterns * (core.longest_scan_chain + 1)
            # Cores whose chains were already at the published minimum
            # cannot be capped further; every other core obeys.
            if core.longest_scan_chain > LOGIC.scan_lengths[0]:
                assert floor <= budget

    def test_logic_floor_budget_keeps_ranges(self):
        soc = generate_soc(_spec(logic_floor_budget=5000))
        summary = soc.logic_range_summary()
        assert summary.scan_lengths == LOGIC.scan_lengths
        assert summary.patterns == LOGIC.patterns

    def test_unreachable_floor_budget_rejected(self):
        # Even the min-pattern core cannot carry the max-length chain.
        with pytest.raises(ConfigurationError, match="unreachable"):
            _spec(logic_floor_budget=10)


class TestRandomSoc:
    def test_basic(self):
        soc = random_soc("fuzz", num_cores=8, seed=3)
        assert len(soc) == 8

    def test_deterministic_per_seed(self):
        assert random_soc("f", 5, seed=1) == random_soc("f", 5, seed=1)

    def test_single_core(self):
        soc = random_soc("one", num_cores=1, seed=2)
        assert len(soc) == 1

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            random_soc("bad", num_cores=0, seed=0)
