"""Unit tests for the test-complexity proxy."""

from repro.soc.complexity import BITS_PER_COMPLEXITY_UNIT
from repro.soc.complexity import test_complexity as complexity_of
from repro.soc.core import Core
from repro.soc.soc import Soc


def test_single_core_value():
    core = Core("c", num_patterns=10, num_inputs=3, num_outputs=2,
                scan_chain_lengths=(5,))
    soc = Soc("s", cores=(core,))
    expected = 10 * (5 + 3 + 2) / BITS_PER_COMPLEXITY_UNIT
    assert complexity_of(soc) == expected


def test_additive_over_cores():
    a = Core("a", num_patterns=10, num_inputs=1, num_outputs=1)
    b = Core("b", num_patterns=20, num_inputs=2, num_outputs=2)
    combined = Soc("s", cores=(a, b))
    only_a = Soc("sa", cores=(a,))
    only_b = Soc("sb", cores=(b,))
    assert complexity_of(combined) == (
        complexity_of(only_a) + complexity_of(only_b)
    )


def test_d695_lands_near_its_name(d695):
    # The reason this proxy was adopted (see module docstring).
    assert 600 < complexity_of(d695) < 800


def test_philips_standins_land_near_their_names(p21241, p31108, p93791):
    for soc, target in ((p21241, 21241), (p31108, 31108), (p93791, 93791)):
        assert abs(complexity_of(soc) - target) / target < 0.10
