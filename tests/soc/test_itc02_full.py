"""Unit tests for the original ITC'02 benchmark format."""

import pytest

from repro.exceptions import ParseError
from repro.soc.itc02_full import (
    format_itc02_soc,
    load_itc02_soc,
    parse_itc02_soc,
    write_itc02_soc,
)

SAMPLE = """
SocName demo
TotalModules 3

Module 0
    Level 0
    Inputs 10
    Outputs 20
    Bidirs 0
    TotalTests 0

Module 1
    Level 1
    Inputs 36
    Outputs 39
    Bidirs 2
    ScanChains 4 : 54 53 52 52
    TotalTests 1
    Test 1
        TotalPatterns 105
        ScanUse 1
        TamUse 1

Module 2
    Level 1
    Inputs 8
    Outputs 8
    Bidirs 0
    ScanChains 0
    TotalTests 2
    Test 1
        TotalPatterns 40
        ScanUse 0
        TamUse 1
    Test 2
        TotalPatterns 999
        ScanUse 0
        TamUse 0
"""


class TestParse:
    def test_top_module_excluded(self):
        soc = parse_itc02_soc(SAMPLE)
        assert soc.name == "demo"
        assert len(soc) == 2  # module 0 is the SOC itself

    def test_module_fields(self):
        soc = parse_itc02_soc(SAMPLE)
        module1 = soc.core_by_name("Module1")
        assert module1.num_patterns == 105
        assert module1.num_bidirs == 2
        assert module1.scan_chain_lengths == (54, 53, 52, 52)

    def test_non_tam_tests_skipped(self):
        soc = parse_itc02_soc(SAMPLE)
        module2 = soc.core_by_name("Module2")
        # Test 2 has TamUse 0 -> only the 40 TAM patterns count.
        assert module2.num_patterns == 40

    def test_multiple_tam_tests_summed(self):
        text = SAMPLE.replace("TamUse 0", "TamUse 1")
        soc = parse_itc02_soc(text)
        assert soc.core_by_name("Module2").num_patterns == 40 + 999

    def test_comments_tolerated(self):
        text = SAMPLE.replace(
            "SocName demo", "# header\nSocName demo  // trailing"
        )
        assert parse_itc02_soc(text).name == "demo"

    def test_unknown_keywords_ignored(self):
        text = SAMPLE.replace(
            "TotalTests 1", "PowerBudget 450\nTotalTests 1"
        )
        assert len(parse_itc02_soc(text)) == 2

    def test_missing_socname(self):
        with pytest.raises(ParseError, match="SocName"):
            parse_itc02_soc("Module 0\nLevel 0\n")

    def test_duplicate_socname(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_itc02_soc("SocName a\nSocName b\n")

    def test_totalmodules_mismatch(self):
        text = SAMPLE.replace("TotalModules 3", "TotalModules 7")
        with pytest.raises(ParseError, match="TotalModules"):
            parse_itc02_soc(text)

    def test_scanchains_length_mismatch(self):
        text = SAMPLE.replace(
            "ScanChains 4 : 54 53 52 52", "ScanChains 4 : 54 53"
        )
        with pytest.raises(ParseError, match="lists"):
            parse_itc02_soc(text)

    def test_scanchains_missing_colon(self):
        text = SAMPLE.replace(
            "ScanChains 4 : 54 53 52 52", "ScanChains 4 54 53 52 52"
        )
        with pytest.raises(ParseError, match="':"):
            parse_itc02_soc(text)

    def test_test_outside_module(self):
        with pytest.raises(ParseError, match="outside"):
            parse_itc02_soc("SocName s\nTest 1\n")

    def test_patterns_outside_test(self):
        with pytest.raises(ParseError, match="outside a Test"):
            parse_itc02_soc(
                "SocName s\nModule 1\nLevel 1\nInputs 1\nOutputs 1\n"
                "TotalPatterns 5\n"
            )

    def test_no_testable_modules(self):
        with pytest.raises(ParseError, match="no TAM-testable"):
            parse_itc02_soc("SocName s\nModule 0\nLevel 0\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_itc02_soc("SocName s\nModule x\n")
        assert excinfo.value.line_number == 2


class TestWrite:
    def test_roundtrip_structure(self, d695):
        reparsed = parse_itc02_soc(format_itc02_soc(d695))
        assert reparsed.name == d695.name
        assert len(reparsed) == len(d695)
        # Names become ModuleK; everything else survives.
        for original, parsed in zip(d695.cores, reparsed.cores):
            assert parsed.num_patterns == original.num_patterns
            assert parsed.num_inputs == original.num_inputs
            assert parsed.num_outputs == original.num_outputs
            assert parsed.num_bidirs == original.num_bidirs
            assert parsed.scan_chain_lengths == \
                original.scan_chain_lengths

    def test_file_roundtrip(self, tmp_path, tiny_soc):
        path = tmp_path / "tiny_itc02.soc"
        write_itc02_soc(tiny_soc, path)
        reparsed = load_itc02_soc(path)
        assert len(reparsed) == len(tiny_soc)

    def test_equivalent_optimization_results(self, d695):
        # The round trip preserves everything the optimizer reads, so
        # results must be identical.
        from repro.optimize.co_optimize import co_optimize
        reparsed = parse_itc02_soc(format_itc02_soc(d695))
        original = co_optimize(d695, 16, num_tams=2)
        roundtrip = co_optimize(reparsed, 16, num_tams=2)
        assert original.testing_time == roundtrip.testing_time
        assert original.partition == roundtrip.partition
