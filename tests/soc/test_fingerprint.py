"""Unit tests for core/SOC content hashing."""

from dataclasses import replace

from repro.soc.core import Core
from repro.soc.fingerprint import core_fingerprint, soc_fingerprint
from repro.soc.soc import Soc


class TestCoreFingerprint:
    def test_stable_across_calls(self, scan_core):
        assert core_fingerprint(scan_core) == core_fingerprint(scan_core)

    def test_name_is_not_content(self, scan_core):
        renamed = replace(scan_core, name="other_name")
        assert core_fingerprint(renamed) == core_fingerprint(scan_core)

    def test_every_structural_field_matters(self, scan_core):
        variants = [
            replace(scan_core, num_patterns=scan_core.num_patterns + 1),
            replace(scan_core, num_inputs=scan_core.num_inputs + 1),
            replace(scan_core, num_outputs=scan_core.num_outputs + 1),
            replace(scan_core, num_bidirs=scan_core.num_bidirs + 1),
            replace(scan_core, scan_chain_lengths=(12, 8, 8, 5)),
        ]
        base = core_fingerprint(scan_core)
        digests = [core_fingerprint(variant) for variant in variants]
        assert base not in digests
        assert len(set(digests)) == len(digests)

    def test_identical_structures_share_a_digest(self):
        a = Core("a", num_patterns=5, num_inputs=3, num_outputs=2,
                 scan_chain_lengths=(4, 4))
        b = Core("b", num_patterns=5, num_inputs=3, num_outputs=2,
                 scan_chain_lengths=(4, 4))
        assert core_fingerprint(a) == core_fingerprint(b)


class TestSocFingerprint:
    def test_core_order_matters(self, scan_core, memory_core):
        ab = Soc(name="x", cores=(scan_core, memory_core))
        ba = Soc(name="x", cores=(memory_core, scan_core))
        assert soc_fingerprint(ab) != soc_fingerprint(ba)

    def test_core_mutation_changes_soc_digest(self, tiny_soc):
        mutated = Soc(
            name=tiny_soc.name,
            cores=(
                replace(tiny_soc.cores[0], scan_chain_lengths=(9, 9)),
            ) + tiny_soc.cores[1:],
        )
        assert soc_fingerprint(mutated) != soc_fingerprint(tiny_soc)
