"""Unit tests for repro.soc.core."""

import pytest

from repro.exceptions import ValidationError
from repro.soc.core import Core


class TestConstruction:
    def test_minimal_memory_core(self):
        core = Core("mem", num_patterns=5, num_inputs=3, num_outputs=2)
        assert core.num_scan_chains == 0
        assert not core.is_scan_testable

    def test_scan_core(self):
        core = Core("logic", num_patterns=5, num_inputs=1, num_outputs=1,
                    scan_chain_lengths=(4, 2))
        assert core.is_scan_testable
        assert core.num_scan_chains == 2

    def test_scan_lengths_normalized_to_tuple(self):
        core = Core("c", num_patterns=1, num_inputs=1, num_outputs=0,
                    scan_chain_lengths=[3, 1])
        assert core.scan_chain_lengths == (3, 1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Core("", num_patterns=1, num_inputs=1, num_outputs=1)

    def test_zero_patterns_rejected(self):
        with pytest.raises(ValidationError):
            Core("c", num_patterns=0, num_inputs=1, num_outputs=1)

    def test_negative_terminals_rejected(self):
        with pytest.raises(ValidationError):
            Core("c", num_patterns=1, num_inputs=-1, num_outputs=1)
        with pytest.raises(ValidationError):
            Core("c", num_patterns=1, num_inputs=1, num_outputs=-2)
        with pytest.raises(ValidationError):
            Core("c", num_patterns=1, num_inputs=1, num_outputs=1,
                 num_bidirs=-1)

    def test_zero_length_scan_chain_rejected(self):
        with pytest.raises(ValidationError):
            Core("c", num_patterns=1, num_inputs=1, num_outputs=1,
                 scan_chain_lengths=(4, 0))

    def test_untestable_core_rejected(self):
        with pytest.raises(ValidationError):
            Core("c", num_patterns=1, num_inputs=0, num_outputs=0)

    def test_scan_only_core_allowed(self):
        core = Core("c", num_patterns=1, num_inputs=0, num_outputs=0,
                    scan_chain_lengths=(5,))
        assert core.total_terminals == 0

    def test_frozen(self):
        core = Core("c", num_patterns=1, num_inputs=1, num_outputs=1)
        with pytest.raises(AttributeError):
            core.num_patterns = 2


class TestDerivedQuantities:
    def test_totals(self, scan_core):
        assert scan_core.total_scan_cells == 32
        assert scan_core.longest_scan_chain == 12
        assert scan_core.total_terminals == 12

    def test_bidirs_count_on_both_sides(self, scan_core):
        assert scan_core.num_input_cells == 8    # 6 in + 2 bidir
        assert scan_core.num_output_cells == 6   # 4 out + 2 bidir

    def test_test_data_bits(self):
        core = Core("c", num_patterns=10, num_inputs=3, num_outputs=2,
                    scan_chain_lengths=(5,))
        # 10 * (5 scan + 3 in + 2 out)
        assert core.test_data_bits == 100

    def test_longest_chain_zero_without_scan(self, memory_core):
        assert memory_core.longest_scan_chain == 0
        assert memory_core.total_scan_cells == 0

    def test_describe_mentions_name_and_patterns(self, scan_core):
        text = scan_core.describe()
        assert "scan_core" in text
        assert "10 patterns" in text

    def test_describe_no_scan(self, memory_core):
        assert "no scan" in memory_core.describe()

    def test_hashable(self, scan_core):
        assert {scan_core: 1}[scan_core] == 1

    def test_equality_by_value(self):
        a = Core("c", num_patterns=1, num_inputs=1, num_outputs=1,
                 scan_chain_lengths=(2,))
        b = Core("c", num_patterns=1, num_inputs=1, num_outputs=1,
                 scan_chain_lengths=(2,))
        assert a == b
