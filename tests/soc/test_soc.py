"""Unit tests for repro.soc.soc."""

import pytest

from repro.exceptions import ValidationError
from repro.soc.core import Core
from repro.soc.soc import Soc


def _core(name, scan=(), patterns=10):
    return Core(name, num_patterns=patterns, num_inputs=2, num_outputs=2,
                scan_chain_lengths=scan)


class TestConstruction:
    def test_basic(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        assert len(soc) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Soc("s", cores=())

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Soc("", cores=(_core("a"),))

    def test_duplicate_core_names_rejected(self):
        with pytest.raises(ValidationError):
            Soc("s", cores=(_core("a"), _core("a")))

    def test_cores_normalized_to_tuple(self):
        soc = Soc("s", cores=[_core("a")])
        assert isinstance(soc.cores, tuple)


class TestAccess:
    def test_iteration_preserves_order(self):
        soc = Soc("s", cores=(_core("a"), _core("b"), _core("c")))
        assert [core.name for core in soc] == ["a", "b", "c"]

    def test_getitem(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        assert soc[1].name == "b"

    def test_core_by_name(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        assert soc.core_by_name("b").name == "b"

    def test_core_by_name_missing(self):
        soc = Soc("s", cores=(_core("a"),))
        with pytest.raises(KeyError):
            soc.core_by_name("zz")

    def test_index_of(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        assert soc.index_of("b") == 1
        with pytest.raises(KeyError):
            soc.index_of("zz")


class TestSelectors:
    def test_logic_memory_split(self):
        soc = Soc("s", cores=(_core("logic", scan=(4,)), _core("mem")))
        assert [c.name for c in soc.logic_cores] == ["logic"]
        assert [c.name for c in soc.memory_cores] == ["mem"]

    def test_total_test_data_bits(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        assert soc.total_test_data_bits == sum(
            core.test_data_bits for core in soc
        )


class TestRangeSummary:
    def test_logic_summary(self):
        soc = Soc("s", cores=(
            _core("a", scan=(4, 8), patterns=10),
            _core("b", scan=(2,), patterns=50),
        ))
        summary = soc.logic_range_summary()
        assert summary.num_cores == 2
        assert summary.patterns == (10, 50)
        assert summary.scan_chains == (1, 2)
        assert summary.scan_lengths == (2, 8)

    def test_memory_summary_no_lengths(self):
        soc = Soc("s", cores=(_core("m1"), _core("m2")))
        summary = soc.memory_range_summary()
        assert summary.scan_lengths is None
        assert summary.as_row()["lengths"] == "-"

    def test_summary_none_when_empty(self):
        soc = Soc("s", cores=(_core("m1"),))
        assert soc.logic_range_summary() is None

    def test_as_row_format(self):
        soc = Soc("s", cores=(_core("a", scan=(4,), patterns=7),))
        row = soc.logic_range_summary().as_row()
        assert row["patterns"] == "7-7"
        assert row["cores"] == "1"

    def test_describe_lists_every_core(self):
        soc = Soc("s", cores=(_core("a"), _core("b")))
        text = soc.describe()
        assert "a:" in text and "b:" in text
        assert "2 cores" in text


class TestBenchmarkFixtures:
    def test_d695_composition(self, d695):
        assert len(d695) == 10
        assert len(d695.logic_cores) == 8   # the two ISCAS'85 are comb.
        assert d695.core_by_name("s38417").total_scan_cells == 1636

    def test_p21241_matches_table4(self, p21241):
        logic = p21241.logic_range_summary()
        memory = p21241.memory_range_summary()
        assert logic.num_cores == 22 and memory.num_cores == 6
        assert logic.patterns == (1, 785)
        assert logic.functional_ios == (37, 1197)
        assert logic.scan_chains == (1, 31)
        assert logic.scan_lengths == (1, 400)
        assert memory.patterns == (222, 12324)
        assert memory.functional_ios == (52, 148)

    def test_p31108_matches_table8(self, p31108):
        logic = p31108.logic_range_summary()
        memory = p31108.memory_range_summary()
        assert logic.num_cores == 4 and memory.num_cores == 15
        assert logic.patterns == (210, 745)
        assert logic.scan_lengths == (8, 806)
        assert memory.patterns == (128, 12236)
        assert memory.functional_ios == (11, 87)

    def test_p93791_matches_table14(self, p93791):
        logic = p93791.logic_range_summary()
        memory = p93791.memory_range_summary()
        assert logic.num_cores == 14 and memory.num_cores == 18
        assert logic.patterns == (11, 6127)
        assert logic.scan_chains == (11, 46)
        assert memory.patterns == (42, 3085)
        assert memory.functional_ios == (21, 396)
