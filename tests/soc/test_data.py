"""Unit tests for the benchmark registry."""

import pytest

from repro.soc.data import benchmark_names, get_benchmark


def test_registry_lists_all_four():
    assert benchmark_names() == ["d695", "p21241", "p31108", "p93791"]


@pytest.mark.parametrize("name", ["d695", "p21241", "p31108", "p93791"])
def test_every_benchmark_builds(name):
    soc = get_benchmark(name)
    assert soc.name == name
    assert len(soc) > 0


def test_unknown_name_reports_options():
    with pytest.raises(KeyError, match="d695"):
        get_benchmark("nope")


def test_builds_are_deterministic():
    assert get_benchmark("p93791") == get_benchmark("p93791")


def test_d695_core_order_matches_paper(d695):
    # Assignment vectors in Tables 2/3 index cores in this order.
    assert [core.name for core in d695] == [
        "c6288", "c7552", "s838", "s9234", "s38584",
        "s13207", "s15850", "s5378", "s35932", "s38417",
    ]
