"""Unit tests for the ITC'02-style .soc parser/writer."""

import pytest

from repro.exceptions import ParseError
from repro.soc.core import Core
from repro.soc.itc02 import format_soc, load_soc, parse_soc, write_soc
from repro.soc.soc import Soc

SAMPLE = """
# demo SOC
soc demo
core alpha
    patterns   12
    inputs     3
    outputs    2
    bidirs     1
    scanchains 2 : 8 4
end
core beta
    patterns 5
    inputs 10
    outputs 10
    scanchains 0
end
"""


class TestParse:
    def test_roundtrip_fields(self):
        soc = parse_soc(SAMPLE)
        assert soc.name == "demo"
        alpha = soc.core_by_name("alpha")
        assert alpha.num_patterns == 12
        assert alpha.num_bidirs == 1
        assert alpha.scan_chain_lengths == (8, 4)
        beta = soc.core_by_name("beta")
        assert not beta.is_scan_testable

    def test_comments_and_blank_lines_ignored(self):
        text = "soc s\n\n# comment\ncore c # trailing\npatterns 1\ninputs 1\noutputs 0\nend\n"
        soc = parse_soc(text)
        assert soc.core_by_name("c").num_patterns == 1

    def test_keywords_case_insensitive(self):
        text = "SOC s\nCORE c\nPATTERNS 2\nINPUTS 1\nOUTPUTS 1\nEND\n"
        assert parse_soc(text).name == "s"

    def test_missing_soc_decl(self):
        with pytest.raises(ParseError, match="before 'soc'"):
            parse_soc("core c\npatterns 1\ninputs 1\noutputs 1\nend\n")

    def test_empty_input(self):
        with pytest.raises(ParseError, match="no 'soc'"):
            parse_soc("")

    def test_soc_without_cores(self):
        with pytest.raises(ParseError, match="no cores"):
            parse_soc("soc lonely\n")

    def test_duplicate_soc(self):
        with pytest.raises(ParseError, match="duplicate 'soc'"):
            parse_soc("soc a\nsoc b\n")

    def test_nested_core(self):
        with pytest.raises(ParseError, match="nested 'core'"):
            parse_soc("soc s\ncore a\ncore b\n")

    def test_unclosed_core(self):
        with pytest.raises(ParseError, match="not closed"):
            parse_soc("soc s\ncore a\npatterns 1\ninputs 1\noutputs 1\n")

    def test_end_outside_block(self):
        with pytest.raises(ParseError, match="outside a core block"):
            parse_soc("soc s\nend\n")

    def test_missing_patterns(self):
        with pytest.raises(ParseError, match="missing 'patterns'"):
            parse_soc("soc s\ncore c\ninputs 1\noutputs 1\nend\n")

    def test_unknown_keyword(self):
        with pytest.raises(ParseError, match="unknown keyword"):
            parse_soc("soc s\nfrobnicate 3\n")

    def test_non_integer_value(self):
        with pytest.raises(ParseError, match="expected integer"):
            parse_soc("soc s\ncore c\npatterns many\nend\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_soc("soc s\ncore c\npatterns zero\nend\n")
        assert excinfo.value.line_number == 3
        assert "line 3" in str(excinfo.value)

    def test_scanchain_count_mismatch(self):
        with pytest.raises(ParseError, match="listed"):
            parse_soc(
                "soc s\ncore c\npatterns 1\ninputs 1\noutputs 1\n"
                "scanchains 3 : 1 2\nend\n"
            )

    def test_scanchains_missing_colon(self):
        with pytest.raises(ParseError, match="':"):
            parse_soc(
                "soc s\ncore c\npatterns 1\ninputs 1\noutputs 1\n"
                "scanchains 2 1 2\nend\n"
            )

    def test_scanchains_zero_with_lengths(self):
        with pytest.raises(ParseError, match="takes no lengths"):
            parse_soc(
                "soc s\ncore c\npatterns 1\ninputs 1\noutputs 1\n"
                "scanchains 0 : 1\nend\n"
            )

    def test_attribute_outside_core(self):
        with pytest.raises(ParseError, match="outside a core block"):
            parse_soc("soc s\npatterns 4\n")


class TestWrite:
    def _demo_soc(self):
        return Soc("demo", cores=(
            Core("a", num_patterns=3, num_inputs=2, num_outputs=1,
                 num_bidirs=1, scan_chain_lengths=(7, 3)),
            Core("b", num_patterns=9, num_inputs=5, num_outputs=5),
        ))

    def test_format_then_parse_roundtrip(self):
        soc = self._demo_soc()
        assert parse_soc(format_soc(soc)) == soc

    def test_file_roundtrip(self, tmp_path):
        soc = self._demo_soc()
        path = tmp_path / "demo.soc"
        write_soc(soc, path)
        assert load_soc(path) == soc

    def test_benchmarks_roundtrip(self, d695, p31108):
        for soc in (d695, p31108):
            assert parse_soc(format_soc(soc)) == soc
