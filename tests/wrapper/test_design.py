"""Unit tests for Design_wrapper."""

import pytest

from repro.exceptions import ConfigurationError
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper


class TestScanCores:
    def test_width_one_serializes_everything(self, scan_core):
        design = design_wrapper(scan_core, width=1)
        assert design.used_width == 1
        assert design.scan_in_length == (
            scan_core.total_scan_cells + scan_core.num_input_cells
        )
        assert design.scan_out_length == (
            scan_core.total_scan_cells + scan_core.num_output_cells
        )

    def test_ample_width_reaches_longest_chain(self, scan_core):
        design = design_wrapper(scan_core, width=64)
        # With plenty of width, no wrapper chain need exceed the
        # longest internal chain (12), modulo the cell balancing.
        assert design.scan_in_length <= scan_core.longest_scan_chain + 1
        assert design.used_width <= 64

    def test_docstring_example(self):
        core = Core("toy", num_patterns=10, num_inputs=4, num_outputs=2,
                    scan_chain_lengths=(8, 4, 4))
        design = design_wrapper(core, width=2)
        # BFD: chains {8} and {4,4}; inputs balance to 2+2 -> si=10;
        # outputs 1+1 -> so=9.
        assert design.scan_in_length == 10
        assert design.scan_out_length == 9

    def test_uses_no_more_than_available(self, scan_core):
        for width in range(1, 10):
            design = design_wrapper(scan_core, width)
            assert design.used_width <= width

    def test_reluctance_small_core_wide_bus(self):
        core = Core("small", num_patterns=5, num_inputs=1, num_outputs=1,
                    scan_chain_lengths=(3, 2))
        design = design_wrapper(core, width=32)
        # 2 internal chains + 2 cells can never need 32 wires.
        assert design.used_width <= 4


class TestNonScanCores:
    def test_memory_core_cells_distributed(self, memory_core):
        design = design_wrapper(memory_core, width=4)
        # 20 input cells over 4 chains -> si = 5; 16 outputs -> so = 4.
        assert design.scan_in_length == 5
        assert design.scan_out_length == 4
        assert design.testing_time == (1 + 5) * 500 + 4

    def test_memory_core_width_one(self, memory_core):
        design = design_wrapper(memory_core, width=1)
        assert design.scan_in_length == 20
        assert design.scan_out_length == 16

    def test_width_beyond_cells_saturates(self, memory_core):
        design = design_wrapper(memory_core, width=100)
        assert design.scan_in_length == 1
        assert design.scan_out_length == 1
        assert design.used_width <= 20

    def test_outputs_share_input_chains(self):
        # Reluctance: inputs and outputs coalesce on the same wires
        # rather than claiming separate ones.
        core = Core("io", num_patterns=2, num_inputs=4, num_outputs=4)
        design = design_wrapper(core, width=8)
        assert design.used_width <= 4


class TestProperties:
    def test_monotone_after_running_min(self, scan_core, memory_core,
                                        combinational_core):
        # T(w) monotonized is non-increasing by construction; the raw
        # designs should already be close; here we just sanity check
        # the raw time at w=1 is the worst.
        for core in (scan_core, memory_core, combinational_core):
            t1 = design_wrapper(core, 1).testing_time
            for width in range(2, 12):
                assert design_wrapper(core, width).testing_time <= t1

    def test_d695_all_cores_all_widths_valid(self, d695):
        for core in d695:
            for width in (1, 2, 3, 8, 16):
                design = design_wrapper(core, width)
                assert design.testing_time > 0

    def test_invalid_width(self, scan_core):
        with pytest.raises(ConfigurationError):
            design_wrapper(scan_core, 0)
        with pytest.raises(ConfigurationError):
            design_wrapper(scan_core, -3)
