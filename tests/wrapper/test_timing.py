"""Unit tests for the testing-time formula."""

import pytest

from repro.exceptions import ValidationError
from repro.wrapper.timing import testing_time as compute_time


def test_formula():
    assert compute_time(10, 4, 6) == (1 + 6) * 10 + 4


def test_symmetric_in_si_so():
    assert compute_time(7, 3, 9) == compute_time(7, 9, 3)


def test_zero_scan_pure_capture():
    assert compute_time(5, 0, 0) == 5


def test_one_sided():
    # outputs only: (1 + so) * p + 0
    assert compute_time(4, 0, 10) == 44


def test_single_pattern():
    assert compute_time(1, 8, 8) == 9 + 8


def test_monotone_in_patterns():
    assert compute_time(11, 5, 5) > compute_time(10, 5, 5)


def test_monotone_in_scan_lengths():
    assert compute_time(10, 6, 6) > compute_time(10, 5, 6)


def test_invalid_patterns():
    with pytest.raises(ValidationError):
        compute_time(0, 1, 1)


def test_negative_scan():
    with pytest.raises(ValidationError):
        compute_time(1, -1, 0)
    with pytest.raises(ValidationError):
        compute_time(1, 0, -1)
