"""Unit tests for the cycle-accurate wrapper test simulator."""

import pytest

from repro.soc.core import Core
from repro.wrapper.design import design_wrapper
from repro.wrapper.simulate import simulate_wrapper_test


def simulate(core, width):
    design = design_wrapper(core, width)
    return simulate_wrapper_test(design), design


class TestAgainstFormula:
    def test_scan_core(self, scan_core):
        for width in (1, 2, 3, 6):
            result, design = simulate(scan_core, width)
            assert result.matches(design.testing_time), (
                width, result.total_cycles, design.testing_time
            )

    def test_memory_core(self, memory_core):
        for width in (1, 4, 19, 64):
            result, design = simulate(memory_core, width)
            assert result.matches(design.testing_time)

    def test_combinational_core(self, combinational_core):
        for width in (1, 8, 40):
            result, design = simulate(combinational_core, width)
            assert result.matches(design.testing_time)

    def test_d695_cores(self, d695):
        for core in d695:
            result, design = simulate(core, 8)
            assert result.matches(design.testing_time), core.name

    def test_single_pattern(self):
        core = Core("one", num_patterns=1, num_inputs=3, num_outputs=2,
                    scan_chain_lengths=(5,))
        result, design = simulate(core, 2)
        assert result.matches(design.testing_time)

    def test_output_only_core(self):
        core = Core("out", num_patterns=7, num_inputs=0, num_outputs=9)
        result, design = simulate(core, 3)
        assert result.matches(design.testing_time)

    def test_input_only_core(self):
        core = Core("in", num_patterns=4, num_inputs=9, num_outputs=0)
        result, design = simulate(core, 2)
        assert result.matches(design.testing_time)


class TestConservation:
    def test_all_patterns_applied(self, scan_core):
        result, _ = simulate(scan_core, 3)
        assert result.patterns_applied == scan_core.num_patterns

    def test_stimulus_volume(self, scan_core):
        result, design = simulate(scan_core, 3)
        per_pattern = sum(
            chain.scan_in_length for chain in design.chains
            if not chain.is_empty
        )
        assert result.stimulus_bits_delivered == (
            per_pattern * scan_core.num_patterns
        )

    def test_response_volume(self, scan_core):
        result, design = simulate(scan_core, 3)
        per_pattern = sum(
            chain.scan_out_length for chain in design.chains
            if not chain.is_empty
        )
        assert result.response_bits_observed == (
            per_pattern * scan_core.num_patterns
        )

    def test_wide_bus_still_conserves(self, memory_core):
        result, design = simulate(memory_core, 64)
        assert result.response_bits_observed == (
            memory_core.num_output_cells * memory_core.num_patterns
        )
