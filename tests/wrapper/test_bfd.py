"""Unit tests for the BFD bin-packing primitives."""

import pytest

from repro.exceptions import ConfigurationError
from repro.wrapper.bfd import balance_units, pack_decreasing


class TestPackDecreasing:
    def test_empty(self):
        assert pack_decreasing([], max_bins=4) == []

    def test_single_item(self):
        assert pack_decreasing([5], max_bins=4) == [[0]]

    def test_items_fit_within_longest(self):
        # capacity defaults to max weight = 8: 5+3 fit together.
        bins = pack_decreasing([8, 5, 3], max_bins=3)
        loads = sorted(sum([8, 5, 3][i] for i in b) for b in bins)
        assert loads == [8, 8]

    def test_respects_max_bins(self):
        bins = pack_decreasing([9, 9, 9, 9], max_bins=2)
        assert len(bins) == 2

    def test_overflow_goes_to_least_loaded(self):
        bins = pack_decreasing([10, 10, 4], max_bins=2)
        loads = sorted(sum([10, 10, 4][i] for i in b) for b in bins)
        assert loads == [10, 14]

    def test_reluctance_single_bin_when_possible(self):
        # Everything fits in one bin of capacity 10.
        bins = pack_decreasing([4, 3, 3], max_bins=8, capacity=10)
        assert len(bins) == 1

    def test_every_item_placed_once(self):
        weights = [7, 2, 9, 4, 4, 1, 6]
        bins = pack_decreasing(weights, max_bins=3)
        placed = sorted(i for b in bins for i in b)
        assert placed == list(range(len(weights)))

    def test_explicit_capacity(self):
        bins = pack_decreasing([4, 4, 4], max_bins=3, capacity=8)
        assert len(bins) == 2

    def test_deterministic(self):
        weights = [5, 3, 5, 2, 7]
        assert pack_decreasing(weights, 3) == pack_decreasing(weights, 3)

    def test_invalid_max_bins(self):
        with pytest.raises(ConfigurationError):
            pack_decreasing([1], max_bins=0)

    def test_negative_weight(self):
        with pytest.raises(ConfigurationError):
            pack_decreasing([1, -2], max_bins=2)


class TestBalanceUnits:
    def test_zero_units(self):
        placements, max_load = balance_units([3, 1], 0)
        assert placements == [0, 0]
        assert max_load == 3

    def test_balances_onto_light_bin(self):
        placements, max_load = balance_units([5, 0], 5)
        assert placements == [0, 5]
        assert max_load == 5

    def test_even_spread(self):
        placements, max_load = balance_units([0, 0, 0], 7)
        assert sorted(placements) == [2, 2, 3]
        assert max_load == 3

    def test_optimal_max_load(self):
        # greedy on unit items is optimal: check against brute force.
        initial = [4, 2, 1]
        units = 6
        placements, max_load = balance_units(initial, units)
        assert sum(placements) == units
        best = min(
            max(initial[0] + a, initial[1] + b, initial[2] + units - a - b)
            for a in range(units + 1)
            for b in range(units + 1 - a)
        )
        assert max_load == best

    def test_prefers_used_bins_on_ties(self):
        # bins loads equal; bin 0 used, bin 1 unused: single unit
        # should land on the used bin.
        placements, _ = balance_units([0, 0], 1, used=[True, False])
        assert placements == [1, 0]

    def test_no_bins_with_units(self):
        with pytest.raises(ConfigurationError):
            balance_units([], 3)

    def test_no_bins_no_units(self):
        assert balance_units([], 0) == ([], 0)

    def test_negative_units(self):
        with pytest.raises(ConfigurationError):
            balance_units([1], -1)
