"""Unit tests for the per-core width→time tables."""

import pytest

from repro.exceptions import ConfigurationError
from repro.wrapper.design import design_wrapper
from repro.wrapper.pareto import TimeTable, build_time_tables, times_matrix


class TestTimeTable:
    def test_monotone_non_increasing(self, scan_core):
        table = TimeTable(scan_core, max_width=24)
        times = [table.time(w) for w in range(1, 25)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_never_worse_than_raw_design(self, scan_core):
        table = TimeTable(scan_core, max_width=16)
        for width in range(1, 17):
            assert table.time(width) <= design_wrapper(
                scan_core, width
            ).testing_time

    def test_design_achieves_reported_time(self, scan_core):
        table = TimeTable(scan_core, max_width=16)
        for width in (1, 3, 7, 16):
            assert table.design(width).testing_time == table.time(width)

    def test_design_width_within_budget(self, scan_core):
        table = TimeTable(scan_core, max_width=16)
        for width in range(1, 17):
            assert table.design(width).used_width <= width

    def test_min_time_and_saturation(self, memory_core):
        table = TimeTable(memory_core, max_width=64)
        sat = table.saturation_width
        assert table.time(sat) == table.min_time
        if sat > 1:
            assert table.time(sat - 1) > table.min_time

    def test_pareto_points_strictly_decreasing(self, scan_core):
        table = TimeTable(scan_core, max_width=32)
        points = table.pareto_points()
        widths = [w for w, _ in points]
        times = [t for _, t in points]
        assert widths[0] == 1
        assert widths == sorted(widths)
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_pareto_first_point_is_w1(self, combinational_core):
        table = TimeTable(combinational_core, max_width=8)
        assert table.pareto_points()[0] == (1, table.time(1))

    def test_out_of_range_queries(self, scan_core):
        table = TimeTable(scan_core, max_width=8)
        with pytest.raises(ConfigurationError):
            table.time(0)
        with pytest.raises(ConfigurationError):
            table.time(9)

    def test_invalid_max_width(self, scan_core):
        with pytest.raises(ConfigurationError):
            TimeTable(scan_core, max_width=0)


class TestBuildTables:
    def test_one_table_per_core(self, tiny_soc):
        tables = build_time_tables(tiny_soc, max_width=12)
        assert set(tables) == {core.name for core in tiny_soc}

    def test_times_matrix_shape(self, tiny_soc):
        tables = build_time_tables(tiny_soc, max_width=12)
        table_list = [tables[c.name] for c in tiny_soc]
        matrix = times_matrix(table_list, widths=[4, 8])
        assert len(matrix) == 3
        assert all(len(row) == 2 for row in matrix)
        for row, table in zip(matrix, table_list):
            assert row == [table.time(4), table.time(8)]
