"""Unit tests for WrapperChain / WrapperDesign."""

import pytest

from repro.exceptions import ValidationError
from repro.soc.core import Core
from repro.wrapper.chain import WrapperChain, WrapperDesign


class TestWrapperChain:
    def test_lengths(self):
        chain = WrapperChain(scan_chain_lengths=(4, 2),
                             num_input_cells=3, num_output_cells=1)
        assert chain.scan_cells == 6
        assert chain.scan_in_length == 9
        assert chain.scan_out_length == 7

    def test_empty_flag(self):
        assert WrapperChain().is_empty
        assert not WrapperChain(num_input_cells=1).is_empty
        assert not WrapperChain(scan_chain_lengths=(1,)).is_empty

    def test_negative_cells_rejected(self):
        with pytest.raises(ValidationError):
            WrapperChain(num_input_cells=-1)


class TestWrapperDesign:
    def _core(self):
        return Core("c", num_patterns=10, num_inputs=3, num_outputs=2,
                    scan_chain_lengths=(6, 4))

    def _design(self):
        chains = (
            WrapperChain(scan_chain_lengths=(6,), num_input_cells=1,
                         num_output_cells=1),
            WrapperChain(scan_chain_lengths=(4,), num_input_cells=2,
                         num_output_cells=1),
        )
        return WrapperDesign(core=self._core(), width_available=3,
                             chains=chains)

    def test_si_so(self):
        design = self._design()
        assert design.scan_in_length == 7   # max(6+1, 4+2)
        assert design.scan_out_length == 7  # max(6+1, 4+1)

    def test_used_width_ignores_empty_chains(self):
        design = self._design()
        assert design.used_width == 2

    def test_testing_time_matches_formula(self):
        design = self._design()
        assert design.testing_time == (1 + 7) * 10 + 7

    def test_conservation_scan_chains(self):
        chains = (WrapperChain(scan_chain_lengths=(6, 6)),)
        with pytest.raises(ValidationError, match="scan chains"):
            WrapperDesign(core=self._core(), width_available=2,
                          chains=chains)

    def test_conservation_input_cells(self):
        chains = (
            WrapperChain(scan_chain_lengths=(6, 4), num_input_cells=99,
                         num_output_cells=2),
        )
        with pytest.raises(ValidationError, match="input cells"):
            WrapperDesign(core=self._core(), width_available=2,
                          chains=chains)

    def test_conservation_output_cells(self):
        chains = (
            WrapperChain(scan_chain_lengths=(6, 4), num_input_cells=3,
                         num_output_cells=99),
        )
        with pytest.raises(ValidationError, match="output cells"):
            WrapperDesign(core=self._core(), width_available=2,
                          chains=chains)

    def test_too_many_chains_rejected(self):
        chains = (
            WrapperChain(scan_chain_lengths=(6,), num_input_cells=3,
                         num_output_cells=2),
            WrapperChain(scan_chain_lengths=(4,)),
        )
        with pytest.raises(ValidationError, match="exceed available"):
            WrapperDesign(core=self._core(), width_available=1,
                          chains=chains)

    def test_invalid_width(self):
        with pytest.raises(ValidationError):
            WrapperDesign(core=self._core(), width_available=0, chains=())

    def test_describe(self):
        text = self._design().describe()
        assert "si=7" in text and "so=7" in text
        assert "chain 0" in text
