"""Job-record retention bounds and the cross-restart grid memo."""

import pytest

from repro.api import GridSpec
from repro.engine.batch import BatchJob, BatchRunner
from repro.exceptions import ServiceError
from repro.service.server import ExplorationServer
from repro.service.store import GridMemo


def grid(widths=(8,), num_tams=2):
    return GridSpec.from_axes(["d695"], widths, num_tams=num_tams)


class TestRecordRetention:
    def test_default_keeps_every_record(self, tiny_soc):
        with ExplorationServer(max_workers=1) as server:
            for width in (4, 5, 6):
                record = server.submit(
                    [BatchJob(tiny_soc, width, 2)]
                )
                server.wait(record.job_id, timeout=120)
            info = server.info()
            assert info["jobs"] == 3
            assert info["records_evicted"] == 0

    def test_oldest_terminal_records_are_evicted(self, tiny_soc):
        with ExplorationServer(max_workers=1, max_records=2) as server:
            ids = []
            for width in (4, 5, 6, 7):
                record = server.submit([BatchJob(tiny_soc, width, 2)])
                server.wait(record.job_id, timeout=120)
                ids.append(record.job_id)
            # One more submission triggers eviction of the oldest.
            last = server.submit([BatchJob(tiny_soc, 8, 2)])
            server.wait(last.job_id, timeout=120)
            info = server.info()
            assert info["records_evicted"] >= 2
            with pytest.raises(ServiceError):
                server.status(ids[0])
            # The newest records are still answerable.
            assert server.status(last.job_id)["status"] == "done"

    def test_eviction_drops_stale_memo_entries(self, tiny_soc):
        with ExplorationServer(max_workers=1, max_records=1) as server:
            first = server.submit([BatchJob(tiny_soc, 4, 2)])
            server.wait(first.job_id, timeout=120)
            other = server.submit([BatchJob(tiny_soc, 5, 2)])
            server.wait(other.job_id, timeout=120)
            third = server.submit([BatchJob(tiny_soc, 6, 2)])
            server.wait(third.job_id, timeout=120)
            # The first grid's record was evicted; resubmitting it
            # must re-run (no dangling memo pointer), not crash.
            again = server.submit([BatchJob(tiny_soc, 4, 2)])
            final = server.wait(again.job_id, timeout=120)
            assert final.status == "done"

    def test_no_eviction_while_under_the_bound(self, tiny_soc):
        """Regression: a generous bound must never evict anything."""
        with ExplorationServer(max_workers=1, max_records=10) as server:
            ids = []
            for width in (4, 5, 6):
                record = server.submit([BatchJob(tiny_soc, width, 2)])
                server.wait(record.job_id, timeout=120)
                ids.append(record.job_id)
            assert server.info()["records_evicted"] == 0
            for job_id in ids:
                assert server.status(job_id)["status"] == "done"

    def test_invalid_bound_rejected(self):
        with pytest.raises(ServiceError):
            ExplorationServer(
                runner=BatchRunner(max_workers=1), max_records=0,
            )


class TestPersistedMemo:
    def test_identical_grid_is_cached_across_restart(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = grid(widths=(8, 12))
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as server:
            record = server.submit(spec)
            done = server.wait(record.job_id, timeout=300)
            assert done.status == "done" and not done.cached
            payload_before = server.result_payload(record.job_id)
            assert len(GridMemo(cache_dir / "grid-memo")) == 1

        # A brand-new server process on the same cache directory.
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as reborn:
            replay = reborn.submit(spec)
            assert replay.cached
            assert replay.status == "done"
            assert reborn.result_payload(replay.job_id) == \
                payload_before
            assert reborn.info()["memo_hits"] == 1
            # Events synthesize from the persisted payload.
            events = list(reborn.events(replay.job_id, timeout=30))
            assert len(events) == 2
            assert {event.kind for event in events} == {"point"}

    def test_restart_memo_answers_v1_style_job_lists(
        self, tmp_path, d695
    ):
        """The memo key is canonical content, not the wire format."""
        cache_dir = tmp_path / "cache"
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as server:
            record = server.submit(grid())
            server.wait(record.job_id, timeout=300)
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as reborn:
            replay = reborn.submit([BatchJob(d695, 8, 2)])
            assert replay.cached

    def test_results_object_api_explains_payload_only_records(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as server:
            record = server.submit(grid())
            server.wait(record.job_id, timeout=300)
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as reborn:
            replay = reborn.submit(grid())
            with pytest.raises(ServiceError, match="persisted memo"):
                reborn.results(replay.job_id)

    def test_corrupt_memo_record_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as server:
            record = server.submit(grid())
            server.wait(record.job_id, timeout=300)
        memo = GridMemo(cache_dir / "grid-memo")
        [entry] = memo.entries()
        entry.write_text("{not json")
        with ExplorationServer(
            max_workers=1, cache_dir=cache_dir
        ) as reborn:
            replay = reborn.submit(grid())
            assert not replay.cached  # corrupt entry ignored, re-run
            assert reborn.wait(
                replay.job_id, timeout=300
            ).status == "done"

    def test_without_cache_dir_nothing_is_persisted(self):
        with ExplorationServer(max_workers=1) as server:
            assert server.grid_memo is None
            assert not server.info()["persistent_memo"]


class TestGridMemoStore:
    def test_save_load_round_trip(self, tmp_path):
        memo = GridMemo(tmp_path)
        payload = {"points": [{"soc": "d695"}], "failures": []}
        assert memo.save("abc123", payload, num_jobs=1)
        assert memo.load("abc123") == payload

    def test_key_mismatch_is_a_miss(self, tmp_path):
        memo = GridMemo(tmp_path)
        memo.save("abc123", {"points": [], "failures": []}, num_jobs=0)
        # A record renamed to another key must not answer it.
        (tmp_path / "abc123.json").rename(tmp_path / "zzz999.json")
        assert memo.load("zzz999") is None

    def test_newer_schema_record_is_a_miss_but_survives(self, tmp_path):
        """A rolled-back build must not destroy a newer build's memo."""
        import json

        memo = GridMemo(tmp_path)
        (tmp_path / "abc123.json").write_text(json.dumps({
            "schema": 999, "kind": "grid_memo", "key": "abc123",
            "num_jobs": 1, "points": [], "failures": [],
        }))
        assert memo.load("abc123") is None
        assert (tmp_path / "abc123.json").exists()

    def test_clear_removes_entries(self, tmp_path):
        memo = GridMemo(tmp_path)
        memo.save("k1", {"points": [], "failures": []}, num_jobs=0)
        memo.save("k2", {"points": [], "failures": []}, num_jobs=0)
        assert len(memo) == 2
        assert memo.clear() == 2
        assert len(memo) == 0
