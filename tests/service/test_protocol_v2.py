"""IPC protocol v2 and robustness: versioning, compat, streaming.

Covers the satellite checklist: malformed JSON lines, unknown ops,
unsupported protocol versions, a v1 client against the v2 server,
and a JobEvent streaming smoke test through ServiceClient.
"""

import json
import socket

import pytest

from repro.api import GridSpec, JobEvent, PROTOCOL_VERSION
from repro.engine.batch import BatchJob, BatchRunner
from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.ipc import IPCServer, handle_request
from repro.service.server import ExplorationServer


@pytest.fixture
def exploration():
    with ExplorationServer(max_workers=1) as server:
        yield server


@pytest.fixture
def ipc(exploration):
    server = IPCServer(exploration, port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(ipc):
    host, port = ipc.address
    with ServiceClient(host=host, port=port, timeout=120) as c:
        yield c


@pytest.fixture
def raw_socket(ipc):
    """A bare line-JSON connection, bypassing the typed client."""
    host, port = ipc.address
    sock = socket.create_connection((host, port), timeout=120)
    reader = sock.makefile("rb")
    yield sock, reader
    reader.close()
    sock.close()


def send_line(raw, text):
    sock, reader = raw
    sock.sendall(text.encode("utf-8") + b"\n")
    return json.loads(reader.readline())


class TestVersionNegotiation:
    def test_unsupported_version_is_an_error_response(self, exploration):
        response, stop = handle_request(
            exploration, {"v": 4, "op": "ping"}
        )
        assert not response["ok"]
        assert "unsupported protocol version" in response["error"]
        assert not stop

    def test_bool_version_is_rejected(self, exploration):
        response, _ = handle_request(
            exploration, {"v": True, "op": "ping"}
        )
        assert not response["ok"]

    def test_v2_responses_echo_the_version(self, exploration):
        response, _ = handle_request(exploration, {"v": 2, "op": "ping"})
        assert response["ok"] and response["v"] == 2

    def test_v1_responses_stay_untagged(self, exploration):
        response, _ = handle_request(exploration, {"op": "ping"})
        assert response["ok"] and "v" not in response


class TestRobustness:
    def test_malformed_json_line_keeps_connection_alive(self, raw_socket):
        response = send_line(raw_socket, "{this is not json")
        assert not response["ok"] and "bad request" in response["error"]
        assert send_line(raw_socket, '{"op":"ping"}')["pong"]

    def test_non_object_request_keeps_connection_alive(self, raw_socket):
        response = send_line(raw_socket, '["op", "ping"]')
        assert not response["ok"]
        assert send_line(raw_socket, '{"op":"ping"}')["pong"]

    def test_unknown_op_is_an_error_response(self, raw_socket):
        response = send_line(raw_socket, '{"op":"teleport"}')
        assert not response["ok"] and "unknown op" in response["error"]
        assert send_line(raw_socket, '{"op":"ping"}')["pong"]

    def test_unsupported_version_over_the_wire(self, raw_socket):
        response = send_line(raw_socket, '{"v": 99, "op":"ping"}')
        assert not response["ok"]
        assert "unsupported protocol version" in response["error"]
        assert send_line(raw_socket, '{"op":"ping"}')["pong"]

    def test_invalid_spec_is_rejected_at_the_boundary(self, raw_socket):
        request = {
            "v": 2, "op": "submit",
            "spec": {"schema": 1, "kind": "grid_spec", "socs": [],
                     "points": []},
        }
        response = send_line(raw_socket, json.dumps(request))
        assert not response["ok"]


class TestV1Compat:
    """A v1 client (plain dicts, no `v`) against the v2 server."""

    def test_v1_submit_still_runs_and_answers(self, raw_socket, d695):
        submit = send_line(raw_socket, json.dumps({
            "op": "submit", "socs": ["d695"], "widths": [8],
            "num_tams": 2,
        }))
        assert submit["ok"] and "v" not in submit
        job = submit["job"]
        done = send_line(raw_socket, json.dumps({
            "op": "wait", "job": job, "timeout": 300,
        }))
        assert done["status"] == "done"
        result = send_line(raw_socket, json.dumps({
            "op": "result", "job": job,
        }))
        assert result["ok"] and result["failures"] == []
        [point] = result["points"]
        [reference] = BatchRunner(max_workers=1).run(
            [BatchJob(d695, 8, 2)]
        )
        assert point["testing_time"] == reference.testing_time

    def test_v1_and_v2_submissions_share_one_memo(self, raw_socket):
        v1 = send_line(raw_socket, json.dumps({
            "op": "submit", "socs": ["d695"], "widths": [8],
            "num_tams": 2,
        }))
        send_line(raw_socket, json.dumps({
            "op": "wait", "job": v1["job"], "timeout": 300,
        }))
        grid = GridSpec.from_axes(["d695"], [8], num_tams=2)
        v2 = send_line(raw_socket, json.dumps({
            "v": 2, "op": "submit", "spec": grid.to_dict(),
        }))
        assert v2["ok"] and v2["cached"] and v2["v"] == 2


class TestEventStreaming:
    def test_events_stream_one_line_per_point(self, client):
        job_id = client.submit_grid(
            GridSpec.from_axes(["d695"], [6, 8, 10], num_tams=2)
        )
        events = list(client.events(job_id, timeout=300))
        assert len(events) == 3
        assert [e["index"] for e in events] == [0, 1, 2]
        assert all(e["total"] == 3 for e in events)
        assert all(e["kind"] == "point" for e in events)
        assert all(e["payload"]["soc"] == "d695" for e in events)
        # Typed decoding round-trips each line.
        decoded = [JobEvent.from_dict(e) for e in events]
        assert [e.seq for e in decoded] == [0, 1, 2]
        # The connection still serves regular ops afterwards.
        assert client.ping()["pong"]

    def test_events_resume_from_cursor(self, client):
        job_id = client.submit_grid(
            GridSpec.from_axes(["d695"], [6, 8], num_tams=2)
        )
        list(client.events(job_id, timeout=300))  # run to completion
        tail = list(client.events(job_id, start=1, timeout=60))
        assert [e["index"] for e in tail] == [1]

    def test_failed_points_stream_as_failed_events(self, client):
        job_id = client.submit(
            ["d695"], widths=[8], num_tams=2,
            options={"enumerator": "bogus"},
        )
        [event] = list(client.events(job_id, timeout=300))
        assert event["kind"] == "failed"
        assert event["payload"]["error_type"] == "ConfigurationError"

    def test_events_for_unknown_job_raise(self, client):
        with pytest.raises(ServiceError):
            list(client.events("job-9999", timeout=10))

    def test_cursor_resumes_a_synthesized_stream(self, client):
        """Regression: `from` must work on memo-answered records too."""
        grid = GridSpec.from_axes(["d695"], [6, 8], num_tams=2)
        first = client.submit_grid(grid)
        list(client.events(first, timeout=300))
        cached = client.submit_grid(grid)
        assert client.status(cached)["cached"]
        tail = list(client.events(cached, start=1, timeout=60))
        assert [e["index"] for e in tail] == [1]

    def test_memo_hit_synthesizes_the_stream(self, client):
        grid = GridSpec.from_axes(["d695"], [8], num_tams=2)
        first = client.submit_grid(grid)
        list(client.events(first, timeout=300))
        second = client.submit_grid(grid)
        assert client.status(second)["cached"]
        [event] = list(client.events(second, timeout=60))
        assert event["kind"] == "point"
        assert event["job"] == second


class TestV2SubmitEndToEnd:
    def test_submit_grid_matches_inline_engine(self, client, d695):
        grid = GridSpec.from_axes(["d695"], [8, 12], num_tams=2)
        job_id = client.submit_grid(grid)
        record = client.wait(job_id, timeout=300)
        assert record["status"] == "done"
        result = client.result(job_id)
        reference = BatchRunner(max_workers=1).run(grid.jobs())
        by_width = {p["total_width"]: p for p in result["points"]}
        for point in reference:
            assert by_width[point.total_width]["testing_time"] == \
                point.testing_time
