"""The service's search surface: incumbent streaming and health.

A ``mode="search"`` grid point streams its convergence trail —
``incumbent`` events, one per strict improvement, before the point's
terminal event — and the server's ``info()`` exposes the search
counters the engine posted.
"""

import pytest

from repro.api.specs import GridSpec
from repro.obs.report import format_event_line
from repro.service.server import ExplorationServer

SEARCH_OPTIONS = {
    "mode": "search",
    "search_strategy": "ga",
    "seed": 7,
    "eval_budget": 1200,
    "time_budget": 30.0,
}


def search_grid(widths=(16,)):
    return GridSpec.from_axes(
        socs=["d695"], widths=list(widths), num_tams=(1, 2, 3),
        options=SEARCH_OPTIONS,
    )


@pytest.fixture
def server():
    with ExplorationServer(max_workers=1) as srv:
        yield srv


class TestIncumbentStream:
    def test_trail_precedes_the_point_event(self, server):
        record = server.submit(search_grid())
        events = list(server.events(record.job_id, timeout=120))
        kinds = [event.kind for event in events]
        assert kinds[-1] == "point"
        incumbents = events[:-1]
        assert incumbents, "a search always improves at least once"
        assert all(
            event.kind == "incumbent" for event in incumbents
        )

    def test_seq_is_the_append_position(self, server):
        record = server.submit(search_grid())
        events = list(server.events(record.job_id, timeout=120))
        assert [event.seq for event in events] == list(
            range(len(events))
        )
        # The `from` cursor resumes mid-trail without duplication.
        resumed = list(
            server.events(record.job_id, start=1, timeout=120)
        )
        assert [event.seq for event in resumed] == [
            event.seq for event in events[1:]
        ]

    def test_payload_carries_the_convergence_record(self, server):
        record = server.submit(search_grid())
        events = list(server.events(record.job_id, timeout=120))
        trail = [
            event.payload for event in events
            if event.kind == "incumbent"
        ]
        times = [entry["time"] for entry in trail]
        assert times == sorted(times, reverse=True)
        for entry in trail:
            assert entry["soc"] == "d695"
            assert entry["gap"] == pytest.approx(
                entry["time"] / entry["bound"] - 1.0
            )
        # The terminal point matches the trail's floor or improves on
        # it (the exact polish may beat the heuristic incumbent).
        point = events[-1].payload
        assert point["testing_time"] <= times[-1]
        assert point["mode"] == "search"
        assert point["seed"] == 7

    def test_incumbent_line_rendering(self, server):
        record = server.submit(search_grid())
        events = list(server.events(record.job_id, timeout=120))
        line, failed = format_event_line(events[0].to_dict())
        assert not failed
        assert "incumbent" in line and "gap=" in line


class TestSearchHealth:
    def test_info_exposes_search_counters(self, server):
        record = server.submit(search_grid())
        server.wait(record.job_id, timeout=120)
        search = server.info()["search"]
        assert search["points"] == 1
        assert search["evals"] == 1200
        assert search["improvements"] >= 1
        # islands_run counts *fanned* islands; an inline server runs
        # them inside the point (the pooled count is asserted by the
        # engine's worker-identity tests).
        assert search["islands_run"] == 0
        assert search["last_gap"] >= 0.0

    def test_exact_grids_stream_without_incumbents(self, server):
        spec = GridSpec.from_axes(
            socs=["d695"], widths=[8], num_tams=2,
        )
        record = server.submit(spec)
        events = list(server.events(record.job_id, timeout=120))
        assert [event.kind for event in events] == ["point"]
        assert server.info()["search"]["points"] == 0
