"""End-to-end: `repro-tam serve` as a real subprocess, driven by the
Python client — the same flow the CI service-smoke job runs."""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.batch import BatchJob, BatchRunner
from repro.service.client import ServiceClient

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def served_port(tmp_path):
    """A `repro-tam serve` subprocess; yields its bound port."""
    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1",
            "--port-file", str(port_file),
            "--cache-dir", str(tmp_path / "tables"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        while not port_file.exists():
            if proc.poll() is not None:
                pytest.fail(
                    f"serve exited early:\n{proc.stdout.read()}"
                )
            if time.monotonic() > deadline:
                pytest.fail("serve never published its port")
            time.sleep(0.05)
        yield int(port_file.read_text().strip())
    finally:
        if proc.poll() is None:
            proc.terminate()
        proc.wait(timeout=10)


def test_serve_submit_shutdown_round_trip(served_port, d695):
    with ServiceClient(port=served_port, timeout=300) as client:
        assert client.ping()["pong"]

        job = client.submit(["d695"], widths=[8, 12], num_tams=2)
        record = client.wait(job, timeout=300)
        assert record["status"] == "done"
        result = client.result(job)
        assert result["failures"] == []

        # The service's answer equals the in-process engine's.
        reference = BatchRunner(max_workers=1).run([
            BatchJob(d695, 8, 2), BatchJob(d695, 12, 2),
        ])
        by_width = {p["total_width"]: p for p in result["points"]}
        for point in reference:
            assert by_width[point.total_width]["testing_time"] \
                == point.testing_time

        # Identical resubmission: answered from memo, marked cached.
        again = client.submit(["d695"], widths=[8, 12], num_tams=2)
        status = client.status(again)
        assert status["cached"] and status["status"] == "done"

        client.shutdown()
