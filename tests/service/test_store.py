"""Round-trip and invalidation tests for the persistent table store."""

from dataclasses import replace

import pytest

import repro.wrapper.pareto as pareto
from repro.engine.cache import WrapperTableCache
from repro.service.store import TableStore
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable


@pytest.fixture
def store(tmp_path):
    return TableStore(tmp_path / "tables")


class TestRoundTrip:
    def test_persist_reload_is_bit_identical(self, scan_core, store):
        built = TimeTable(scan_core, 9)
        assert store.save(built)
        loaded = store.load(scan_core)
        assert loaded is not None
        assert loaded._times == built._times
        assert loaded._designs == built._designs
        assert loaded.max_width == built.max_width
        assert loaded.pareto_points() == built.pareto_points()

    def test_reload_then_extend_matches_fresh_build(
        self, tiny_soc, store
    ):
        """persist → reload → extend_to a wider budget → identical."""
        for core in tiny_soc.cores:
            store.save(TimeTable(core, 5))
        for core in tiny_soc.cores:
            reloaded = store.load(core)
            reloaded.extend_to(11)
            fresh = TimeTable(core, 11)
            assert reloaded._times == fresh._times
            assert reloaded._designs == fresh._designs

    def test_fetch_extends_and_repersists(self, scan_core, store):
        store.save(TimeTable(scan_core, 4))
        table = store.fetch(scan_core, 10)
        assert table.max_width == 10
        assert store.stored_width(scan_core) == 10

    def test_miss_on_empty_store(self, scan_core, store):
        assert store.load(scan_core) is None
        assert store.stored_width(scan_core) == 0
        assert len(store) == 0

    def test_tables_covers_whole_soc(self, tiny_soc, store):
        tables = store.tables(tiny_soc, 6)
        assert set(tables) == {core.name for core in tiny_soc.cores}
        assert all(t.max_width == 6 for t in tables.values())
        assert store.load(tiny_soc.cores[0]) is not None


class TestInvalidation:
    def test_scan_chain_mutation_misses_only_that_core(self, tiny_soc, store):
        for core in tiny_soc.cores:
            store.save(TimeTable(core, 6))
        mutated_core = replace(
            tiny_soc.cores[0], scan_chain_lengths=(12, 8, 8, 5)
        )
        mutated = Soc(
            name=tiny_soc.name,
            cores=(mutated_core,) + tiny_soc.cores[1:],
        )
        hits = {
            core.name: store.load(core) is not None
            for core in mutated.cores
        }
        assert hits[mutated_core.name] is False
        others = [core.name for core in mutated.cores[1:]]
        assert all(hits[name] for name in others)

    def test_corrupt_record_is_a_miss(self, scan_core, store):
        store.save(TimeTable(scan_core, 5))
        store.path_for(scan_core).write_text("{not json")
        assert store.load(scan_core) is None
        assert store.stored_width(scan_core) == 0

    def test_tampered_staircase_is_a_miss(self, scan_core, store):
        store.save(TimeTable(scan_core, 5))
        path = store.path_for(scan_core)
        # Invalidate the record structurally: no width can be covered
        # when the staircase claims to end before it starts.
        path.write_text(path.read_text().replace('"max_width": 5',
                                                 '"max_width": 0'))
        assert store.load(scan_core) is None

    def test_save_never_narrows(self, scan_core, store):
        assert store.save(TimeTable(scan_core, 8))
        assert not store.save(TimeTable(scan_core, 3))
        assert store.stored_width(scan_core) == 8

    def test_clear_empties_the_store(self, tiny_soc, store):
        store.tables(tiny_soc, 4)
        assert len(store) > 0
        removed = store.clear()
        assert removed > 0
        assert len(store) == 0


class TestStoreBackedCache:
    def test_warm_cache_pays_zero_designs(
        self, tiny_soc, store, monkeypatch
    ):
        WrapperTableCache(tiny_soc, store=store).tables(7)

        calls = []
        original = pareto.design_wrapper

        def counting(core, width):
            calls.append((core.name, width))
            return original(core, width)

        monkeypatch.setattr(pareto, "design_wrapper", counting)
        warm = WrapperTableCache(tiny_soc, store=store)
        tables = warm.tables(7)
        assert calls == []
        assert warm.design_calls() == 0
        for core in tiny_soc.cores:
            fresh = TimeTable(core, 7)
            assert tables[core.name]._times == fresh._times
            assert tables[core.name]._designs == fresh._designs

    def test_partially_warm_cache_pays_only_the_extension(
        self, tiny_soc, store, monkeypatch
    ):
        WrapperTableCache(tiny_soc, store=store).tables(4)

        calls = []
        original = pareto.design_wrapper

        def counting(core, width):
            calls.append((core.name, width))
            return original(core, width)

        monkeypatch.setattr(pareto, "design_wrapper", counting)
        warm = WrapperTableCache(tiny_soc, store=store)
        warm.tables(9)
        expected = {
            (core.name, width)
            for core in tiny_soc.cores
            for width in range(5, 10)
        }
        assert set(calls) == expected
        assert len(calls) == len(expected)
        assert warm.design_calls() == len(expected)
        # ...and the wider coverage was persisted back.
        assert all(
            store.stored_width(core) == 9 for core in tiny_soc.cores
        )


class TestMixedWidthStoreLoads:
    """Regression: store entries at unequal widths must not leave the
    cache claiming coverage some tables don't have."""

    def test_one_prewidened_core_does_not_mask_the_rest(
        self, tiny_soc, store
    ):
        # One core persisted much wider than the others will load at.
        store.save(TimeTable(tiny_soc.cores[0], 16))
        cache = WrapperTableCache(tiny_soc, store=store)
        cache.tables(4)
        # The guaranteed coverage is what *every* table answers.
        assert cache.max_width == 4
        tables = cache.tables(9)
        for core in tiny_soc.cores:
            assert tables[core.name].max_width >= 9
            assert tables[core.name].time(9) == \
                TimeTable(core, 9).time(9)

    def test_design_calls_stay_honest_with_mixed_loads(
        self, tiny_soc, store
    ):
        store.save(TimeTable(tiny_soc.cores[0], 16))
        cache = WrapperTableCache(tiny_soc, store=store)
        cache.tables(6)
        cold_cores = tiny_soc.cores[1:]
        assert cache.design_calls() == 6 * len(cold_cores)


class TestSelfRepair:
    """A record load() rejects must never block save() from fixing it."""

    def test_invalid_body_is_discarded_and_resaved(self, scan_core, store):
        store.save(TimeTable(scan_core, 8))
        path = store.path_for(scan_core)
        # Healthy-looking header, body load() rejects (schema bump).
        path.write_text(path.read_text().replace('"schema": 1',
                                                 '"schema": 99'))
        fresh_store = TableStore(store.directory)  # no warm width cache
        assert fresh_store.load(scan_core) is None
        assert not path.exists()  # the bad record was discarded...
        assert fresh_store.save(TimeTable(scan_core, 8))  # ...and repaired
        assert fresh_store.stored_width(scan_core) == 8

    def test_store_backed_cache_repairs_corrupt_entries(
        self, tiny_soc, store
    ):
        WrapperTableCache(tiny_soc, store=store).tables(5)
        victim = store.path_for(tiny_soc.cores[0])
        victim.write_text("{broken")
        fresh_store = TableStore(store.directory)
        WrapperTableCache(tiny_soc, store=fresh_store).tables(5)
        assert fresh_store.stored_width(tiny_soc.cores[0]) == 5


class TestQuarantine:
    """Corrupt entries are renamed to ``*.bad``, never served again."""

    def test_truncated_record_is_quarantined_and_rebuilt(
        self, scan_core, store
    ):
        store.save(TimeTable(scan_core, 6))
        path = store.path_for(scan_core)
        # Deliberate truncation: the torn-write artifact quarantine
        # exists for.
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        fresh = TableStore(store.directory)
        assert fresh.load(scan_core) is None  # miss, not an error
        bad = path.with_name(path.name + ".bad")
        assert bad.exists() and not path.exists()
        # The rebuild repairs the entry; the forensic copy stays.
        assert fresh.save(TimeTable(scan_core, 6))
        assert fresh.load(scan_core) is not None
        assert bad.exists()

    def test_quarantine_is_counted(self, scan_core, store):
        from repro.obs import REGISTRY

        store.save(TimeTable(scan_core, 5))
        store.path_for(scan_core).write_text("{torn")
        before = REGISTRY.snapshot().counter("store.quarantined")
        assert TableStore(store.directory).load(scan_core) is None
        after = REGISTRY.snapshot().counter("store.quarantined")
        assert after == before + 1

    def test_requarantine_replaces_the_previous_bad_copy(
        self, scan_core, store
    ):
        # Two corruption rounds: the second rename lands on an
        # existing .bad file and must replace it, not fail.
        for _ in range(2):
            fresh = TableStore(store.directory)
            fresh.save(TimeTable(scan_core, 5))
            fresh.path_for(scan_core).write_text("{torn")
            assert TableStore(store.directory).load(scan_core) is None
        path = store.path_for(scan_core)
        assert path.with_name(path.name + ".bad").exists()

    def test_grid_memo_quarantines_corrupt_entries(self, tmp_path):
        from repro.service.store import GridMemo

        memo = GridMemo(tmp_path / "grid-memo")
        memo.save("abc123", {"points": [], "failures": []}, num_jobs=0)
        entry = memo.path_for("abc123")
        raw = entry.read_text()
        entry.write_text(raw[: len(raw) // 2])
        assert memo.load("abc123") is None
        assert entry.with_name(entry.name + ".bad").exists()
        # Saving again repairs the entry in place.
        assert memo.save(
            "abc123", {"points": [], "failures": []}, num_jobs=0
        )
        assert memo.load("abc123") is not None
