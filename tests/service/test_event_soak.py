"""Event-stream soak: many concurrent consumers, one flaky one.

N consumers follow the same job's v2 ``events`` stream concurrently
while the grid runs; one of them is deliberately flaky — it kills its
own socket after every delivered event and relies on
``reconnect=True`` to resume at the cursor.  Every consumer must see
the *identical ordered* event sequence, and the finished job must
publish one final run-level :class:`~repro.obs.MetricsSnapshot`
covering the whole grid.
"""

import socket
import threading

import pytest

from repro.obs import MetricsSnapshot
from repro.service.client import ServiceClient
from repro.service.ipc import IPCServer
from repro.service.server import ExplorationServer

GRID = dict(socs=["d695"], widths=[6, 8, 10, 12], num_tams=2)
CONSUMERS = 4


@pytest.fixture
def ipc():
    with ExplorationServer(max_workers=1) as exploration:
        server = IPCServer(exploration, port=0).start()
        yield server
        server.stop()


def consume(ipc, job_id, flaky=False):
    host, port = ipc.address
    events = []
    with ServiceClient(host=host, port=port, timeout=120) as client:
        for event in client.events(
            job_id, timeout=120, reconnect=flaky
        ):
            events.append(event)
            if flaky:
                # Injected drop: the reconnect path must resume at
                # the cursor with no gaps and no replays.
                try:
                    client._sock.shutdown(socket.SHUT_RDWR)
                except OSError:  # pragma: no cover - already gone
                    pass
    return events


def test_concurrent_consumers_see_one_identical_stream(ipc):
    host, port = ipc.address
    with ServiceClient(host=host, port=port, timeout=120) as client:
        job_id = client.submit(**GRID)

    streams = [None] * CONSUMERS

    def run(slot):
        streams[slot] = consume(ipc, job_id, flaky=(slot == 0))

    threads = [
        threading.Thread(target=run, args=(slot,))
        for slot in range(CONSUMERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive()

    reference = streams[0]
    assert [event["seq"] for event in reference] == [0, 1, 2, 3]
    assert [event["kind"] for event in reference] == ["point"] * 4
    for stream in streams[1:]:
        # Identical ordered sequences — same events, same order,
        # same payloads, drops or not.
        assert stream == reference

    # Every point event carries its own metrics delta in the
    # free-form payload (the envelope field set is untouched).
    for event in reference:
        point_metrics = MetricsSnapshot.from_dict(
            event["payload"]["metrics"]
        )
        assert point_metrics.counter("sweep.points") == 1

    # The finished job publishes one final run-level snapshot
    # covering the whole grid.
    with ServiceClient(host=host, port=port, timeout=120) as client:
        status = client.wait(job_id, timeout=120)
    assert status["status"] == "done"
    final = MetricsSnapshot.from_dict(status["metrics"])
    assert final.counter("sweep.points") == 4
    assert final.counter("sweep.partitions_completed") > 0
