"""Unit tests for the in-process exploration job server."""

import pytest

from repro.engine.batch import BatchJob, BatchRunner, FailedPoint
from repro.exceptions import ServiceError
from repro.service.server import ExplorationServer


@pytest.fixture
def server():
    """An inline-execution server, shut down after the test."""
    with ExplorationServer(max_workers=1) as srv:
        yield srv


def grid(soc, widths=(4, 6), num_tams=2, **options):
    return [BatchJob(soc, w, num_tams, options=options) for w in widths]


class TestJobLifecycle:
    def test_submit_runs_and_matches_inline_runner(self, tiny_soc, server):
        record = server.submit(grid(tiny_soc))
        done = server.wait(record.job_id, timeout=120)
        assert done.status == "done"
        reference = BatchRunner(max_workers=1).run(grid(tiny_soc))
        assert server.results(record.job_id) == reference

    def test_status_snapshot_counts(self, tiny_soc, server):
        record = server.submit(grid(tiny_soc))
        server.wait(record.job_id, timeout=120)
        snapshot = server.status(record.job_id)
        assert snapshot["status"] == "done"
        assert snapshot["num_points"] == 2
        assert snapshot["num_failures"] == 0
        assert not snapshot["cached"]

    def test_unknown_job_raises(self, server):
        with pytest.raises(ServiceError):
            server.status("job-9999")
        with pytest.raises(ServiceError):
            server.results("job-9999")

    def test_results_before_done_raise(self, tiny_soc, server):
        record = server.submit(grid(tiny_soc))
        server.wait(record.job_id, timeout=120)
        # A fresh, never-run id fails cleanly even when others are done.
        with pytest.raises(ServiceError):
            server.results("job-0042")

    def test_empty_submission_rejected(self, server):
        with pytest.raises(ServiceError):
            server.submit([])


class TestMemoization:
    def test_identical_grid_is_answered_without_rerunning(
        self, tiny_soc, server, monkeypatch
    ):
        first = server.submit(grid(tiny_soc))
        server.wait(first.job_id, timeout=120)

        runs = []
        original = server.runner.run
        monkeypatch.setattr(
            server.runner, "run",
            lambda jobs: runs.append(len(jobs)) or original(jobs),
        )
        second = server.submit(grid(tiny_soc))
        assert second.cached
        assert second.status == "done"
        assert second.job_id != first.job_id
        assert runs == []  # the runner was never touched
        assert server.results(second.job_id) == \
            server.results(first.job_id)
        assert server.info()["memo_hits"] == 1

    def test_different_grid_is_not_memoized(self, tiny_soc, server):
        first = server.submit(grid(tiny_soc))
        server.wait(first.job_id, timeout=120)
        other = server.submit(grid(tiny_soc, widths=(4, 7)))
        assert not other.cached
        assert server.wait(other.job_id, timeout=120).status == "done"

    def test_memo_survives_across_clients_by_content(self, tiny_soc, server):
        """Equality is by job content, not object identity."""
        first = server.submit(grid(tiny_soc))
        server.wait(first.job_id, timeout=120)
        rebuilt = [
            BatchJob(tiny_soc, w, 2, options={}) for w in (4, 6)
        ]
        assert server.submit(rebuilt).cached


class TestFaultSurfacing:
    def test_failed_points_are_structured_not_fatal(
        self, tiny_soc, server
    ):
        bad = grid(tiny_soc, widths=(4,), enumerator="bogus")
        good = grid(tiny_soc, widths=(6,))
        record = server.submit(bad + good)
        done = server.wait(record.job_id, timeout=120)
        assert done.status == "done"
        results = server.results(record.job_id)
        assert isinstance(results[0], FailedPoint)
        assert results[0].error_type == "ConfigurationError"
        assert not isinstance(results[1], FailedPoint)
        snapshot = server.status(record.job_id)
        assert snapshot["num_failures"] == 1
        assert snapshot["num_points"] == 1


class TestCancellation:
    def test_cancel_queued_job(self, tiny_soc):
        # A server whose dispatcher is busy on a slow job keeps the
        # next submission queued long enough to cancel it.
        with ExplorationServer(max_workers=1) as server:
            slow = server.submit(grid(tiny_soc, widths=(4, 5, 6, 7, 8)))
            victim = server.submit(grid(tiny_soc, widths=(9,)))
            cancelled = server.cancel(victim.job_id)
            final = server.wait(victim.job_id, timeout=120)
            if cancelled:
                assert final.status == "cancelled"
            else:  # the dispatcher won the race; it must have run it
                assert final.status in ("running", "done")
            server.wait(slow.job_id, timeout=300)

    def test_cancel_finished_job_returns_false(self, tiny_soc, server):
        record = server.submit(grid(tiny_soc, widths=(4,)))
        server.wait(record.job_id, timeout=120)
        assert server.cancel(record.job_id) is False

    def test_cancel_unknown_job_raises(self, server):
        with pytest.raises(ServiceError):
            server.cancel("job-7777")


class TestPersistentPool:
    def test_two_grids_share_one_pool(self, tiny_soc):
        with ExplorationServer(max_workers=2) as server:
            first = server.submit(grid(tiny_soc, widths=(4, 5)))
            server.wait(first.job_id, timeout=300)
            second = server.submit(grid(tiny_soc, widths=(6, 7)))
            server.wait(second.job_id, timeout=300)
            assert server.info()["pools_started"] == 1


class TestFailedGridsAreNotMemoized:
    def test_resubmission_of_failed_grid_re_executes(self, tiny_soc, server):
        bad = grid(tiny_soc, widths=(4,), enumerator="bogus")
        first = server.submit(bad)
        server.wait(first.job_id, timeout=120)
        again = server.submit(bad)
        assert not again.cached  # transient failures must be retryable
        assert server.wait(again.job_id, timeout=120).status == "done"


class TestShutdownUnblocksWaiters:
    def test_queued_jobs_are_cancelled_on_shutdown(self, tiny_soc, p93791):
        import threading
        import time

        server = ExplorationServer(max_workers=1)
        # A grid slow enough (seconds on the big SOC) that shutdown
        # lands while it is still running.
        busy = server.submit(grid(p93791, widths=(16, 20, 24)))
        deadline = time.monotonic() + 60
        while server.status(busy.job_id)["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        queued = server.submit(grid(tiny_soc, widths=(8,)))
        seen = {}

        def waiter():
            seen["record"] = server.wait(queued.job_id, timeout=120)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        server.shutdown(wait=True)
        thread.join(timeout=120)
        assert not thread.is_alive(), "wait() never woke after shutdown"
        assert seen["record"].is_terminal
        assert server.status(queued.job_id)["status"] == "cancelled"
        # The running grid was allowed to finish.
        assert server.status(busy.job_id)["status"] == "done"
