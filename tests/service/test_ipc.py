"""Protocol tests: JSON IPC dispatch, socket server, Python client."""

import time

import pytest

from repro.engine.batch import BatchJob, BatchRunner
from repro.exceptions import ReproError, ServiceError
from repro.service.client import ServiceClient, run_grid_remotely
from repro.service.ipc import IPCServer, handle_request, jobs_from_request
from repro.service.server import ExplorationServer


@pytest.fixture
def exploration():
    with ExplorationServer(max_workers=1) as server:
        yield server


@pytest.fixture
def ipc(exploration):
    server = IPCServer(exploration, port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(ipc):
    host, port = ipc.address
    with ServiceClient(host=host, port=port, timeout=120) as c:
        yield c


class TestJobsFromRequest:
    def test_mirrors_batch_cli_grid(self):
        jobs = jobs_from_request({
            "socs": ["d695"], "widths": [8, 12], "num_tams": 2,
        })
        assert [(j.soc.name, j.total_width, j.num_tams) for j in jobs] \
            == [("d695", 8, 2), ("d695", 12, 2)]

    def test_bmax_expands_to_npaw_counts(self):
        jobs = jobs_from_request({
            "socs": ["d695"], "widths": [8], "bmax": 3,
        })
        assert jobs[0].num_tams == (1, 2, 3)

    def test_count_list_is_frozen(self):
        jobs = jobs_from_request({
            "socs": ["d695"], "widths": [8], "num_tams": [1, 2],
        })
        assert jobs[0].num_tams == (1, 2)

    def test_options_are_forwarded(self):
        jobs = jobs_from_request({
            "socs": ["d695"], "widths": [8], "num_tams": 2,
            "options": {"polish": False},
        })
        assert jobs[0].options_dict() == {"polish": False}

    @pytest.mark.parametrize("request_body", [
        {"widths": [8]},
        {"socs": ["d695"]},
        {"socs": [], "widths": [8]},
        {"socs": ["d695"], "widths": []},
        {"socs": ["no_such_soc"], "widths": [8]},
        {"socs": ["d695"], "widths": [8], "options": "polish"},
    ])
    def test_bad_requests_raise(self, request_body):
        with pytest.raises(ReproError):
            jobs_from_request(request_body)


class TestDispatch:
    """handle_request drives the server without any sockets."""

    def test_ping(self, exploration):
        response, stop = handle_request(exploration, {"op": "ping"})
        assert response["ok"] and response["pong"] and not stop

    def test_unknown_op_is_an_error_response(self, exploration):
        response, stop = handle_request(exploration, {"op": "nope"})
        assert not response["ok"] and "unknown op" in response["error"]
        assert not stop

    def test_unknown_job_is_an_error_response(self, exploration):
        response, _ = handle_request(
            exploration, {"op": "status", "job": "job-1234"}
        )
        assert not response["ok"]

    def test_shutdown_op_signals_stop(self, exploration):
        response, stop = handle_request(exploration, {"op": "shutdown"})
        assert response["ok"] and stop


class TestClientRoundTrip:
    def test_submit_wait_result_matches_inline_engine(
        self, client, d695
    ):
        job_id = client.submit(["d695"], widths=[8, 12], num_tams=2)
        record = client.wait(job_id, timeout=300)
        assert record["status"] == "done"
        result = client.result(job_id)
        assert result["failures"] == []

        reference = BatchRunner(max_workers=1).run([
            BatchJob(d695, 8, 2), BatchJob(d695, 12, 2),
        ])
        by_width = {p["total_width"]: p for p in result["points"]}
        for point in reference:
            remote = by_width[point.total_width]
            assert remote["testing_time"] == point.testing_time
            assert tuple(remote["partition"]) == point.partition
            assert remote["soc"] == "d695"

    def test_second_identical_submission_is_cached(self, client):
        first = client.submit(["d695"], widths=[8], num_tams=2)
        client.wait(first, timeout=300)
        second = client.submit(["d695"], widths=[8], num_tams=2)
        status = client.status(second)
        assert status["cached"] and status["status"] == "done"
        assert client.result(second)["points"] == \
            client.result(first)["points"]

    def test_failures_are_reported_per_point(self, client):
        job_id = client.submit(
            ["d695"], widths=[8], num_tams=2,
            options={"enumerator": "bogus"},
        )
        client.wait(job_id, timeout=300)
        result = client.result(job_id)
        assert result["points"] == []
        [failure] = result["failures"]
        assert failure["error_type"] == "ConfigurationError"
        assert failure["soc"] == "d695"

    def test_server_side_errors_raise_service_error(self, client):
        with pytest.raises(ServiceError):
            client.status("job-9999")
        with pytest.raises(ServiceError):
            client.submit(["no_such_soc"], widths=[8])

    def test_run_grid_remotely_one_shot(self, client):
        result = run_grid_remotely(
            client, ["d695"], widths=[6], num_tams=2, timeout=300,
        )
        assert len(result["points"]) == 1

    def test_connection_refused_raises_service_error(self):
        with pytest.raises(ServiceError):
            ServiceClient(port=1, timeout=0.5)


class TestShutdownOp:
    def test_shutdown_stops_listener_and_service(self, tiny_soc):
        exploration = ExplorationServer(max_workers=1)
        ipc = IPCServer(exploration, port=0).start()
        host, port = ipc.address
        with ServiceClient(host=host, port=port, timeout=60) as client:
            client.shutdown()
        # A fresh connection must now fail: the listener is gone.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                probe = ServiceClient(host=host, port=port, timeout=0.2)
            except ServiceError:
                break
            probe.close()
            time.sleep(0.05)
        else:
            pytest.fail("listener still accepting after shutdown op")


class TestMalformedFieldTypes:
    """Bad field *types* get an error response, not a dead socket."""

    @pytest.mark.parametrize("request_body", [
        {"op": "submit", "socs": ["d695"], "widths": ["x"]},
        {"op": "submit", "socs": ["d695"], "widths": [8],
         "num_tams": "two"},
        {"op": "submit", "socs": ["d695"], "widths": [8],
         "num_tams": 2, "options": {"polish": ["unhashable"]}},
        {"op": "wait", "job": "job-0001", "timeout": "soon"},
    ])
    def test_error_response_keeps_connection_alive(
        self, client, request_body
    ):
        with pytest.raises(ServiceError):
            client.call(request_body)
        assert client.ping()["pong"]  # same connection still serves
