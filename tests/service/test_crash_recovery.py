"""Crash durability: a SIGKILL'd server loses no accepted jobs.

The acceptance scenario for the job journal: submit a grid, SIGKILL
the server process mid-run, restart it on the same cache directory,
and assert the journal replays the lost job to completion with a
result payload byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import GridSpec
from repro.service.client import ServiceClient
from repro.service.journal import JOURNAL_NAME
from repro.service.server import ExplorationServer

SRC = str(Path(__file__).resolve().parents[2] / "src")

SPEC = GridSpec.from_axes(["d695"], (8, 12), num_tams=2)


def start_server(tmp_path, cache_dir, tag):
    """Launch `repro-tam serve` on ``cache_dir``; return (proc, port)."""
    port_file = tmp_path / f"port-{tag}"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1",
            "--port-file", str(port_file),
            "--cache-dir", str(cache_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while not port_file.exists():
        if proc.poll() is not None:
            pytest.fail(f"serve exited early:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.kill()
            pytest.fail("serve never published its port")
        time.sleep(0.05)
    return proc, int(port_file.read_text().strip())


def canonical(payload):
    """The comparable grid content of a ``result`` response."""
    return json.dumps(
        {"points": payload["points"], "failures": payload["failures"]},
        sort_keys=True,
    )


def test_sigkilled_server_replays_the_journal(tmp_path):
    # The ground truth: the same grid run to completion, undisturbed.
    with ExplorationServer(max_workers=1) as baseline_server:
        record = baseline_server.submit(SPEC)
        done = baseline_server.wait(record.job_id, timeout=300)
        assert done.status == "done"
        baseline = canonical(
            baseline_server.result_payload(record.job_id)
        )

    cache_dir = tmp_path / "cache"
    proc, port = start_server(tmp_path, cache_dir, "first")
    try:
        with ServiceClient(port=port, timeout=30) as client:
            job = client.submit_grid(SPEC)
            assert job  # accepted — and therefore journaled
    finally:
        # SIGKILL, not terminate: no atexit handlers, no graceful
        # shutdown — the crash the journal exists for.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    # The accepted job is on disk even though the server never got
    # to finish (or possibly even start) it.
    journal = cache_dir / JOURNAL_NAME
    assert journal.exists()
    assert any(
        json.loads(line)["kind"] == "submitted"
        for line in journal.read_text().splitlines() if line
    )

    reborn, port = start_server(tmp_path, cache_dir, "second")
    try:
        with ServiceClient(port=port, timeout=300) as client:
            health = client.ping()["health"]
            assert health["journal"]
            assert health["journal_replays"] >= 1
            # Replay resubmits under a fresh id; the reborn server's
            # counter starts at zero, so the replayed job is first.
            record = client.wait("job-0001", timeout=300)
            assert record["status"] == "done"
            recovered = canonical(client.result("job-0001"))
            assert recovered == baseline
    finally:
        if reborn.poll() is None:
            reborn.terminate()
        reborn.wait(timeout=30)


def test_clean_restart_replays_nothing(tmp_path):
    """A journaled job that finished must not re-run on restart."""
    cache_dir = tmp_path / "cache"
    with ExplorationServer(
        max_workers=1, cache_dir=cache_dir
    ) as server:
        record = server.submit(SPEC)
        assert server.wait(record.job_id, timeout=300).status == "done"
    with ExplorationServer(
        max_workers=1, cache_dir=cache_dir
    ) as reborn:
        health = reborn.info()["health"]
        assert health["journal_replays"] == 0
        # ... and the grid memo still answers the grid instantly.
        assert reborn.submit(SPEC).cached
