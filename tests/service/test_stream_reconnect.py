"""``events`` auto-reconnect: a killed stream resumes at its cursor.

The ROADMAP open item: the v2 ``events`` op always supported resuming
at a sequence cursor (``from``), but a dropped connection used to
kill the whole stream.  ``ServiceClient.events(reconnect=True)`` now
reconnects and re-issues from the cursor after the last delivered
event.

Two layers of coverage:

* a **drop server** that deterministically kills the stream after a
  configurable number of events and records every ``from`` cursor it
  is asked for — the exact client contract (raise without
  ``reconnect``, resume exactly once with it);
* the **real service**, with the client's socket shut down mid-grid —
  end to end, the merged stream is gapless and duplicate-free.
"""

import json
import socket
import threading

import pytest

from repro.exceptions import ServiceError, ServiceTransportError
from repro.service.client import ServiceClient
from repro.service.ipc import IPCServer
from repro.service.server import ExplorationServer


def _event(seq):
    return {
        "v": 2, "kind": "point", "job": "job-0001", "seq": seq,
        "index": seq, "total": 4, "payload": {"seq": seq},
    }


EVENTS = [_event(seq) for seq in range(4)]


class DropServer:
    """Serves an ``events`` stream, dropping it after N lines.

    Connection k (0-based) serves at most ``drop_after[k]`` event
    lines from the requested cursor, then hard-closes the socket —
    unless its budget covers the rest, in which case the ``done``
    line follows.  ``cursors`` records every ``from`` the server was
    asked for, which is how the tests assert exactly-once resumption.
    """

    def __init__(self, drop_after, events=EVENTS):
        self.drop_after = list(drop_after)
        self.events = list(events)
        self.cursors = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for budget in self.drop_after:
            try:
                conn, _ = self._listener.accept()
            except OSError:  # pragma: no cover - closed mid-accept
                return
            with conn:
                reader = conn.makefile("rb")
                request = json.loads(reader.readline())
                start = int(request.get("from", 0))
                self.cursors.append(start)
                pending = self.events[start:]
                for event in pending[:budget]:
                    line = json.dumps({"ok": True, "event": event})
                    conn.sendall(line.encode() + b"\n")
                if budget >= len(pending):
                    done = json.dumps(
                        {"ok": True, "done": True, "status": "done"}
                    )
                    conn.sendall(done.encode() + b"\n")
                # Hard drop (or orderly end): the makefile reader
                # keeps the fd alive past conn.close(), so shut the
                # socket down explicitly — the client must see EOF.
                reader.close()
                conn.shutdown(socket.SHUT_RDWR)

    def close(self):
        self._listener.close()


class TestClientContract:
    def test_drop_without_reconnect_raises_transport_error(self):
        server = DropServer(drop_after=[2])
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                stream = client.events("job-0001")
                assert next(stream)["seq"] == 0
                assert next(stream)["seq"] == 1
                with pytest.raises(ServiceTransportError):
                    next(stream)
        finally:
            server.close()

    def test_drop_with_reconnect_resumes_exactly_once(self):
        server = DropServer(drop_after=[2, 10])
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                events = list(client.events(
                    "job-0001", reconnect=True
                ))
            assert [event["seq"] for event in events] == [0, 1, 2, 3]
            # Second connection resumed exactly after the last
            # delivered event — no replays, no gaps.
            assert server.cursors == [0, 2]
        finally:
            server.close()

    def test_every_line_dropped_exhausts_the_budget(self):
        # Zero progress per connection: the retry budget must not
        # loop forever.
        server = DropServer(drop_after=[0] * 10)
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                with pytest.raises(ServiceTransportError):
                    list(client.events("job-0001", reconnect=True))
            assert len(server.cursors) == 6  # first try + 5 retries
        finally:
            server.close()

    def test_progress_resets_the_retry_budget(self):
        # One event per connection, eight connections: more drops
        # than max_reconnects allows consecutively, but each
        # connection delivers progress, which resets the budget.
        server = DropServer(
            drop_after=[1] * 7 + [10],
            events=[_event(seq) for seq in range(8)],
        )
        try:
            with ServiceClient(port=server.port, timeout=30) as client:
                events = list(client.events(
                    "job-0001", reconnect=True
                ))
            assert [event["seq"] for event in events] == list(range(8))
            assert server.cursors == list(range(8))
        finally:
            server.close()


@pytest.fixture
def ipc():
    with ExplorationServer(max_workers=1) as exploration:
        server = IPCServer(exploration, port=0).start()
        yield server
        server.stop()


def connect(ipc):
    host, port = ipc.address
    return ServiceClient(host=host, port=port, timeout=120)


GRID = dict(socs=["d695"], widths=[6, 8, 10, 12], num_tams=2)


class TestAgainstRealService:
    def test_killed_stream_still_delivers_every_event_once(self, ipc):
        with connect(ipc) as reference:
            job_id = reference.submit(**GRID)
            expected = list(reference.events(job_id, timeout=120))
        assert len(expected) == 4

        with connect(ipc) as client:
            events = []
            for event in client.events(
                job_id, timeout=120, reconnect=True
            ):
                events.append(event)
                # Kill the connection after every event; the client
                # reconnects and resumes at the cursor.
                client._sock.shutdown(socket.SHUT_RDWR)
            assert events == expected

    def test_mid_run_kill_against_live_grid(self, ipc):
        # The same protocol against a job still *running* when the
        # stream dies (max_workers=1: the grid runs inline in the
        # dispatcher, so events trickle while we consume).
        with connect(ipc) as client:
            job_id = client.submit(**GRID)
            seen = []
            killed = False
            for event in client.events(
                job_id, timeout=300, reconnect=True
            ):
                seen.append(event)
                if not killed:
                    killed = True
                    client._sock.shutdown(socket.SHUT_RDWR)
            assert [event["seq"] for event in seen] == [0, 1, 2, 3]

    def test_server_side_errors_are_never_retried(self, ipc):
        with connect(ipc) as client:
            with pytest.raises(ServiceError) as failure:
                list(client.events(
                    "job-9999", timeout=5, reconnect=True
                ))
            assert not isinstance(
                failure.value, ServiceTransportError
            )


class TestCliStreamUsesReconnect:
    def test_submit_stream_renders_every_point(self, ipc, capsys):
        from repro.cli import main

        host, port = ipc.address
        code = main([
            "submit", "d695", "-W", "6", "8", "-B", "2",
            "--host", host, "--port", str(port), "--stream",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
