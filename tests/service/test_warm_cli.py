"""Acceptance: a repeated `repro-tam batch --cache-dir` invocation
performs ZERO `design_wrapper` calls — the persistent store serves
every staircase."""

import json

import pytest

import repro.wrapper.pareto as pareto
from repro.cli import main
from repro.engine.batch import BatchJob, BatchRunner


@pytest.fixture
def counted_designs(monkeypatch):
    """Count every design_wrapper invocation in this process."""
    calls = []
    original = pareto.design_wrapper

    def counting(core, width):
        calls.append((core.name, width))
        return original(core, width)

    monkeypatch.setattr(pareto, "design_wrapper", counting)
    return calls


class TestWarmBatchCLI:
    def test_second_invocation_designs_nothing(
        self, tmp_path, capsys, counted_designs
    ):
        argv = [
            "batch", "d695", "-W", "6", "9", "-B", "2",
            "--jobs", "1", "--cache-dir", str(tmp_path / "tables"),
        ]
        assert main(argv) == 0
        cold_calls = len(counted_designs)
        assert cold_calls > 0
        cold_out = capsys.readouterr().out

        counted_designs.clear()
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert counted_designs == []          # the acceptance bar
        assert warm_out == cold_out           # ...and same answers

    def test_warm_json_output_is_identical(
        self, tmp_path, capsys, counted_designs
    ):
        argv = [
            "batch", "d695", "-W", "6", "-B", "2", "--json",
            "--jobs", "1", "--cache-dir", str(tmp_path / "tables"),
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        counted_designs.clear()
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert counted_designs == []
        assert warm == cold

    def test_wider_rerun_pays_only_the_extension(
        self, tmp_path, capsys, counted_designs, d695
    ):
        cache = str(tmp_path / "tables")
        assert main(["batch", "d695", "-W", "6", "-B", "2",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        counted_designs.clear()
        assert main(["batch", "d695", "-W", "9", "-B", "2",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        capsys.readouterr()
        paid = set(counted_designs)
        expected = {
            (core.name, width)
            for core in d695.cores
            for width in range(7, 10)
        }
        assert paid == expected
        assert len(counted_designs) == len(expected)


class TestWarmRunner:
    def test_store_backed_runners_share_across_instances(
        self, tmp_path, tiny_soc, counted_designs
    ):
        cache = tmp_path / "tables"
        jobs = [BatchJob(tiny_soc, w, 2) for w in (4, 6)]
        first = BatchRunner(max_workers=1, cache_dir=cache).run(jobs)
        assert len(counted_designs) > 0
        counted_designs.clear()
        second = BatchRunner(max_workers=1, cache_dir=cache).run(jobs)
        assert counted_designs == []
        assert second == first
