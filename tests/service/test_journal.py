"""JobJournal durability semantics: append, replay, compaction."""

import json

from repro.service.journal import JOURNAL_NAME, JobJournal, JournalEntry


def make_entry(job_id, key=None, spec=None, **kwargs):
    return JournalEntry(
        job_id=job_id,
        key=key or f"key-{job_id}",
        spec=spec if spec is not None else {"schema": 1},
        **kwargs,
    )


class TestAppendReplay:
    def test_open_entries_survive_terminals(self, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_NAME)
        journal.record_submitted(make_entry("job-1"))
        journal.record_submitted(make_entry("job-2"))
        journal.record_terminal("job-1", "done")
        journal.close()
        fresh = JobJournal(tmp_path / JOURNAL_NAME)
        open_entries = fresh.replay()
        assert [e.job_id for e in open_entries] == ["job-2"]

    def test_runner_hints_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_NAME)
        journal.record_submitted(make_entry(
            "job-1", shard="auto", point_timeout=2.5,
        ))
        journal.close()
        [entry] = JobJournal(tmp_path / JOURNAL_NAME).replay()
        assert entry.shard == "auto"
        assert entry.point_timeout == 2.5

    def test_replayed_counts_as_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / JOURNAL_NAME)
        journal.record_submitted(make_entry("job-1"))
        journal.record_replayed("job-1", "job-7")
        journal.close()
        assert JobJournal(tmp_path / JOURNAL_NAME).replay() == []

    def test_missing_file_replays_empty(self, tmp_path):
        assert JobJournal(tmp_path / "absent.jsonl").replay() == []


class TestCrashArtifacts:
    def test_torn_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = JobJournal(path)
        journal.record_submitted(make_entry("job-1"))
        journal.close()
        # Simulate dying mid-append: a final line without newline.
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "subm')
        open_entries = JobJournal(path).replay()
        assert [e.job_id for e in open_entries] == ["job-1"]

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = JobJournal(path)
        journal.record_submitted(make_entry("job-1"))
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(b"not json at all\n" + raw)
        open_entries = JobJournal(path).replay()
        assert [e.job_id for e in open_entries] == ["job-1"]

    def test_unknown_kind_is_tolerated(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text(
            json.dumps({"kind": "vibes", "job": "job-9"}) + "\n"
        )
        assert JobJournal(path).replay() == []


class TestCompaction:
    def test_compact_rewrites_to_open_entries_only(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = JobJournal(path)
        for index in range(5):
            journal.record_submitted(make_entry(f"job-{index}"))
        for index in range(4):
            journal.record_terminal(f"job-{index}", "done")
        journal.compact(journal.replay())
        lines = [
            line for line in path.read_text().splitlines() if line
        ]
        assert len(lines) == 1
        assert json.loads(lines[0])["job"] == "job-4"
        # The journal stays appendable after compaction.
        journal.record_submitted(make_entry("job-5"))
        journal.close()
        assert len(JobJournal(path).replay()) == 2
