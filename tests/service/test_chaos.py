"""Chaos suite: seeded fault plans never change computed results.

Every test here runs the same workload twice — once clean, once under
a ``REPRO_FAULTS`` plan — and asserts the results are bit-identical.
Faults may change *how* the answer is produced (pools rebuilt, shm
fallbacks engaged, streams reconnected, store entries rebuilt), never
*what* is produced.

``REPRO_CHAOS_SEED`` (CI's chaos-smoke matrix) shifts which grid
point each fault lands on, so repeated runs exercise different
crash/stall sites without giving up determinism within a run.
"""

import json
import os

import pytest

from repro.api import GridSpec
from repro.engine.batch import BatchJob, BatchRunner
from repro.engine.faults import FAULTS_ENV
from repro.service.client import ServiceClient
from repro.service.ipc import IPCServer
from repro.service.server import ExplorationServer

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

WIDTHS = (4, 5, 6, 7)


def grid_jobs(soc):
    return [BatchJob(soc, width, 2) for width in WIDTHS]


@pytest.fixture
def no_ambient_faults(monkeypatch):
    """A clean slate: no plan leaks in from the invoking shell."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    return monkeypatch


def plan_texts(tmp_path):
    """The seeded plans the engine chaos test sweeps.

    Each plan gets its own one-shot token directory — tokens claimed
    by one plan must not disarm the next.
    """
    crash_at = SEED % len(WIDTHS)
    slow_at = (SEED + 1) % len(WIDTHS)
    return {
        "crash": (
            f"seed={SEED},state={tmp_path / 'tok-crash'},"
            f"crash@{crash_at}"
        ),
        "shm": f"seed={SEED},shm@{crash_at},shm@{slow_at}",
        "slow": f"seed={SEED},slow@{slow_at}=0.05",
        "combo": (
            f"seed={SEED},state={tmp_path / 'tok-combo'},"
            f"crash@{crash_at},shm@{slow_at},slow@{slow_at}=0.05"
        ),
    }


class TestEngineChaos:
    def test_every_plan_is_bit_identical(
        self, tiny_soc, tmp_path, no_ambient_faults
    ):
        healthy = BatchRunner(max_workers=2).run(grid_jobs(tiny_soc))
        for name, text in plan_texts(tmp_path).items():
            no_ambient_faults.setenv(FAULTS_ENV, text)
            runner = BatchRunner(max_workers=2)
            chaotic = runner.run(grid_jobs(tiny_soc))
            assert chaotic == healthy, f"plan {name!r} changed results"
            if "crash@" in text:
                assert runner.pool_restarts >= 1

    def test_inline_mode_survives_the_plans_too(
        self, tiny_soc, tmp_path, no_ambient_faults
    ):
        # No pool to crash inline — but shm/slow directives still hit
        # their hooks and must be harmless.
        healthy = BatchRunner(max_workers=1).run(grid_jobs(tiny_soc))
        state = tmp_path / "tokens-inline"
        no_ambient_faults.setenv(
            FAULTS_ENV,
            f"seed={SEED},state={state},shm@0,slow@1=0.02",
        )
        chaotic = BatchRunner(max_workers=1).run(grid_jobs(tiny_soc))
        assert chaotic == healthy


class TestStoreChaos:
    def test_corrupt_write_is_quarantined_then_rebuilt(
        self, tiny_soc, tmp_path, no_ambient_faults
    ):
        # One width only: each core's table is saved exactly once, so
        # the truncated first record is not healed by a later, wider
        # write-back within the same (corrupting) run.
        jobs = [BatchJob(tiny_soc, 6, 2)]
        healthy = BatchRunner(max_workers=1).run(jobs)
        cache = tmp_path / "tables"
        no_ambient_faults.setenv(
            FAULTS_ENV, f"state={tmp_path / 'tokens'},corrupt",
        )
        # The corrupting run: one store record lands truncated.
        assert BatchRunner(
            max_workers=1, cache_dir=cache
        ).run(jobs) == healthy
        no_ambient_faults.delenv(FAULTS_ENV)
        # The warm rerun meets the truncated record: quarantined to
        # *.bad, rebuilt, and the answers never waver.
        assert BatchRunner(
            max_workers=1, cache_dir=cache
        ).run(jobs) == healthy
        assert list(cache.glob("*.bad"))
        # A third run is fully warm again (the rebuild re-persisted).
        assert BatchRunner(
            max_workers=1, cache_dir=cache
        ).run(jobs) == healthy


class TestServiceChaos:
    def test_dropped_event_streams_still_deliver_every_event(
        self, no_ambient_faults
    ):
        spec = GridSpec.from_axes(["d695"], (8, 12, 16), num_tams=2)
        # Ground truth from an undisturbed service.
        with ExplorationServer(max_workers=1) as exploration:
            record = exploration.submit(spec)
            exploration.wait(record.job_id, timeout=300)
            baseline = json.dumps(
                exploration.result_payload(record.job_id),
                sort_keys=True,
            )
        # Now every events stream is severed after one line; the
        # client's reconnect resumes from its cursor each time.
        no_ambient_faults.setenv(FAULTS_ENV, f"seed={SEED},ipc@1")
        with ExplorationServer(max_workers=1) as exploration:
            server = IPCServer(exploration, port=0).start()
            try:
                host, port = server.address
                with ServiceClient(
                    host=host, port=port, timeout=120
                ) as client:
                    job = client.submit_grid(spec)
                    events = list(client.events(
                        job, reconnect=True, timeout=120,
                    ))
                no_ambient_faults.delenv(FAULTS_ENV)
                with ServiceClient(
                    host=host, port=port, timeout=120
                ) as client:
                    payload = client.result(job)
            finally:
                server.stop()
        assert [event["index"] for event in events] == [0, 1, 2]
        chaotic = json.dumps(
            {"points": payload["points"],
             "failures": payload["failures"]},
            sort_keys=True,
        )
        baseline_doc = json.loads(baseline)
        assert chaotic == json.dumps(
            {"points": baseline_doc["points"],
             "failures": baseline_doc["failures"]},
            sort_keys=True,
        )
        # The injected drops are visible in the server's health block.
        faults = exploration.info()["health"]["faults_injected"]
        assert faults >= 1
