"""Multi-tenant hardening: identity, quotas, priorities, overload.

The acceptance scenarios for the tenancy layer: two clients share one
server without observing each other's jobs; quota exhaustion and
overload answer with *typed* rejections (never a dropped connection);
priority is granted by the registry, not the request; and none of it
changes computed results — a fixed grid is bit-identical with auth,
quotas and concurrency caps enabled.
"""

import json
import socket as socketlib
import threading

import pytest

from repro.api import GridSpec
from repro.engine.batch import BatchJob, BatchRunner
from repro.exceptions import (
    ConfigurationError,
    OverloadedError,
    QuotaExceededError,
    ServiceRejectionError,
    UnauthorizedError,
)
from repro.service.client import ServiceClient
from repro.service.ipc import IPCServer
from repro.service.journal import JOURNAL_NAME, JobJournal, JournalEntry
from repro.service.server import ExplorationServer
from repro.service.tenancy import (
    ANONYMOUS_CLIENT,
    AdmissionQueue,
    ClientIdentity,
    QuotaPolicy,
    TokenRegistry,
)

TOKENS = {
    "clients": {
        "alice": {
            "token": "alice-secret",
            "priority": "high",
            "quota": {"max_queued_jobs": 4},
        },
        "bob": {"token": "bob-secret"},
    }
}


@pytest.fixture
def tokens_file(tmp_path):
    path = tmp_path / "tokens.json"
    path.write_text(json.dumps(TOKENS))
    return path


@pytest.fixture
def gated(tiny_soc):
    """A 1-worker server whose dispatcher blocks until released.

    The gate holds the dispatcher *inside* its first grid, so any
    further submissions sit in the admission queue deterministically
    — no sleeps, no racing the drain loop.
    """
    server = ExplorationServer(max_workers=1)
    gate = threading.Event()
    original = server.runner.run_iter

    def hold(jobs, **kwargs):
        gate.wait(timeout=300)
        return original(jobs, **kwargs)

    server.runner.run_iter = hold
    yield server, gate
    gate.set()
    server.shutdown()


def grid(soc, widths, **options):
    return [BatchJob(soc, w, 2, options=options) for w in widths]


def wait_running(server, job_id):
    import time

    deadline = time.monotonic() + 60
    while server.status(job_id)["status"] != "running":
        assert time.monotonic() < deadline, "job never started"
        time.sleep(0.005)


class TestTokenRegistry:
    def test_load_and_authenticate(self, tokens_file):
        registry = TokenRegistry.load(tokens_file)
        assert len(registry) == 2
        alice = registry.authenticate("alice-secret")
        assert alice.client_id == "alice"
        assert alice.priority == "high"
        assert alice.quota.max_queued_jobs == 4
        bob = registry.authenticate("bob-secret")
        assert bob.priority == "normal"
        assert bob.quota.max_queued_jobs is None

    def test_unknown_and_missing_tokens_raise(self, tokens_file):
        registry = TokenRegistry.load(tokens_file)
        with pytest.raises(UnauthorizedError):
            registry.authenticate("wrong-secret")
        with pytest.raises(UnauthorizedError):
            registry.authenticate(None)
        with pytest.raises(UnauthorizedError):
            registry.authenticate("")

    def test_identity_for_is_name_lookup(self, tokens_file):
        registry = TokenRegistry.load(tokens_file)
        assert registry.identity_for("alice").priority == "high"
        assert registry.identity_for("nobody") is None

    @pytest.mark.parametrize("doc", [
        "[]",
        '{"clients": []}',
        '{"clients": {"a": {"token": ""}}}',
        '{"clients": {"a": {"token": "t", "speed": "fast"}}}',
        '{"clients": {"a": {"token": "t", "priority": "urgent"}}}',
        '{"clients": {"a": {"token": "t"}, "b": {"token": "t"}}}',
        '{"clients": {"a": {"token": "t", '
        '"quota": {"max_queued_jobs": 0}}}}',
    ])
    def test_malformed_registries_fail_hard(self, tmp_path, doc):
        path = tmp_path / "tokens.json"
        path.write_text(doc)
        with pytest.raises(ConfigurationError):
            TokenRegistry.load(path)

    def test_missing_file_fails_hard(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TokenRegistry.load(tmp_path / "absent.json")


class TestQuotaAndIdentity:
    def test_quota_validation(self):
        with pytest.raises(ConfigurationError):
            QuotaPolicy(max_grid_size=0)
        with pytest.raises(ConfigurationError):
            QuotaPolicy.from_dict({"max_cpus": 4})
        policy = QuotaPolicy.from_dict({"max_grid_size": 9})
        assert policy.to_dict()["max_grid_size"] == 9

    def test_priority_may_drop_but_never_rise(self):
        normal = ClientIdentity("c")
        assert normal.effective_priority(None) == "normal"
        assert normal.effective_priority("low") == "low"
        with pytest.raises(UnauthorizedError):
            normal.effective_priority("high")
        high = ClientIdentity("vip", priority="high")
        assert high.effective_priority("high") == "high"
        assert high.effective_priority("normal") == "normal"

    def test_anonymous_is_unlimited_normal(self):
        assert ANONYMOUS_CLIENT.priority == "normal"
        assert ANONYMOUS_CLIENT.quota.max_queued_jobs is None


class TestAdmissionQueue:
    def test_weighted_fair_drain_ratio(self):
        queue = AdmissionQueue()
        for i in range(8):
            queue.push(f"h{i}", "high")
            queue.push(f"n{i}", "normal")
            queue.push(f"l{i}", "low")
        popped = [queue.pop(timeout=1) for _ in range(7)]
        by_class = {
            cls: sum(1 for job in popped if job.startswith(cls))
            for cls in "hnl"
        }
        # One full WRR cycle under backlog serves exactly 4:2:1.
        assert by_class == {"h": 4, "n": 2, "l": 1}

    def test_low_is_slowed_never_starved(self):
        queue = AdmissionQueue()
        for i in range(14):
            queue.push(f"h{i}", "high")
            queue.push(f"l{i}", "low")
        popped = [queue.pop(timeout=1) for _ in range(12)]
        assert any(job.startswith("l") for job in popped)

    def test_fifo_within_a_class(self):
        queue = AdmissionQueue()
        queue.push("a", "normal")
        queue.push("b", "normal")
        assert queue.pop(timeout=1) == "a"
        assert queue.pop(timeout=1) == "b"

    def test_shed_candidate_is_newest_of_worst_class(self):
        queue = AdmissionQueue(max_depth=4)
        queue.push("n1", "normal")
        queue.push("l1", "low")
        queue.push("l2", "low")
        assert queue.shed_candidate("high") == ("l2", "low")
        # An arrival never sheds its own class or better.
        assert queue.shed_candidate("low") is None
        queue.remove("l1", "low")
        queue.remove("l2", "low")
        assert queue.shed_candidate("low") is None  # only normal left

    def test_remove_and_depth_stay_exact(self):
        queue = AdmissionQueue(max_depth=2)
        queue.push("a", "normal")
        queue.push("b", "low")
        assert queue.is_full()
        assert queue.remove("b", "low")
        assert not queue.remove("b", "low")
        assert queue.depth() == 1 and not queue.is_full()

    def test_bad_depth_and_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue().push("x", "urgent")


class TestPerClientAccounting:
    def test_two_clients_are_isolated(self, tiny_soc, gated):
        server, gate = gated
        alice = ClientIdentity("alice", priority="high")
        bob = ClientIdentity("bob")
        blocker = server.submit(grid(tiny_soc, (4,)))
        wait_running(server, blocker.job_id)
        a_job = server.submit(grid(tiny_soc, (5,)), client=alice)
        b_job = server.submit(grid(tiny_soc, (6,)), client=bob)
        clients = server.info()["clients"]
        assert clients["alice"]["queued"] == 1
        assert clients["bob"]["queued"] == 1
        assert clients["anonymous"]["running"] == 1
        assert server.record(a_job.job_id).client_id == "alice"
        assert server.record(b_job.job_id).client_id == "bob"
        gate.set()
        for job in (blocker, a_job, b_job):
            assert server.wait(
                job.job_id, timeout=300
            ).status == "done"
        clients = server.info()["clients"]
        for name in ("alice", "bob"):
            assert clients[name]["queued"] == 0
            assert clients[name]["running"] == 0
            assert clients[name]["done"] == 1
        # Results stay per-job: each client reads back its own grid.
        assert server.results(a_job.job_id) != \
            server.results(b_job.job_id)

    def test_queued_jobs_quota_exhaustion(self, tiny_soc, gated):
        server, gate = gated
        alice = ClientIdentity(
            "alice", quota=QuotaPolicy(max_queued_jobs=1)
        )
        bob = ClientIdentity("bob")
        blocker = server.submit(grid(tiny_soc, (4,)))
        wait_running(server, blocker.job_id)
        server.submit(grid(tiny_soc, (5,)), client=alice)
        with pytest.raises(QuotaExceededError):
            server.submit(grid(tiny_soc, (6,)), client=alice)
        # Bob is not collateral damage of Alice's ceiling.
        server.submit(grid(tiny_soc, (6,)), client=bob)
        clients = server.info()["clients"]
        assert clients["alice"]["rejected"]["over_quota"] == 1
        assert clients["bob"]["rejected"]["over_quota"] == 0

    def test_grid_size_quota(self, tiny_soc, gated):
        server, _ = gated
        small = ClientIdentity(
            "small", quota=QuotaPolicy(max_grid_size=2)
        )
        with pytest.raises(QuotaExceededError):
            server.submit(grid(tiny_soc, (4, 5, 6)), client=small)

    def test_priority_escalation_is_unauthorized(
        self, tiny_soc, gated
    ):
        server, _ = gated
        low = ClientIdentity("bot", priority="low")
        with pytest.raises(UnauthorizedError):
            server.submit(
                grid(tiny_soc, (4,)), client=low, priority="high"
            )
        clients = server.info()["clients"]
        assert clients["bot"]["rejected"]["unauthorized"] == 1


class TestOverload:
    def test_sheds_lowest_priority_then_rejects_typed(
        self, tiny_soc, monkeypatch
    ):
        server = ExplorationServer(max_workers=1, max_queue_depth=2)
        gate = threading.Event()
        original = server.runner.run_iter

        def hold(jobs, **kwargs):
            gate.wait(timeout=300)
            return original(jobs, **kwargs)

        monkeypatch.setattr(server.runner, "run_iter", hold)
        try:
            high = ClientIdentity("vip", priority="high")
            blocker = server.submit(grid(tiny_soc, (4,)))
            wait_running(server, blocker.job_id)
            low1 = server.submit(grid(tiny_soc, (5,)), priority="low")
            low2 = server.submit(grid(tiny_soc, (6,)), priority="low")
            # Full queue + a better arrival: the *newest* low job is
            # sacrificed, the high one takes its slot.
            vip_job = server.submit(grid(tiny_soc, (7,)), client=high)
            assert server.status(low2.job_id)["status"] == "shed"
            assert server.status(low1.job_id)["status"] == "queued"
            assert server.status(vip_job.job_id)["status"] == "queued"
            info = server.info()
            assert info["jobs_shed"] == 1
            assert info["clients"]["anonymous"]["shed"] == 1
            # Full queue + nothing strictly worse queued: a typed
            # overload rejection with a retry hint, never a drop.
            with pytest.raises(OverloadedError) as exc:
                server.submit(grid(tiny_soc, (8,)), priority="low")
            assert exc.value.code == "overloaded"
            assert exc.value.retry_after is not None
            assert exc.value.retry_after > 0
            rejected = server.info()["clients"]["anonymous"]
            assert rejected["rejected"]["overloaded"] == 1
            gate.set()
            assert server.wait(
                vip_job.job_id, timeout=300
            ).status == "done"
            assert server.wait(
                low1.job_id, timeout=300
            ).status == "done"
        finally:
            gate.set()
            server.shutdown()

    def test_retry_after_grows_with_the_streak(
        self, tiny_soc, monkeypatch
    ):
        server = ExplorationServer(max_workers=1, max_queue_depth=1)
        gate = threading.Event()
        original = server.runner.run_iter

        def hold(jobs, **kwargs):
            gate.wait(timeout=300)
            return original(jobs, **kwargs)

        monkeypatch.setattr(server.runner, "run_iter", hold)
        try:
            blocker = server.submit(grid(tiny_soc, (4,)))
            wait_running(server, blocker.job_id)
            server.submit(grid(tiny_soc, (5,)))
            hints = []
            for width in (6, 7, 8):
                with pytest.raises(OverloadedError) as exc:
                    server.submit(grid(tiny_soc, (width,)))
                hints.append(exc.value.retry_after)
            assert hints == sorted(hints)
            assert hints[-1] > hints[0]
        finally:
            gate.set()
            server.shutdown()


class TestBitIdentity:
    def test_results_identical_with_tenancy_enabled(self, tiny_soc):
        """Scheduling policy must never leak into result content."""
        jobs = grid(tiny_soc, (4, 6))
        reference = BatchRunner(max_workers=2).run(jobs)
        tenant = ClientIdentity(
            "alice", priority="high",
            quota=QuotaPolicy(
                max_queued_jobs=2, max_concurrent_points=1,
                max_grid_size=8,
            ),
        )
        with ExplorationServer(
            max_workers=2, max_queue_depth=4
        ) as server:
            record = server.submit(
                jobs, client=tenant, priority="low"
            )
            assert server.wait(
                record.job_id, timeout=300
            ).status == "done"
            assert server.results(record.job_id) == reference
            assert record.max_concurrent == 1


class TestIPCAuth:
    @pytest.fixture
    def authed(self, tokens_file):
        exploration = ExplorationServer(
            max_workers=1, require_auth=True,
            tokens_path=tokens_file,
        )
        server = IPCServer(exploration, port=0).start()
        yield server
        server.stop()
        exploration.shutdown()

    def test_ping_needs_no_token(self, authed):
        host, port = authed.address
        with ServiceClient(host=host, port=port, timeout=60) as c:
            response = c.ping()
            assert response["pong"] and response["auth"]

    def test_missing_and_wrong_tokens_rejected_typed(self, authed):
        host, port = authed.address
        with ServiceClient(host=host, port=port, timeout=60) as c:
            with pytest.raises(UnauthorizedError):
                c.submit(["d695"], widths=[6], num_tams=2)
            assert c.ping()["pong"]  # connection survived
        with ServiceClient(
            host=host, port=port, timeout=60, token="wrong",
        ) as c:
            with pytest.raises(UnauthorizedError):
                c.submit(["d695"], widths=[6], num_tams=2)

    def test_jobs_are_owner_scoped(self, authed):
        host, port = authed.address
        with ServiceClient(
            host=host, port=port, timeout=300, token="alice-secret",
        ) as alice:
            job = alice.submit(["d695"], widths=[6], num_tams=2)
            alice.wait(job, timeout=300)
            assert alice.result(job)["failures"] == []
            with ServiceClient(
                host=host, port=port, timeout=60, token="bob-secret",
            ) as bob:
                for call in (bob.status, bob.result, bob.cancel):
                    with pytest.raises(UnauthorizedError):
                        call(job)
            # The owner still sees it after the intruder bounced.
            assert alice.status(job)["status"] == "done"

    def test_rejections_carry_machine_readable_codes(self, authed):
        host, port = authed.address
        with ServiceClient(host=host, port=port, timeout=60) as c:
            with pytest.raises(ServiceRejectionError) as exc:
                c.call({"op": "status", "job": "job-0001"})
            assert exc.value.code == "unauthorized"


class TestReplayRestoresAccounting:
    def test_journaled_client_identity_survives_restart(
        self, tmp_path
    ):
        spec = GridSpec.from_axes(["d695"], (6,), num_tams=2)
        cache = tmp_path / "cache"
        cache.mkdir()
        journal = JobJournal(cache / JOURNAL_NAME)
        journal.record_submitted(JournalEntry(
            job_id="job-0042",
            key=spec.canonical_key(),
            spec=spec.to_dict(),
            client_id="alice",
            priority="high",
        ))
        journal.close()
        with ExplorationServer(
            max_workers=1, cache_dir=cache
        ) as server:
            record = server.record("job-0001")
            assert record.client_id == "alice"
            assert record.priority == "high"
            assert server.wait(
                "job-0001", timeout=300
            ).status == "done"
            account = server.info()["clients"]["alice"]
            assert account["submitted"] == 1
            assert account["done"] == 1
            assert account["queued"] == 0

    def test_replay_reattaches_to_current_registry_entry(
        self, tmp_path
    ):
        """Quota edits between restarts apply to recovered work."""
        tokens = tmp_path / "tokens.json"
        tokens.write_text(json.dumps({"clients": {"alice": {
            "token": "s3cret", "priority": "high",
            "quota": {"max_concurrent_points": 1},
        }}}))
        spec = GridSpec.from_axes(["d695"], (6, 8), num_tams=2)
        cache = tmp_path / "cache"
        cache.mkdir()
        journal = JobJournal(cache / JOURNAL_NAME)
        journal.record_submitted(JournalEntry(
            job_id="job-0001",
            key=spec.canonical_key(),
            spec=spec.to_dict(),
            client_id="alice",
            priority="high",
        ))
        journal.close()
        with ExplorationServer(
            max_workers=1, cache_dir=cache,
            require_auth=True, tokens_path=tokens,
        ) as server:
            record = server.record("job-0001")
            assert record.max_concurrent == 1  # today's registry
            assert server.wait(
                "job-0001", timeout=300
            ).status == "done"

    def test_demoted_priority_never_loses_recovered_work(
        self, tmp_path
    ):
        """A journaled priority above today's class is clamped."""
        tokens = tmp_path / "tokens.json"
        tokens.write_text(json.dumps({"clients": {"alice": {
            "token": "s3cret", "priority": "low",
        }}}))
        spec = GridSpec.from_axes(["d695"], (6,), num_tams=2)
        cache = tmp_path / "cache"
        cache.mkdir()
        journal = JobJournal(cache / JOURNAL_NAME)
        journal.record_submitted(JournalEntry(
            job_id="job-0001",
            key=spec.canonical_key(),
            spec=spec.to_dict(),
            client_id="alice",
            priority="high",  # granted by a *previous* registry
        ))
        journal.close()
        with ExplorationServer(
            max_workers=1, cache_dir=cache,
            require_auth=True, tokens_path=tokens,
        ) as server:
            record = server.record("job-0001")
            assert record.priority == "low"
            assert server.wait(
                "job-0001", timeout=300
            ).status == "done"


class TestAuthConfig:
    def test_require_auth_without_registry_source_fails(self):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError):
            ExplorationServer(max_workers=1, require_auth=True)


class TestIPCGuards:
    """Transport robustness: line cap and read deadline."""

    @pytest.fixture
    def exploration(self):
        with ExplorationServer(max_workers=1) as server:
            yield server

    def test_oversized_request_gets_typed_error_then_close(
        self, exploration
    ):
        server = IPCServer(
            exploration, port=0, max_request_bytes=256,
        ).start()
        try:
            sock = socketlib.create_connection(
                server.address, timeout=30
            )
            try:
                sock.sendall(
                    b'{"op": "ping", "pad": "'
                    + b"x" * 1024 + b'"}\n'
                )
                stream = sock.makefile("rb")
                response = json.loads(stream.readline())
                assert not response["ok"]
                assert response["code"] == "oversized"
                # No way back to a line boundary: server hangs up.
                assert stream.readline() == b""
            finally:
                sock.close()
        finally:
            server.stop()
        metrics = exploration.runner.metrics.snapshot()
        assert metrics.counter("ipc.oversized_requests") == 1

    def test_in_bounds_requests_are_unaffected(self, exploration):
        server = IPCServer(
            exploration, port=0, max_request_bytes=256,
        ).start()
        try:
            host, port = server.address
            with ServiceClient(host=host, port=port, timeout=60) as c:
                assert c.ping()["pong"]
        finally:
            server.stop()

    def test_stalled_connection_gets_typed_error_then_close(
        self, exploration
    ):
        server = IPCServer(
            exploration, port=0, read_timeout=0.3,
        ).start()
        try:
            sock = socketlib.create_connection(
                server.address, timeout=30
            )
            try:
                # Send *part* of a line, then stall: never a newline.
                sock.sendall(b'{"op": "pi')
                stream = sock.makefile("rb")
                response = json.loads(stream.readline())
                assert not response["ok"]
                assert response["code"] == "stalled"
                assert stream.readline() == b""
            finally:
                sock.close()
        finally:
            server.stop()
        metrics = exploration.runner.metrics.snapshot()
        assert metrics.counter("ipc.stalled_connections") == 1

    def test_guards_with_fault_plan_stay_bit_identical(
        self, monkeypatch
    ):
        """Seeded chaos through the guarded transport: results hold."""
        from repro.engine.faults import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        spec = GridSpec.from_axes(["d695"], (8, 12), num_tams=2)
        with ExplorationServer(max_workers=1) as baseline_server:
            record = baseline_server.submit(spec)
            baseline_server.wait(record.job_id, timeout=300)
            baseline = json.dumps(
                baseline_server.result_payload(record.job_id),
                sort_keys=True, default=str,
            )
        monkeypatch.setenv(FAULTS_ENV, "seed=3,ipc@1")
        with ExplorationServer(max_workers=1) as exploration:
            server = IPCServer(
                exploration, port=0,
                max_request_bytes=1 << 16, read_timeout=60,
            ).start()
            try:
                host, port = server.address
                with ServiceClient(
                    host=host, port=port, timeout=120
                ) as client:
                    job = client.submit_grid(spec)
                    events = list(client.events(
                        job, reconnect=True, timeout=120,
                    ))
                monkeypatch.delenv(FAULTS_ENV)
                with ServiceClient(
                    host=host, port=port, timeout=120
                ) as client:
                    payload = client.result(job)
            finally:
                server.stop()
        assert [event["index"] for event in events] == [0, 1]
        baseline_doc = json.loads(baseline)
        assert payload["points"] == baseline_doc["points"]
        assert payload["failures"] == baseline_doc["failures"]


class TestJournalCompaction:
    def test_compacts_only_past_the_threshold(self, tmp_path):
        spec = GridSpec.from_axes(["d695"], (6,), num_tams=2)
        journal = JobJournal(tmp_path / "journal.jsonl")
        for index in range(6):
            job_id = f"job-{index:04d}"
            journal.record_submitted(JournalEntry(
                job_id=job_id, key=f"k{index}",
                spec=spec.to_dict(),
            ))
            journal.record_terminal(job_id, "done")
        open_entries = journal.replay()
        assert open_entries == []
        assert journal.last_replay_lines == 12
        assert not journal.compact_if_needed(open_entries, 100)
        assert journal.compactions == 0
        assert journal.compact_if_needed(open_entries, 5)
        assert journal.compactions == 1
        # The rewritten file holds only still-open work: nothing.
        assert journal.replay() == []
        assert journal.last_replay_lines == 0

    def test_startup_compaction_is_counted_in_health(self, tmp_path):
        spec = GridSpec.from_axes(["d695"], (6,), num_tams=2)
        cache = tmp_path / "cache"
        with ExplorationServer(
            max_workers=1, cache_dir=cache
        ) as server:
            record = server.submit(spec)
            assert server.wait(
                record.job_id, timeout=300
            ).status == "done"
        # The journal now carries settled lines; a restart past the
        # (tiny) threshold rewrites it and reports having done so.
        with ExplorationServer(
            max_workers=1, cache_dir=cache,
            journal_compact_threshold=1,
        ) as reborn:
            assert reborn.info()["health"][
                "journal_compactions"
            ] >= 1
