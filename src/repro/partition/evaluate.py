"""``Partition_evaluate`` — the fast partition sweep of Fig. 3.

For every candidate TAM count ``B`` and every width partition of the
total TAM width ``W``, run ``Core_assign`` against the incumbent SOC
testing time; keep the best (partition, assignment).  Three pruning
levels, exactly as the paper describes:

1. the enumerator never emits (most) reordered duplicates — the
   production default goes further than the paper's ``Increment``
   bound and emits *only* unique partitions;
2. ``Core_assign`` aborts a partition the moment any bus's summed
   time reaches the incumbent (Lines 18-20 of Fig. 1) — the dominant
   saving, quantified in Table 1;
3. the evaluation itself is the O(N²) heuristic rather than an ILP.

The sweep records, per TAM count, how many partitions were enumerated
and how many were *evaluated to completion* — the paper's
``N_eval`` — so the efficiency study (Table 1) falls out directly.

Two execution engines score the partitions:

* ``engine="kernel"`` (default) — the dense time-matrix kernel of
  :mod:`repro.engine.kernel`: the N×W matrix is assembled once per
  sweep, per-width columns are memoized, and the inner loop is
  allocation-free.  Bit-identical outcomes, several times faster.
* ``engine="legacy"`` — the original per-partition ``_times_for`` +
  :func:`~repro.assign.core_assign.core_assign` path, kept as the
  differential-test oracle.

The kernel additionally supports ``prune="lb"``: an admissible O(1)
lower bound per partition (widest-column aggregates) that skips
``Core_assign`` when the bound already meets the incumbent.  Such a
partition could never run to completion under the Lines 18-20 abort,
so every observable outcome — best time, partition, assignment,
``num_completed``, efficiency — is unchanged; only ``num_lb_pruned``
and the wall clock move.  The engine/service paths enable it; the
paper-fidelity report drivers keep the plain abort so Table 1's
protocol is untouched.

This module is the *serial* sweep and the semantic reference: the
sharded driver in :mod:`repro.partition.shard` splits the same
enumeration across pool workers and merges back a
:class:`PartitionSearchResult` that is bit-identical to what the
loop below produces (the differential suite in
``tests/partition/test_shard.py`` holds it to that), reusing the
:class:`_TopK` incumbent tracker both for the shard-local thresholds
and for the deterministic replay merge.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.assign.core_assign import core_assign
from repro.exceptions import ConfigurationError
from repro.obs import span as _obs_span
from repro.partition.count import count_partitions
from repro.partition.enumerate import increment_partitions, unique_partitions
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.kernel import DenseTimeMatrix

Enumerator = Callable[[int, int], Iterator[Tuple[int, ...]]]

_ENUMERATORS: Dict[str, Enumerator] = {
    "unique": unique_partitions,
    "increment": increment_partitions,
}

#: Valid ``engine`` values: the dense-matrix fast path, and the
#: original per-partition path kept as the differential-test oracle.
ENGINES: Tuple[str, ...] = ("kernel", "legacy")

#: What a partition is scored under: ``True`` — the paper's
#: best-known-time abort; ``"lb"`` — the abort plus the kernel's
#: admissible lower-bound skip; ``False`` — no pruning (ablation).
PRUNE_MODES: Tuple[object, ...] = (True, "lb", False)


@dataclass(frozen=True)
class PartitionStats:
    """Pruning statistics for one TAM count ``B`` (one row of Table 1).

    ``num_lb_pruned`` counts partitions skipped *before* ``Core_assign``
    by the kernel's lower bound (``prune="lb"``); they are included in
    ``num_enumerated`` and can never be in ``num_completed`` (the
    bound is admissible, so a skipped partition would have aborted).
    """

    num_tams: int
    num_unique: int
    num_enumerated: int
    num_completed: int
    num_lb_pruned: int = 0

    @property
    def efficiency(self) -> float:
        """The paper's E = N_eval / P(W, B) (1.0 means no pruning)."""
        if self.num_unique == 0:
            return 0.0
        return self.num_completed / self.num_unique


@dataclass(frozen=True)
class PartitionSearchResult:
    """Outcome of a ``Partition_evaluate`` sweep.

    ``runners_up`` holds the next-best *distinct* partitions (by
    heuristic testing time) when the sweep was asked to keep them —
    the raw material for the top-k polish that mitigates the paper's
    anomaly (see :func:`repro.optimize.co_optimize.co_optimize`).
    """

    total_width: int
    best: AssignmentResult
    stats: Tuple[PartitionStats, ...]
    elapsed_seconds: float
    runners_up: Tuple[AssignmentResult, ...] = ()

    @property
    def testing_time(self) -> int:
        return self.best.testing_time

    @property
    def best_partition(self) -> Tuple[int, ...]:
        return self.best.widths

    @property
    def best_num_tams(self) -> int:
        return len(self.best.widths)

    @property
    def num_lb_pruned(self) -> int:
        """Partitions skipped by the lower bound, over all TAM counts."""
        return sum(stats.num_lb_pruned for stats in self.stats)

    def stats_for(self, num_tams: int) -> PartitionStats:
        """Statistics for one TAM count; raises ``KeyError`` if absent."""
        for stats in self.stats:
            if stats.num_tams == num_tams:
                return stats
        raise KeyError(f"no statistics recorded for B={num_tams}")


def _times_for(
    tables: Sequence[TimeTable], widths: Tuple[int, ...]
) -> List[List[int]]:
    """N x B testing-time matrix for one width partition."""
    return [
        [table.time(width) for width in widths]
        for table in tables
    ]


class _TopK:
    """The ``keep_top`` best distinct partitions seen so far.

    Distinctness is up to bus reordering (canonical sorted widths).
    The pruning threshold is the worst kept time once the list is
    full — for ``keep_top == 1`` this is exactly the paper's
    best-known-time abort.
    """

    def __init__(self, capacity: int, initial_best: Optional[int]) -> None:
        self.capacity = capacity
        self.initial_best = initial_best
        self.entries: List[AssignmentResult] = []  # sorted by time asc

    def threshold(self) -> Optional[int]:
        """Current abort threshold for ``Core_assign``."""
        kth: Optional[int] = None
        if len(self.entries) == self.capacity:
            kth = self.entries[-1].testing_time
        if self.initial_best is None:
            return kth
        if kth is None:
            return self.initial_best
        return min(kth, self.initial_best)

    def offer(self, result: AssignmentResult) -> None:
        """Insert ``result`` if it improves the kept set."""
        key = tuple(sorted(result.widths))
        for index, kept in enumerate(self.entries):
            if tuple(sorted(kept.widths)) == key:
                if result.testing_time < kept.testing_time:
                    self.entries[index] = result
                    self.entries.sort(key=lambda r: r.testing_time)
                return
        self.entries.append(result)
        self.entries.sort(key=lambda r: r.testing_time)
        del self.entries[self.capacity:]


def partition_evaluate(
    tables: Sequence[TimeTable],
    total_width: int,
    num_tams: Union[int, Iterable[int]],
    enumerator: str = "unique",
    prune: Union[bool, str] = True,
    initial_best: Optional[int] = None,
    keep_top: int = 1,
    stratify_by_tam_count: bool = False,
    engine: str = "kernel",
    dense: "Optional[DenseTimeMatrix]" = None,
) -> PartitionSearchResult:
    """Sweep width partitions, scoring each with ``Core_assign``.

    Parameters
    ----------
    tables:
        One :class:`~repro.wrapper.pareto.TimeTable` per core, covering
        widths up to ``total_width``.
    total_width:
        The SOC's TAM width budget ``W``.
    num_tams:
        Either a single TAM count ``B`` (problem P_PAW) or an iterable
        of counts, e.g. ``range(1, 11)`` (problem P_NPAW; the paper's
        experiments use ``B_max = 10``).
    enumerator:
        ``"unique"`` (default, duplicate-free) or ``"increment"`` (the
        paper's odometer, for ablation).
    prune:
        ``True`` (default) — the paper's best-known-time abort;
        ``"lb"`` — the abort plus the dense kernel's admissible
        lower-bound skip (outcome-identical, faster; requires
        ``engine="kernel"``); ``False`` — ``Core_assign`` always runs
        to completion (disables pruning level 2 for the ablation
        study).
    initial_best:
        Optional starting incumbent (cycles).
    keep_top:
        How many best *distinct* partitions to retain.  1 reproduces
        the paper exactly; larger values loosen the abort threshold to
        the k-th best time so runners-up survive for a top-k polish.
    stratify_by_tam_count:
        When True, the top-``keep_top`` list is kept *per TAM count*
        and pruning is per-count too (each B's sweep races only
        against itself).  This costs pruning efficiency but preserves
        the best candidate of every B — the diversity the final exact
        polish needs to escape the paper's wrong-B anomaly, where the
        heuristically best partition has the wrong number of TAMs.
    engine:
        ``"kernel"`` (default) — the dense time-matrix fast path of
        :mod:`repro.engine.kernel`, bit-identical to the legacy path;
        ``"legacy"`` — the original per-partition implementation,
        kept as the differential-test oracle.
    dense:
        Optional pre-built :class:`~repro.engine.kernel.
        DenseTimeMatrix` covering ``total_width`` (e.g. attached from
        the batch engine's shared-memory transport); when ``None``
        the kernel assembles one from ``tables``.

    Returns
    -------
    :class:`PartitionSearchResult` — the best assignment found, the
    runners-up (when ``keep_top > 1`` or stratified), and per-B
    pruning statistics.
    """
    if not tables:
        raise ConfigurationError("need at least one core time table")
    if total_width < 1:
        raise ConfigurationError(
            f"total_width must be >= 1, got {total_width}"
        )
    if keep_top < 1:
        raise ConfigurationError(f"keep_top must be >= 1, got {keep_top}")
    for table in tables:
        if table.max_width < total_width:
            raise ConfigurationError(
                f"time table for {table.core.name!r} covers widths up to "
                f"{table.max_width} < total width {total_width}"
            )
    try:
        enumerate_fn = _ENUMERATORS[enumerator]
    except KeyError:
        raise ConfigurationError(
            f"unknown enumerator {enumerator!r}; "
            f"choose from {sorted(_ENUMERATORS)}"
        ) from None
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    if prune not in PRUNE_MODES:
        raise ConfigurationError(
            f"prune must be one of {PRUNE_MODES}, got {prune!r}"
        )
    if prune == "lb" and engine != "kernel":
        raise ConfigurationError(
            'prune="lb" needs the dense columns of engine="kernel"'
        )

    tam_counts = (
        [num_tams] if isinstance(num_tams, int) else list(num_tams)
    )
    if not tam_counts:
        raise ConfigurationError("num_tams iterable is empty")
    for count in tam_counts:
        if count < 1:
            raise ConfigurationError(f"TAM count must be >= 1, got {count}")

    start = _time.monotonic()

    matrix = None
    workspace = None
    use_lb = prune == "lb"
    if engine == "kernel":
        # Imported lazily: repro.engine builds on this module.
        from repro.engine.kernel import (
            KernelWorkspace,
            build_dense_matrix,
            sweep_assign,
        )

        if dense is not None:
            if dense.num_cores != len(tables):
                raise ConfigurationError(
                    f"dense matrix has {dense.num_cores} rows for "
                    f"{len(tables)} tables"
                )
            if dense.total_width < total_width:
                raise ConfigurationError(
                    f"dense matrix covers widths up to "
                    f"{dense.total_width} < total width {total_width}"
                )
            matrix = dense
        else:
            matrix = build_dense_matrix(tables, total_width)
        workspace = KernelWorkspace()

    global_top = _TopK(keep_top, initial_best)
    trackers: List[_TopK] = []
    all_stats: List[PartitionStats] = []

    for count in tam_counts:
        tracker = (
            _TopK(keep_top, initial_best) if stratify_by_tam_count
            else global_top
        )
        trackers.append(tracker)
        enumerated = 0
        completed = 0
        lb_pruned = 0
        # One span per TAM count (the sweep's natural sampling
        # granularity); the per-partition loop below carries no
        # instrumentation at all — RPR001's telemetry discipline.
        with _obs_span("sweep_count", num_tams=count) as count_span:
            if count <= total_width:
                # The abort threshold only moves when a partition
                # completes and is offered, so it is cached across the
                # (overwhelmingly aborting) partitions in between.
                threshold = tracker.threshold() if prune else None
                for widths in enumerate_fn(total_width, count):
                    enumerated += 1
                    if matrix is not None:
                        if (
                            use_lb
                            and threshold is not None
                            and matrix.lower_bound(widths) >= threshold
                        ):
                            # Admissible bound: this partition could
                            # only have aborted — skip Core_assign
                            # entirely.
                            lb_pruned += 1
                            continue
                        result = sweep_assign(
                            matrix, widths, best_known=threshold,
                            workspace=workspace,
                        )
                        if result is None:
                            continue
                    else:
                        times = _times_for(tables, widths)
                        outcome = core_assign(
                            times, widths, best_known=threshold,
                        )
                        if not outcome.completed:
                            continue
                        assert outcome.result is not None
                        result = outcome.result
                    completed += 1
                    tracker.offer(result)
                    if prune:
                        threshold = tracker.threshold()
            count_span.annotate(
                enumerated=enumerated,
                completed=completed,
                lb_pruned=lb_pruned,
            )
        all_stats.append(
            PartitionStats(
                num_tams=count,
                num_unique=(
                    count_partitions(total_width, count)
                    if count <= total_width else 0
                ),
                num_enumerated=enumerated,
                num_completed=completed,
                num_lb_pruned=lb_pruned,
            )
        )

    if stratify_by_tam_count:
        entries = sorted(
            (entry for tracker in trackers for entry in tracker.entries),
            key=lambda result: result.testing_time,
        )
    else:
        entries = list(global_top.entries)

    if not entries:
        raise ConfigurationError(
            "no partition improved on initial_best="
            f"{initial_best}; nothing to return"
        )
    return PartitionSearchResult(
        total_width=total_width,
        best=entries[0],
        stats=tuple(all_stats),
        elapsed_seconds=_time.monotonic() - start,
        runners_up=tuple(entries[1:]),
    )
