"""Counting width partitions.

``P(W, B)`` — the number of ways to write ``W`` as an unordered sum of
``B`` positive integers — determines the search-space size of
``Partition_evaluate``.  The paper (Section 3.1) notes no simple exact
formula exists for general ``B`` and quotes approximations from van
Lint & Wilson [10]:

* general ``B`` (valid for W >> B):  W^(B-1) / (B! * (B-1)!);
* B = 2 (exact):                     floor(W / 2);
* B = 3 (exact):                     round(W^2 / 12).

We additionally provide the *exact* count for any (W, B) via the
classical recurrence  p(n, k) = p(n-1, k-1) + p(n-k, k), which the
efficiency study (Table 1) uses as its denominator — unlike the paper,
which had to rely on the asymptotic formula.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial

from repro.exceptions import ConfigurationError


def _check(total: int, parts: int) -> None:
    if total < 1:
        raise ConfigurationError(f"total width must be >= 1, got {total}")
    if parts < 1:
        raise ConfigurationError(f"number of parts must be >= 1, got {parts}")


@lru_cache(maxsize=None)
def _p(n: int, k: int) -> int:
    """p(n, k): partitions of n into exactly k positive parts."""
    if k == 0:
        return 1 if n == 0 else 0
    if n < k:
        return 0
    if k == n or k == 1:
        return 1
    return _p(n - 1, k - 1) + _p(n - k, k)


def count_partitions(total: int, parts: int) -> int:
    """Exact number of partitions of ``total`` into ``parts`` parts.

    >>> count_partitions(8, 4)   # 1+1+1+5, 1+1+2+4, 1+1+3+3, 1+2+2+3, 2+2+2+2
    5
    """
    _check(total, parts)
    return _p(total, parts)


def count_partitions_min(total: int, parts: int, minimum: int) -> int:
    """Partitions of ``total`` into ``parts`` parts, each >= ``minimum``.

    Subtracting ``minimum - 1`` from every part gives an ordinary
    partition, so this is ``p(total - parts*(minimum-1), parts)`` — the
    subtree-size formula the sharded enumerator uses to skip straight
    to a rank (:func:`repro.partition.enumerate.partitions_slice`).
    Zero when no such partition exists.

    >>> count_partitions_min(8, 4, 2)   # only 2+2+2+2
    1
    """
    if minimum < 1:
        raise ConfigurationError(
            f"minimum part must be >= 1, got {minimum}"
        )
    reduced = total - parts * (minimum - 1)
    if reduced < parts:
        return 0
    return _p(reduced, parts)


@lru_cache(maxsize=None)
def _bounded(total: int, parts: int, lo: int, hi: int) -> int:
    """Non-decreasing ``parts``-partitions of ``total`` in [lo, hi]."""
    if parts == 1:
        return 1 if lo <= total <= hi else 0
    if total < parts * lo or total > parts * hi:
        return 0
    return sum(
        _bounded(total - value, parts - 1, value, hi)
        for value in range(lo, min(hi, total // parts) + 1)
    )


def count_partitions_bounded(
    total: int, parts: int, lo: int, hi: int
) -> int:
    """Partitions of ``total`` into ``parts`` parts, each in [lo, hi].

    The largest part of a canonical (non-decreasing) partition is its
    last, so ``hi`` caps the *maximum* part — which is what the dense
    kernel's widest-column lower bound depends on.  The sharded
    sweep's deterministic merge counts lower-bound-pruned partitions
    analytically with this instead of replaying them one by one.

    >>> count_partitions_bounded(8, 4, 1, 3)   # 1+1+3+3, 1+2+2+3, 2+2+2+2
    3
    """
    _check(total, parts)
    if lo < 1:
        raise ConfigurationError(f"lo must be >= 1, got {lo}")
    if hi < lo:
        return 0
    return _bounded(total, parts, lo, hi)


def count_partitions_up_to(total: int, max_parts: int) -> int:
    """Partitions of ``total`` into at most ``max_parts`` parts.

    The size of the full P_NPAW search space for ``B_max = max_parts``.
    """
    _check(total, max_parts)
    return sum(_p(total, parts) for parts in range(1, max_parts + 1))


def approx_partitions(total: int, parts: int) -> float:
    """The paper's asymptotic estimate  W^(B-1) / (B! (B-1)!).

    Accurate only for ``total`` much larger than ``parts`` (the paper
    restricts its Table 1 to W >= 44 for this reason).
    """
    _check(total, parts)
    return total ** (parts - 1) / (factorial(parts) * factorial(parts - 1))


def partitions_two(total: int) -> int:
    """Exact count for B = 2: floor(W / 2)."""
    _check(total, 2)
    return total // 2


def partitions_three(total: int) -> int:
    """Exact count for B = 3: round(W^2 / 12) (nearest integer)."""
    _check(total, 3)
    value = total * total / 12.0
    return int(value + 0.5)
