"""Counting width partitions.

``P(W, B)`` — the number of ways to write ``W`` as an unordered sum of
``B`` positive integers — determines the search-space size of
``Partition_evaluate``.  The paper (Section 3.1) notes no simple exact
formula exists for general ``B`` and quotes approximations from van
Lint & Wilson [10]:

* general ``B`` (valid for W >> B):  W^(B-1) / (B! * (B-1)!);
* B = 2 (exact):                     floor(W / 2);
* B = 3 (exact):                     round(W^2 / 12).

We additionally provide the *exact* count for any (W, B) via the
classical recurrence  p(n, k) = p(n-1, k-1) + p(n-k, k), which the
efficiency study (Table 1) uses as its denominator — unlike the paper,
which had to rely on the asymptotic formula.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial

from repro.exceptions import ConfigurationError


def _check(total: int, parts: int) -> None:
    if total < 1:
        raise ConfigurationError(f"total width must be >= 1, got {total}")
    if parts < 1:
        raise ConfigurationError(f"number of parts must be >= 1, got {parts}")


@lru_cache(maxsize=None)
def _p(n: int, k: int) -> int:
    """p(n, k): partitions of n into exactly k positive parts."""
    if k == 0:
        return 1 if n == 0 else 0
    if n < k:
        return 0
    if k == n or k == 1:
        return 1
    return _p(n - 1, k - 1) + _p(n - k, k)


def count_partitions(total: int, parts: int) -> int:
    """Exact number of partitions of ``total`` into ``parts`` parts.

    >>> count_partitions(8, 4)   # 1+1+1+5, 1+1+2+4, 1+1+3+3, 1+2+2+3, 2+2+2+2
    5
    """
    _check(total, parts)
    return _p(total, parts)


def count_partitions_up_to(total: int, max_parts: int) -> int:
    """Partitions of ``total`` into at most ``max_parts`` parts.

    The size of the full P_NPAW search space for ``B_max = max_parts``.
    """
    _check(total, max_parts)
    return sum(_p(total, parts) for parts in range(1, max_parts + 1))


def approx_partitions(total: int, parts: int) -> float:
    """The paper's asymptotic estimate  W^(B-1) / (B! (B-1)!).

    Accurate only for ``total`` much larger than ``parts`` (the paper
    restricts its Table 1 to W >= 44 for this reason).
    """
    _check(total, parts)
    return total ** (parts - 1) / (factorial(parts) * factorial(parts - 1))


def partitions_two(total: int) -> int:
    """Exact count for B = 2: floor(W / 2)."""
    _check(total, 2)
    return total // 2


def partitions_three(total: int) -> int:
    """Exact count for B = 3: round(W^2 / 12) (nearest integer)."""
    _check(total, 3)
    value = total * total / 12.0
    return int(value + 0.5)
