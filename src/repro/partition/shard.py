"""Sharded ``Partition_evaluate`` — one sweep split across workers.

:func:`~repro.partition.evaluate.partition_evaluate` walks one job's
whole partition space serially; for a single hot (SOC, W, B) job that
leaves every other pool worker idle.  This module splits the canonical
enumeration into contiguous rank ranges ("shards") that score
independently over one shared :class:`~repro.engine.kernel.
DenseTimeMatrix`, then merges the per-shard outcomes back into a
:class:`~repro.partition.evaluate.PartitionSearchResult` that is
**bit-identical** to the serial sweep's — best time, best partition,
assignment, runners-up order, and every :class:`~repro.partition.
evaluate.PartitionStats` counter.

The protocol rests on three facts about the serial sweep:

1. **Completion is a prefix property.**  A partition completes iff its
   heuristic time beats the incumbent, and the incumbent is exactly
   the running (top-k) minimum of the heuristic times of all
   *earlier* partitions.  So "which partitions complete" depends only
   on the enumeration order, not on who evaluates them.
2. **Looser thresholds are safe.**  A shard scoring its range under
   any abort threshold that is *never tighter* than the serial
   threshold completes a superset of the serial completions, each
   with its exact time and assignment.  The merge replays the
   recorded completions in serial rank order and keeps exactly those
   the serial incumbent trajectory would have kept, discarding the
   extras.  Shards therefore only ever share incumbents **forward**:
   shard ``s`` reads candidates published by shards ``< s`` (all of
   whose partitions precede ``s``'s in serial order) — that is what
   the incumbent board broadcasts, and why losing a broadcast can
   only cost speed, never change a result.
3. **Lower-bound pruning is analytically countable.**  The kernel's
   ``prune="lb"`` bound depends on a partition only through its bus
   count and largest part, and is monotone in the largest part; the
   canonical order makes the largest part the final one.  So between
   two serial completions the threshold is constant and the pruned
   count is "ranks in segment with last part <= cutoff", which
   :func:`~repro.partition.enumerate.count_slice_max_at_most` answers
   without enumerating.  Shards may skip lower-bounded partitions
   under their own (safe) thresholds without recording them.

Everything here is process-free: :func:`sweep_shard` is the worker
payload (the engine runs it on pool workers over the shared-memory
matrix and incumbent board, :mod:`repro.engine.batch` /
:mod:`repro.engine.shm`), and :func:`sharded_partition_evaluate` runs
the whole protocol inline — the differential-test surface, and the
single-process reference for the merge semantics.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.kernel import (
    DenseTimeMatrix,
    KernelWorkspace,
    build_dense_matrix,
    sweep_assign,
)
from repro.exceptions import ConfigurationError
from repro.partition.count import count_partitions
from repro.partition.enumerate import (
    count_slice_max_at_most,
    partitions_slice,
)
from repro.partition.evaluate import (
    PRUNE_MODES,
    PartitionSearchResult,
    PartitionStats,
    _TopK,
)
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable

#: How many partitions a shard scores between incumbent-board reads.
#: Staleness is pure slack — a stale threshold is looser, and looser
#: thresholds never change the merged outcome (fact 2 above).
BOARD_REFRESH_INTERVAL = 32


def count_sizes(
    total_width: int, tam_counts: Sequence[int]
) -> List[int]:
    """Enumeration size per TAM count (0 when count > width).

    The one statement of the rule — shared by the shard planner, the
    merge's stats reconstruction, and the engine's auto-shard
    eligibility test, which must never disagree about it.
    """
    return [
        count_partitions(total_width, count)
        if count <= total_width else 0
        for count in tam_counts
    ]


@dataclass(frozen=True)
class ShardSpan:
    """One contiguous rank range of one TAM count's enumeration.

    ``count_index`` is the position in the sweep's ``tam_counts``
    (counts may repeat), ``num_tams`` its value, and ``[start, stop)``
    the canonical ranks this span covers.
    """

    count_index: int
    num_tams: int
    start: int
    stop: int


@dataclass(frozen=True)
class ShardPlan:
    """The whole sweep cut into per-shard span lists.

    Shards partition the concatenation of every TAM count's
    enumeration (counts in sweep order, ranks ascending) into
    contiguous, nearly equal ranges; shard order *is* serial order.
    """

    total_width: int
    tam_counts: Tuple[int, ...]
    shards: Tuple[Tuple[ShardSpan, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def count_sizes(self) -> List[int]:
        """Enumeration size per TAM count (0 when count > width)."""
        return count_sizes(self.total_width, self.tam_counts)


@dataclass(frozen=True)
class ShardCompletion:
    """One partition a shard ran to completion, with its exact score."""

    count_index: int
    rank: int
    result: AssignmentResult


@dataclass(frozen=True)
class ShardOutcome:
    """Everything one scored shard reports back for the merge."""

    shard_index: int
    completions: Tuple[ShardCompletion, ...]
    elapsed_seconds: float


class Board(Protocol):
    """What a cross-shard incumbent board must provide.

    Satisfied structurally by :class:`LocalBoard` and by the
    shared-memory :class:`repro.engine.shm.IncumbentBoard`.
    """

    def publish(
        self, shard_index: int, times: Sequence[int]
    ) -> None:
        """Record ``shard_index``'s current kept times (ascending)."""

    def earlier_times(self, shard_index: int) -> List[int]:
        """Every time published by shards before ``shard_index``."""


class LocalBoard:
    """In-process incumbent board (inline runs and tests).

    Same contract as the shared-memory board
    (:class:`repro.engine.shm.IncumbentBoard`): each shard publishes
    its current best times into its own slot, and reads only the
    slots of *earlier* shards.
    """

    def __init__(self, num_shards: int, keep_top: int = 1) -> None:
        self.keep_top = keep_top
        self._slots: List[List[int]] = [[] for _ in range(num_shards)]

    def publish(self, shard_index: int, times: Sequence[int]) -> None:
        """Record ``shard_index``'s current kept times (ascending)."""
        self._slots[shard_index] = list(times)[:self.keep_top]

    def earlier_times(self, shard_index: int) -> List[int]:
        """Every time published by shards before ``shard_index``."""
        return [
            value
            for slot in self._slots[:shard_index]
            for value in slot
        ]


def plan_shards(
    total_width: int,
    tam_counts: Sequence[int],
    num_shards: int,
) -> ShardPlan:
    """Cut a sweep's enumeration into ``num_shards`` contiguous ranges.

    Ranges are balanced by partition count over the concatenated
    per-count enumerations; a shard may straddle count boundaries.
    Counts larger than ``total_width`` contribute nothing (the serial
    sweep enumerates nothing for them either).
    """
    counts = tuple(tam_counts)
    if not counts:
        raise ConfigurationError("num_tams iterable is empty")
    for count in counts:
        if count < 1:
            raise ConfigurationError(
                f"TAM count must be >= 1, got {count}"
            )
    if num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    sizes = count_sizes(total_width, counts)
    total = sum(sizes)
    num_shards = max(1, min(num_shards, total))
    shards: List[Tuple[ShardSpan, ...]] = []
    for shard in range(num_shards):
        lo = shard * total // num_shards
        hi = (shard + 1) * total // num_shards
        spans: List[ShardSpan] = []
        offset = 0
        for index, (count, size) in enumerate(zip(counts, sizes)):
            start = max(lo, offset)
            stop = min(hi, offset + size)
            if start < stop:
                spans.append(ShardSpan(
                    count_index=index,
                    num_tams=count,
                    start=start - offset,
                    stop=stop - offset,
                ))
            offset += size
        shards.append(tuple(spans))
    return ShardPlan(
        total_width=total_width, tam_counts=counts,
        shards=tuple(shards),
    )


def _shared_threshold(
    tracker: _TopK,
    board: Optional[Board],
    shard_index: int,
    keep_top: int,
) -> Optional[int]:
    """The shard's current abort threshold — never tighter than serial.

    The k-th smallest over the shard's own kept times plus every time
    published by *earlier* shards, capped by the tracker's own
    threshold (which already folds in ``initial_best``).  Every value
    entering the min is the true heuristic time of a partition that
    precedes this shard's range in serial order, so the result is
    always >= the serial threshold at any rank this shard scores.
    """
    local = tracker.threshold()
    if board is None:
        return local
    earlier = board.earlier_times(shard_index)
    if not earlier:
        return local
    candidates = sorted(
        earlier + [entry.testing_time for entry in tracker.entries]
    )
    if len(candidates) < keep_top:
        return local
    shared = candidates[keep_top - 1]
    if local is None or shared < local:
        return shared
    return local


def sweep_shard(
    matrix: DenseTimeMatrix,
    spans: Sequence[ShardSpan],
    shard_index: int,
    total_width: int,
    keep_top: int = 1,
    initial_best: Optional[int] = None,
    prune: Union[bool, str] = True,
    board: Optional[Board] = None,
    workspace: Optional[KernelWorkspace] = None,
) -> ShardOutcome:
    """Score one shard's spans; the pool-worker payload.

    Runs the kernel sweep over the shard's ranks under a threshold
    that is safe by construction (own prefix + earlier shards'
    broadcasts, see :func:`_shared_threshold`), records every
    completion with its exact result, and publishes its own kept
    times after each one.  Under ``prune=False`` every partition
    completes, so recording them all would ship the whole partition
    space back to the parent; instead only the shard's *final* top-k
    is reported — lossless, because an entry evicted from (or never
    admitted to) a shard's top-k is rejected by the serial tracker at
    the same offer, the shard's entries being a subset of the serial
    tracker's at every rank — and the merge restores the per-count
    completion totals analytically (everything completes).
    """
    start_clock = _time.monotonic()
    use_lb = prune == "lb"
    tracker = _TopK(keep_top, initial_best)
    workspace = workspace or KernelWorkspace()
    completions: List[ShardCompletion] = []
    #: prune=False: widths-key → latest kept completion (see above).
    kept: Dict[Tuple[int, ...], ShardCompletion] = {}
    for span in spans:
        threshold = (
            _shared_threshold(tracker, board, shard_index, keep_top)
            if prune else None
        )
        since_refresh = 0
        for offset, widths in enumerate(partitions_slice(
            total_width, span.num_tams, span.start, span.stop,
        )):
            if prune and board is not None:
                since_refresh += 1
                if since_refresh >= BOARD_REFRESH_INTERVAL:
                    since_refresh = 0
                    threshold = _shared_threshold(
                        tracker, board, shard_index, keep_top
                    )
            if (
                use_lb
                and threshold is not None
                and matrix.lower_bound(widths) >= threshold
            ):
                continue
            result = sweep_assign(
                matrix, widths, best_known=threshold,
                workspace=workspace,
            )
            if result is None:
                continue
            completion = ShardCompletion(
                count_index=span.count_index,
                rank=span.start + offset,
                result=result,
            )
            tracker.offer(result)
            if prune:
                completions.append(completion)
            elif any(
                entry is result for entry in tracker.entries
            ):
                kept[tuple(sorted(result.widths))] = completion
            if prune:
                # Unpruned sweeps never read thresholds, so there
                # is nothing worth broadcasting either.
                if board is not None:
                    board.publish(shard_index, [
                        entry.testing_time
                        for entry in tracker.entries
                    ])
                threshold = _shared_threshold(
                    tracker, board, shard_index, keep_top
                )
    if not prune and kept:
        final_keys = {
            tuple(sorted(entry.widths)) for entry in tracker.entries
        }
        completions = sorted(
            (
                completion for key, completion in kept.items()
                if key in final_keys
            ),
            key=lambda c: (c.count_index, c.rank),
        )
    return ShardOutcome(
        shard_index=shard_index,
        completions=tuple(completions),
        elapsed_seconds=_time.monotonic() - start_clock,
    )


def _lb_cutoff(
    matrix: DenseTimeMatrix,
    num_tams: int,
    total_width: int,
    threshold: int,
) -> int:
    """Largest max-part whose lower bound meets ``threshold`` (0: none).

    ``lower_bound_for_max`` is monotone non-increasing in the max
    part, so the set of pruned max-parts is a prefix — found by
    binary search over the exact predicate the serial sweep tests.
    """
    lo, hi = 1, total_width
    if matrix.lower_bound_for_max(1, num_tams) < threshold:
        return 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if matrix.lower_bound_for_max(mid, num_tams) >= threshold:
            lo = mid
        else:
            hi = mid - 1
    return lo


def merge_shard_outcomes(
    matrix: DenseTimeMatrix,
    plan: ShardPlan,
    outcomes: Sequence[ShardOutcome],
    keep_top: int = 1,
    initial_best: Optional[int] = None,
    prune: Union[bool, str] = True,
    elapsed_seconds: Optional[float] = None,
) -> PartitionSearchResult:
    """Deterministically merge shard outcomes into the serial result.

    Replays the recorded completions in serial rank order against a
    fresh incumbent tracker: exactly the completions the serial sweep
    would have kept survive (extras recorded under looser shard
    thresholds are discarded), reproducing ``num_completed``, the
    best result and the runners-up order bit-for-bit.  Under
    ``prune="lb"`` the pruned counts are reconstructed analytically
    per threshold segment (see module docstring, fact 3).
    """
    start_clock = _time.monotonic()
    use_lb = prune == "lb"
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    if len(ordered) != plan.num_shards:
        raise ConfigurationError(
            f"{len(ordered)} outcomes for a {plan.num_shards}-shard plan"
        )
    per_count: List[List[ShardCompletion]] = [
        [] for _ in plan.tam_counts
    ]
    for outcome in ordered:
        for completion in outcome.completions:
            per_count[completion.count_index].append(completion)
    sizes = plan.count_sizes()

    tracker = _TopK(keep_top, initial_best)
    stats: List[PartitionStats] = []
    for index, count in enumerate(plan.tam_counts):
        size = sizes[index]
        completed = 0
        threshold = tracker.threshold() if prune else None
        # (first rank, active threshold) per constant-threshold
        # segment of this count's enumeration — the trajectory the
        # analytic lb accounting integrates over.
        segments: List[Tuple[int, Optional[int]]] = [(0, threshold)]
        previous_rank = -1
        for completion in per_count[index]:
            if completion.rank <= previous_rank:
                raise ConfigurationError(
                    f"shard completions out of order for B={count}: "
                    f"rank {completion.rank} after {previous_rank}"
                )
            previous_rank = completion.rank
            result = completion.result
            if threshold is not None \
                    and result.testing_time >= threshold:
                continue  # an extra: serial would have aborted it
            completed += 1
            tracker.offer(result)
            if prune:
                updated = tracker.threshold()
                if updated != threshold:
                    threshold = updated
                    segments.append((completion.rank + 1, threshold))
        if not prune:
            # No pruning: the serial sweep runs every partition to
            # completion.  Shards only report their final top-k
            # (see sweep_shard), so the count is analytic.
            completed = size
        lb_pruned = 0
        if use_lb and size:
            # The tightest bound any partition of this count attains
            # is at the smallest feasible max part, ceil(W/B); when
            # even that one misses a segment's threshold, nothing in
            # the segment was pruned — the common case on sweeps
            # where the abort beats the bound, answered by one
            # cached column-stats lookup instead of rank counting.
            min_max_part = -(-plan.total_width // count)
            boundaries = [start for start, _ in segments[1:]] + [size]
            for (seg_start, seg_threshold), seg_stop in zip(
                segments, boundaries
            ):
                if seg_threshold is None or seg_start >= seg_stop:
                    continue
                if matrix.lower_bound_for_max(
                    min_max_part, count
                ) < seg_threshold:
                    continue
                cutoff = _lb_cutoff(
                    matrix, count, plan.total_width, seg_threshold
                )
                if cutoff < min_max_part:
                    continue
                lb_pruned += (
                    count_slice_max_at_most(
                        plan.total_width, count, seg_stop, cutoff
                    )
                    - count_slice_max_at_most(
                        plan.total_width, count, seg_start, cutoff
                    )
                )
        stats.append(PartitionStats(
            num_tams=count,
            num_unique=size,
            num_enumerated=size,
            num_completed=completed,
            num_lb_pruned=lb_pruned,
        ))

    entries = list(tracker.entries)
    if not entries:
        raise ConfigurationError(
            "no partition improved on initial_best="
            f"{initial_best}; nothing to return"
        )
    if elapsed_seconds is None:
        elapsed_seconds = _time.monotonic() - start_clock
    return PartitionSearchResult(
        total_width=plan.total_width,
        best=entries[0],
        stats=tuple(stats),
        elapsed_seconds=elapsed_seconds,
        runners_up=tuple(entries[1:]),
    )


#: A scorer turns a plan into outcomes — inline here, pool workers in
#: :mod:`repro.engine.batch`.
ShardScorer = Callable[[ShardPlan], Sequence[ShardOutcome]]


def sharded_partition_evaluate(
    tables: Optional[Sequence[TimeTable]],
    total_width: int,
    num_tams: Union[int, Sequence[int]],
    num_shards: int,
    prune: Union[bool, str] = True,
    initial_best: Optional[int] = None,
    keep_top: int = 1,
    dense: Optional[DenseTimeMatrix] = None,
    scorer: Optional[ShardScorer] = None,
    board: object = "local",
) -> PartitionSearchResult:
    """The sharded sweep end to end, bit-identical to the serial one.

    With the default inline ``scorer`` the shards run sequentially in
    this process over a :class:`LocalBoard` (pass ``board=None`` to
    ablate incumbent sharing — outcomes are identical, only the work
    per shard grows).  The engine passes a ``scorer`` that fans the
    shards out to its pool workers over shared memory.

    Restrictions mirror what the protocol's determinism proof needs:
    the canonical ``unique`` enumeration, the kernel engine, and no
    per-count stratification — exactly the production defaults.
    """
    start_clock = _time.monotonic()
    if keep_top < 1:
        raise ConfigurationError(
            f"keep_top must be >= 1, got {keep_top}"
        )
    if prune not in PRUNE_MODES:
        # Same rejection as the serial sweep: a job must fail or
        # succeed identically at every shard setting.
        raise ConfigurationError(
            f"prune must be one of {PRUNE_MODES}, got {prune!r}"
        )
    if dense is None:
        if not tables:
            raise ConfigurationError(
                "need tables or a dense matrix to sweep over"
            )
        dense = build_dense_matrix(tables, total_width)
    counts = (
        (num_tams,) if isinstance(num_tams, int) else tuple(num_tams)
    )
    plan = plan_shards(total_width, counts, num_shards)
    if scorer is None:
        if board == "local":
            board = LocalBoard(plan.num_shards, keep_top)
        workspace = KernelWorkspace()
        outcomes: Sequence[ShardOutcome] = [
            sweep_shard(
                dense, spans, index, total_width,
                keep_top=keep_top, initial_best=initial_best,
                prune=prune, board=board, workspace=workspace,
            )
            for index, spans in enumerate(plan.shards)
        ]
    else:
        outcomes = scorer(plan)
    return merge_shard_outcomes(
        dense, plan, outcomes,
        keep_top=keep_top, initial_best=initial_best, prune=prune,
        elapsed_seconds=_time.monotonic() - start_clock,
    )
