"""Generating TAM width partitions.

Two full enumerators, plus the rank machinery that lets the sharded
partition sweep (:mod:`repro.partition.shard`) split the canonical
enumeration into contiguous index ranges without paying for the
skipped prefix:

* :func:`partitions_slice` — the partitions with rank in
  ``[start, stop)`` of the canonical order, skipping to ``start`` in
  O(W·B) counting steps instead of enumerating the prefix;
* :func:`count_slice_max_at_most` — how many partitions of rank
  ``< stop`` have their largest part bounded, which is what turns the
  kernel's widest-column lower bound into an *analytically* countable
  pruning statistic.

Two enumerators:

* :func:`unique_partitions` — canonical enumeration of partitions in
  non-decreasing part order; emits every unique partition exactly
  once.  This is what the production pipeline uses.

* :func:`increment_partitions` — the paper's recursive ``Increment``
  odometer (Fig. 3).  Loop variables ``w_1 .. w_{B-1}`` each range
  from 1 up to the Line-1 bound  floor((W - sum of earlier parts) /
  (B - i + 1)), and ``w_B`` takes the remainder.  The bound suppresses
  "a sizeable number" of duplicate (reordered) partitions but not all
  of them — e.g. for W=9, B=3 it emits both (1,2,6) and (2,1,6).
  Kept verbatim for the fidelity/ablation study
  (``benchmarks/bench_ablation_pruning.py``).

Both yield tuples of length ``parts`` summing to ``total`` with every
part >= 1, and both match the paper's worked example: for W=8, B=4
the first three partitions are (1,1,1,5), (1,1,2,4), (1,1,3,3), and
the reordering (1,3,1,3) of (1,1,3,3) is never emitted (the Line-1
bound caps w_2 at 2).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.exceptions import ConfigurationError
from repro.partition.count import (
    count_partitions,
    count_partitions_bounded,
    count_partitions_min,
)


def _check(total: int, parts: int) -> None:
    if total < 1:
        raise ConfigurationError(f"total width must be >= 1, got {total}")
    if parts < 1:
        raise ConfigurationError(f"number of parts must be >= 1, got {parts}")
    if parts > total:
        raise ConfigurationError(
            f"cannot split width {total} into {parts} buses of width >= 1"
        )


def unique_partitions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """Every partition of ``total`` into ``parts`` parts, exactly once.

    Parts are emitted in non-decreasing order within each tuple;
    tuples are emitted in lexicographic order.

    >>> list(unique_partitions(8, 4))
    [(1, 1, 1, 5), (1, 1, 2, 4), (1, 1, 3, 3), (1, 2, 2, 3), (2, 2, 2, 2)]
    """
    _check(total, parts)

    def recurse(
        remaining: int, slots: int, minimum: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        if slots == 1:
            yield prefix + (remaining,)
            return
        # Largest value keeping the suffix non-decreasing and feasible.
        upper = remaining // slots
        for value in range(minimum, upper + 1):
            yield from recurse(
                remaining - value, slots - 1, value, prefix + (value,)
            )

    yield from recurse(total, parts, 1, ())


def increment_partitions(
    total: int, parts: int
) -> Iterator[Tuple[int, ...]]:
    """The paper's ``Increment`` odometer, duplicates and all.

    >>> list(increment_partitions(9, 3))[:4]
    [(1, 1, 7), (1, 2, 6), (1, 3, 5), (1, 4, 4)]
    >>> (2, 1, 6) in list(increment_partitions(9, 3))  # surviving duplicate
    True
    """
    _check(total, parts)

    def recurse(
        remaining: int, position: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        slots_left = parts - position + 1
        if slots_left == 1:
            yield prefix + (remaining,)
            return
        # Line 1 of Increment: w_position may not exceed the average
        # of what is left for it and all later parts.
        upper = remaining // slots_left
        for value in range(1, upper + 1):
            yield from recurse(remaining - value, position + 1,
                               prefix + (value,))

    yield from recurse(total, 1, ())


def partitions_slice(
    total: int, parts: int, start: int, stop: int
) -> Iterator[Tuple[int, ...]]:
    """Partitions of rank ``[start, stop)`` in canonical order.

    Identical to ``list(unique_partitions(total, parts))[start:stop]``,
    but the prefix is *skipped*, not enumerated: at every level of the
    recursion whole subtrees are jumped over by their counted size
    (:func:`~repro.partition.count.count_partitions_min`), so seeking
    costs O(total · parts) counting steps.  This is what lets the
    sharded sweep hand each worker a contiguous index range.

    >>> list(partitions_slice(8, 4, 1, 3))
    [(1, 1, 2, 4), (1, 1, 3, 3)]
    >>> list(partitions_slice(8, 4, 0, 5)) == list(unique_partitions(8, 4))
    True
    """
    _check(total, parts)
    available = count_partitions(total, parts)
    if not 0 <= start <= stop <= available:
        raise ConfigurationError(
            f"slice [{start}, {stop}) outside the {available} "
            f"partitions of {total} into {parts} parts"
        )
    budget = stop - start
    if budget == 0:
        return

    def recurse(
        remaining: int, slots: int, minimum: int,
        prefix: Tuple[int, ...], skip: int,
    ) -> Iterator[Tuple[int, ...]]:
        if slots == 1:
            yield prefix + (remaining,)
            return
        upper = remaining // slots
        for value in range(minimum, upper + 1):
            size = count_partitions_min(
                remaining - value, slots - 1, value
            )
            if skip >= size:
                skip -= size
                continue
            yield from recurse(
                remaining - value, slots - 1, value,
                prefix + (value,), skip,
            )
            skip = 0

    emitted = 0
    for widths in recurse(total, parts, 1, (), start):
        yield widths
        emitted += 1
        if emitted == budget:
            return


def count_slice_max_at_most(
    total: int, parts: int, stop: int, max_part: int
) -> int:
    """How many of the first ``stop`` partitions have max part <= ``max_part``.

    Counts over the canonical order's ranks ``[0, stop)`` without
    enumerating: full subtrees contribute their bounded count
    (:func:`~repro.partition.count.count_partitions_bounded`), and
    only the single boundary path of partition ``stop`` is walked.
    The canonical order emits parts non-decreasing, so the largest
    part is the last one.

    The sharded sweep's merge uses this to reproduce the serial
    sweep's ``num_lb_pruned`` exactly: the kernel's widest-column
    lower bound is monotone in the max part, so "lower bound >=
    threshold" is "max part <= cutoff", countable per enumeration
    segment in O(W·B).

    >>> count_slice_max_at_most(8, 4, 5, 3)  # of all 5: 113x, 1223, 2222
    3
    >>> count_slice_max_at_most(8, 4, 2, 4)  # of 1115, 1124: just 1124
    1
    """
    _check(total, parts)
    available = count_partitions(total, parts)
    if not 0 <= stop <= available:
        raise ConfigurationError(
            f"stop rank {stop} outside the {available} partitions "
            f"of {total} into {parts} parts"
        )
    if stop == 0 or max_part < 1:
        return 0

    def recurse(
        remaining: int, slots: int, minimum: int, limit: int
    ) -> int:
        if slots == 1:
            # One leaf, rank 0; within the limit iff limit >= 1.
            return 1 if limit >= 1 and remaining <= max_part else 0
        counted = 0
        for value in range(minimum, remaining // slots + 1):
            size = count_partitions_min(
                remaining - value, slots - 1, value
            )
            if limit >= size:
                limit -= size
                if value <= max_part:
                    counted += count_partitions_bounded(
                        remaining - value, slots - 1, value, max_part
                    )
                if limit == 0:
                    break
                continue
            if value <= max_part:
                counted += recurse(
                    remaining - value, slots - 1, value, limit
                )
            break
        return counted

    return recurse(total, parts, 1, stop)


def is_valid_partition(widths: Tuple[int, ...], total: int) -> bool:
    """True when ``widths`` is a legal partition of ``total``."""
    return (
        len(widths) >= 1
        and all(width >= 1 for width in widths)
        and sum(widths) == total
    )
