"""Generating TAM width partitions.

Two enumerators:

* :func:`unique_partitions` — canonical enumeration of partitions in
  non-decreasing part order; emits every unique partition exactly
  once.  This is what the production pipeline uses.

* :func:`increment_partitions` — the paper's recursive ``Increment``
  odometer (Fig. 3).  Loop variables ``w_1 .. w_{B-1}`` each range
  from 1 up to the Line-1 bound  floor((W - sum of earlier parts) /
  (B - i + 1)), and ``w_B`` takes the remainder.  The bound suppresses
  "a sizeable number" of duplicate (reordered) partitions but not all
  of them — e.g. for W=9, B=3 it emits both (1,2,6) and (2,1,6).
  Kept verbatim for the fidelity/ablation study
  (``benchmarks/bench_ablation_pruning.py``).

Both yield tuples of length ``parts`` summing to ``total`` with every
part >= 1, and both match the paper's worked example: for W=8, B=4
the first three partitions are (1,1,1,5), (1,1,2,4), (1,1,3,3), and
the reordering (1,3,1,3) of (1,1,3,3) is never emitted (the Line-1
bound caps w_2 at 2).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.exceptions import ConfigurationError


def _check(total: int, parts: int) -> None:
    if total < 1:
        raise ConfigurationError(f"total width must be >= 1, got {total}")
    if parts < 1:
        raise ConfigurationError(f"number of parts must be >= 1, got {parts}")
    if parts > total:
        raise ConfigurationError(
            f"cannot split width {total} into {parts} buses of width >= 1"
        )


def unique_partitions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """Every partition of ``total`` into ``parts`` parts, exactly once.

    Parts are emitted in non-decreasing order within each tuple;
    tuples are emitted in lexicographic order.

    >>> list(unique_partitions(8, 4))
    [(1, 1, 1, 5), (1, 1, 2, 4), (1, 1, 3, 3), (1, 2, 2, 3), (2, 2, 2, 2)]
    """
    _check(total, parts)

    def recurse(
        remaining: int, slots: int, minimum: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        if slots == 1:
            yield prefix + (remaining,)
            return
        # Largest value keeping the suffix non-decreasing and feasible.
        upper = remaining // slots
        for value in range(minimum, upper + 1):
            yield from recurse(
                remaining - value, slots - 1, value, prefix + (value,)
            )

    yield from recurse(total, parts, 1, ())


def increment_partitions(
    total: int, parts: int
) -> Iterator[Tuple[int, ...]]:
    """The paper's ``Increment`` odometer, duplicates and all.

    >>> list(increment_partitions(9, 3))[:4]
    [(1, 1, 7), (1, 2, 6), (1, 3, 5), (1, 4, 4)]
    >>> (2, 1, 6) in list(increment_partitions(9, 3))  # surviving duplicate
    True
    """
    _check(total, parts)

    def recurse(
        remaining: int, position: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        slots_left = parts - position + 1
        if slots_left == 1:
            yield prefix + (remaining,)
            return
        # Line 1 of Increment: w_position may not exceed the average
        # of what is left for it and all later parts.
        upper = remaining // slots_left
        for value in range(1, upper + 1):
            yield from recurse(remaining - value, position + 1,
                               prefix + (value,))

    yield from recurse(total, 1, ())


def is_valid_partition(widths: Tuple[int, ...], total: int) -> bool:
    """True when ``widths`` is a legal partition of ``total``."""
    return (
        len(widths) >= 1
        and all(width >= 1 for width in widths)
        and sum(widths) == total
    )
