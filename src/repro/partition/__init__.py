"""TAM width partitioning (problems :math:`P_{PAW}` and :math:`P_{NPAW}`).

* :mod:`~repro.partition.count` — counting width partitions: the exact
  number (dynamic programming) and the approximations the paper quotes
  from partition theory [10];
* :mod:`~repro.partition.enumerate` — generating partitions: the
  canonical unique enumeration, and the paper's recursive ``Increment``
  odometer with its Line-1 upper bound (which suppresses many but not
  all duplicates — kept for the ablation study);
* :mod:`~repro.partition.evaluate` — ``Partition_evaluate`` (Fig. 3):
  sweep partitions across TAM counts, scoring each with ``Core_assign``
  under the shared best-known-time abort;
* :mod:`~repro.partition.shard` — the same sweep split into
  contiguous rank ranges that score independently (the batch
  engine's intra-job parallelism), with a shared incumbent and a
  deterministic merge that reproduces the serial result
  bit-for-bit.
"""

from repro.partition.count import (
    count_partitions,
    approx_partitions,
    partitions_two,
    partitions_three,
)
from repro.partition.enumerate import (
    unique_partitions,
    increment_partitions,
)
from repro.partition.evaluate import (
    PartitionSearchResult,
    PartitionStats,
    partition_evaluate,
)

__all__ = [
    "count_partitions",
    "approx_partitions",
    "partitions_two",
    "partitions_three",
    "unique_partitions",
    "increment_partitions",
    "PartitionSearchResult",
    "PartitionStats",
    "partition_evaluate",
]
