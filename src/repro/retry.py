"""Deterministic retry backoff schedules.

Every retry loop in the service and engine layers sleeps according to
a schedule computed here — never an ad-hoc ``time.sleep`` with magic
literals.  That buys three things:

* **Determinism** — the schedule is a pure function of its arguments
  (the jitter stream comes from an explicitly seeded
  :class:`random.Random`), so fault-injection tests can predict and
  assert every delay, and RPR001 stays green (no global entropy).
* **Boundedness** — a schedule is a finite tuple; a loop that walks
  it terminates.  The RPR008 lint rule enforces that service/engine
  code sleeps only on schedule-derived values.
* **Cap discipline** — exponential growth is clamped to ``cap`` so a
  long outage costs bounded per-attempt latency, not runaway waits.

The module deliberately lives at the package root (not under
``repro.engine``): the service client imports it too, and must not
pull in the engine's process-pool machinery to compute a sleep.
"""

from __future__ import annotations

import random
from typing import Tuple

__all__ = ["backoff_schedule"]

#: Defaults shared by every retry site; chosen so the full default
#: 5-attempt schedule waits well under 2 s in total.
DEFAULT_BASE = 0.05
DEFAULT_FACTOR = 2.0
DEFAULT_CAP = 1.0


def backoff_schedule(
    attempts: int,
    *,
    base: float = DEFAULT_BASE,
    factor: float = DEFAULT_FACTOR,
    cap: float = DEFAULT_CAP,
    jitter: float = 0.0,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Return the delays (seconds) before each of ``attempts`` retries.

    Delay ``i`` is ``min(cap, base * factor**i)``, optionally spread
    by a multiplicative jitter drawn from a :class:`random.Random`
    seeded with ``seed`` — the same arguments always produce the same
    schedule, so tests can assert exact sleep sequences.

    Parameters
    ----------
    attempts:
        Number of retries the caller intends to make; also the length
        of the returned tuple.  ``0`` returns an empty schedule.
    base / factor / cap:
        Exponential parameters: first delay ``base``, growing by
        ``factor`` per attempt, clamped to ``cap``.
    jitter:
        Fraction of each delay to spread uniformly (``0.1`` → each
        delay multiplied by a seeded uniform draw from
        ``[0.9, 1.1]``).  ``0.0`` (default) disables jitter entirely.
    seed:
        Seed for the jitter stream.  Ignored when ``jitter`` is 0.
    """
    if attempts < 0:
        raise ValueError(f"attempts must be >= 0, got {attempts}")
    if base < 0 or factor < 1.0 or cap < 0:
        raise ValueError(
            "backoff needs base >= 0, factor >= 1, cap >= 0 "
            f"(got base={base}, factor={factor}, cap={cap})"
        )
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    rng = random.Random(seed)
    delays = []
    for attempt in range(attempts):
        delay = min(cap, base * factor ** attempt)
        if jitter:
            delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        delays.append(delay)
    return tuple(delays)
