"""``Design_wrapper`` — the BFD wrapper-design algorithm (problem P_W).

Given a core and a TAM width ``w``, the algorithm builds at most ``w``
wrapper scan chains such that (priority 1) the core testing time is
minimized and (priority 2) the TAM width actually used is minimized.
Following [8]:

1. *Scan packing.*  Internal scan chains are packed into wrapper
   chains by Best-Fit-Decreasing with soft capacity equal to the
   longest internal chain — the natural lower bound on wrapper-chain
   length.  New chains are opened reluctantly (only when an item fits
   no existing chain), so short cores do not squander TAM wires.

2. *Cell balancing.*  Wrapper input cells are then spread to minimize
   the longest scan-in path, and output cells to minimize the longest
   scan-out path.  Since cells are unit items, the greedy balance is
   exactly optimal given the scan packing.  Ties prefer chains already
   in use, again conserving width.

The returned :class:`~repro.wrapper.chain.WrapperDesign` may use fewer
wires than offered; testing time is non-increasing in ``w`` once
monotonized by :class:`~repro.wrapper.pareto.TimeTable`.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ConfigurationError
from repro.soc.core import Core
from repro.wrapper.bfd import balance_units, pack_decreasing
from repro.wrapper.chain import WrapperChain, WrapperDesign


def design_wrapper(core: Core, width: int) -> WrapperDesign:
    """Design a wrapper for ``core`` on a TAM of width ``width``.

    >>> from repro.soc.core import Core
    >>> core = Core("toy", num_patterns=10, num_inputs=4, num_outputs=2,
    ...             scan_chain_lengths=(8, 4, 4))
    >>> design = design_wrapper(core, width=2)
    >>> design.scan_in_length, design.scan_out_length
    (10, 9)
    """
    if width < 1:
        raise ConfigurationError(f"TAM width must be >= 1, got {width}")

    # Step 1: pack internal scan chains (indices) into wrapper chains.
    scan_bins = pack_decreasing(core.scan_chain_lengths, max_bins=width)
    scan_groups: List[List[int]] = [
        [core.scan_chain_lengths[i] for i in bin_indices]
        for bin_indices in scan_bins
    ]
    # Chains beyond the scan bins are available for I/O-only use.
    while len(scan_groups) < width:
        scan_groups.append([])

    scan_loads = [sum(group) for group in scan_groups]
    has_scan = [bool(group) for group in scan_groups]

    # Step 2a: balance input cells against scan-in loads.
    input_placement, _ = balance_units(
        scan_loads, core.num_input_cells, used=has_scan
    )
    # Step 2b: balance output cells against scan-out loads; chains that
    # just received input cells count as 'used' so outputs coalesce
    # onto them instead of waking fresh wires.
    used_after_inputs = [
        has_scan[i] or input_placement[i] > 0
        for i in range(width)
    ]
    output_placement, _ = balance_units(
        scan_loads, core.num_output_cells, used=used_after_inputs
    )

    chains = tuple(
        WrapperChain(
            scan_chain_lengths=tuple(scan_groups[i]),
            num_input_cells=input_placement[i],
            num_output_cells=output_placement[i],
        )
        for i in range(width)
        if scan_groups[i] or input_placement[i] or output_placement[i]
    )
    return WrapperDesign(core=core, width_available=width, chains=chains)
