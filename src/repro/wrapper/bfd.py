"""Best-Fit-Decreasing primitives used by ``Design_wrapper``.

Two building blocks:

* :func:`pack_decreasing` — pack weighted items (internal scan chains)
  into at most ``max_bins`` bins using the BFD rule with a soft
  capacity: items are placed into the *fullest* bin they fit in
  without exceeding the capacity; a new bin is opened only when no
  existing bin fits (the algorithm's built-in "reluctance to create a
  new wrapper scan chain"); once ``max_bins`` bins exist, overflow
  items go to the currently least-loaded bin.

* :func:`balance_units` — distribute indivisible unit items (wrapper
  I/O cells) over bins with given initial loads, minimizing the
  maximum load; ties prefer bins that are already in use, again to
  avoid consuming extra TAM wires.

Both are deterministic: ties beyond the documented rules break toward
the lowest bin index.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


def pack_decreasing(
    weights: Sequence[int],
    max_bins: int,
    capacity: Optional[int] = None,
) -> List[List[int]]:
    """Pack ``weights`` into at most ``max_bins`` bins (BFD).

    Parameters
    ----------
    weights:
        Item weights (scan-chain lengths).  Processed in decreasing
        order regardless of input order.
    max_bins:
        Hard upper limit on the number of bins (the TAM width).
    capacity:
        Soft capacity.  Defaults to the largest weight — the natural
        lower bound on the makespan of the packing, which is what
        ``Design_wrapper`` uses: no wrapper chain needs to be longer
        than the longest internal scan chain unless width runs out.

    Returns
    -------
    list of bins, each a list of the *indices* into ``weights`` it
    contains (so callers can recover which scan chain went where).
    Bins are never empty.
    """
    if max_bins < 1:
        raise ConfigurationError(f"max_bins must be >= 1, got {max_bins}")
    if not weights:
        return []
    for weight in weights:
        if weight < 0:
            raise ConfigurationError(f"negative weight {weight}")
    if capacity is None:
        capacity = max(weights)

    order = sorted(range(len(weights)), key=lambda i: weights[i],
                   reverse=True)
    bin_items: List[List[int]] = []
    bin_loads: List[int] = []

    for index in order:
        weight = weights[index]
        # Best fit: fullest bin whose load stays within capacity.
        best_bin = -1
        best_load = -1
        for bin_index, load in enumerate(bin_loads):
            if load + weight <= capacity and load > best_load:
                best_bin = bin_index
                best_load = load
        if best_bin < 0:
            if len(bin_items) < max_bins:
                bin_items.append([index])
                bin_loads.append(weight)
                continue
            # All bins exist and none fits: least-loaded bin absorbs it.
            best_bin = min(range(len(bin_loads)), key=bin_loads.__getitem__)
        bin_items[best_bin].append(index)
        bin_loads[best_bin] += weight

    return bin_items


def balance_units(
    initial_loads: Sequence[int],
    num_units: int,
    used: Optional[Sequence[bool]] = None,
) -> Tuple[List[int], int]:
    """Distribute ``num_units`` unit items over bins, minimizing max load.

    Parameters
    ----------
    initial_loads:
        Current load of each available bin (e.g. scan cells already on
        each candidate wrapper chain).  The number of entries is the
        number of bins available (the TAM width).
    num_units:
        How many unit items (wrapper cells) to place.
    used:
        Optional per-bin flag marking bins that already consume a TAM
        wire.  Ties on load prefer used bins, so unused wires are only
        claimed when that strictly helps balance.

    Returns
    -------
    (placements, max_load): ``placements[i]`` is the number of units
    given to bin ``i``; ``max_load`` the resulting maximum total load.

    Greedily placing unit items on the currently least-loaded bin is
    exactly optimal for unit weights, so this is not a heuristic.
    """
    if num_units < 0:
        raise ConfigurationError(f"num_units must be >= 0, got {num_units}")
    if not initial_loads:
        if num_units:
            raise ConfigurationError("cannot place units: no bins")
        return [], 0
    if used is None:
        used = [load > 0 for load in initial_loads]

    placements = [0] * len(initial_loads)
    # Heap entries: (load, unused_penalty, bin_index).  unused_penalty
    # orders used bins before unused ones at equal load.
    heap = [
        (load, 0 if used[index] else 1, index)
        for index, load in enumerate(initial_loads)
    ]
    heapq.heapify(heap)
    for _ in range(num_units):
        load, _, index = heapq.heappop(heap)
        placements[index] += 1
        heapq.heappush(heap, (load + 1, 0, index))

    max_load = max(
        load + placed
        for load, placed in zip(initial_loads, placements)
    )
    return placements, max_load
