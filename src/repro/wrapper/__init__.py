"""Wrapper design (problem :math:`P_W`).

Implements the ``Design_wrapper`` algorithm of Iyengar et al. (the
Best-Fit-Decreasing wrapper-chain balancer the paper reuses from [8]),
the core testing-time model, and the per-core width→time staircase
with Pareto pruning.

Public API:

* :func:`~repro.wrapper.design.design_wrapper` — design a wrapper for
  one core at a given TAM width;
* :class:`~repro.wrapper.chain.WrapperDesign` /
  :class:`~repro.wrapper.chain.WrapperChain` — the resulting design;
* :func:`~repro.wrapper.timing.testing_time` — the scan test-time
  formula  T = (1 + max(si, so)) * p + min(si, so);
* :class:`~repro.wrapper.pareto.TimeTable` — testing time of one core
  as a (monotonized) function of TAM width, with Pareto breakpoints.
"""

from repro.wrapper.chain import WrapperChain, WrapperDesign
from repro.wrapper.design import design_wrapper
from repro.wrapper.pareto import TimeTable, build_time_tables
from repro.wrapper.simulate import SimulationResult, simulate_wrapper_test
from repro.wrapper.timing import testing_time

__all__ = [
    "WrapperChain",
    "WrapperDesign",
    "design_wrapper",
    "TimeTable",
    "build_time_tables",
    "SimulationResult",
    "simulate_wrapper_test",
    "testing_time",
]
