"""Cycle-accurate simulation of a wrapped core's scan test.

The analytical testing-time model used throughout the paper,

    T = (1 + max(si, so)) * p + min(si, so),

is an *argument* about pipelined shifting.  This module provides the
structural check: it builds each wrapper chain as an actual shift
register (wrapper input cells -> internal scan cells -> wrapper output
cells, scan-in at the input side), then simulates the test pattern by
pattern —

1. shift until every stimulus bit (input + scan cells) of the longest
   chain is in place, while responses of the previous pattern drain
   from the other end;
2. one capture cycle (responses latch into scan + output cells);
3. after the last capture, drain the final response.

The simulator counts real cycles and tracks sentinel data bits, so
both the cycle count *and* data integrity (every stimulus bit reaches
its cell, every response bit reaches the scan-out port) are verified
against the model.  ``tests/wrapper/test_simulate.py`` and the
hypothesis suite assert exact agreement with the formula on arbitrary
cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import ValidationError
from repro.wrapper.chain import WrapperDesign


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one core's full test."""

    total_cycles: int
    patterns_applied: int
    stimulus_bits_delivered: int
    response_bits_observed: int

    def matches(self, analytical_time: int) -> bool:
        """True when the cycle count equals the analytical model."""
        return self.total_cycles == analytical_time


class _Chain:
    """One wrapper chain as a shift register.

    Register layout (index 0 is nearest the scan-in port)::

        [ input cells ... | scan cells ... | output cells ... ]

    Stimulus must fill the first ``scan_in_length`` positions; the
    response occupies the last ``scan_out_length`` positions after
    capture and leaves through the far end.
    """

    def __init__(self, num_inputs: int, scan_cells: int,
                 num_outputs: int) -> None:
        self.num_inputs = num_inputs
        self.scan_cells = scan_cells
        self.num_outputs = num_outputs
        self.length = num_inputs + scan_cells + num_outputs
        self.register: List[object] = [None] * self.length
        self.observed: List[object] = []

    @property
    def scan_in_length(self) -> int:
        return self.num_inputs + self.scan_cells

    @property
    def scan_out_length(self) -> int:
        return self.scan_cells + self.num_outputs

    def shift(self, bit: object) -> None:
        """One shift cycle: ``bit`` enters, the far bit is observed."""
        if self.length == 0:
            return
        out = self.register[-1]
        self.register = [bit] + self.register[:-1]
        if out is not None:
            self.observed.append(out)

    def stimulus_in_place(self, pattern: int) -> bool:
        """All scan-in positions hold bits of the current pattern."""
        return all(
            value == ("stim", pattern)
            for value in self.register[: self.scan_in_length]
        )

    def capture(self, tag: object) -> int:
        """Latch responses into scan + output cells; returns bit count."""
        count = 0
        for position in range(self.num_inputs, self.length):
            self.register[position] = ("resp", tag, position)
            count += 1
        return count


def simulate_wrapper_test(design: WrapperDesign) -> SimulationResult:
    """Simulate the complete scan test of ``design``'s core.

    Raises :class:`~repro.exceptions.ValidationError` if data
    integrity breaks (a stimulus bit failed to land, or response bits
    went missing) — which would indicate a wrapper-design bug, not a
    simulation artifact.
    """
    patterns = design.core.num_patterns
    chains = [
        _Chain(
            chain.num_input_cells,
            chain.scan_cells,
            chain.num_output_cells,
        )
        for chain in design.chains
        if not chain.is_empty
    ]
    if not chains:
        # Degenerate: a core with no cells at all is pure capture.
        return SimulationResult(
            total_cycles=patterns,
            patterns_applied=patterns,
            stimulus_bits_delivered=0,
            response_bits_observed=0,
        )

    total_cycles = 0
    stimulus_bits = 0
    expected_responses = 0

    for pattern in range(patterns):
        # Shift phase: fill every chain's stimulus while the previous
        # response drains.  All chains shift in lockstep; the phase
        # runs until the slowest chain is ready AND (for patterns
        # after the first) the longest response has drained, i.e.
        # max(si, so) cycles — or si cycles for the very first fill.
        shift_cycles = max(chain.scan_in_length for chain in chains)
        if pattern > 0:
            shift_cycles = max(
                shift_cycles,
                max(chain.scan_out_length for chain in chains),
            )
        for _ in range(shift_cycles):
            for chain in chains:
                chain.shift(("stim", pattern))
            total_cycles += 1
        for chain in chains:
            if not chain.stimulus_in_place(pattern):
                raise ValidationError(
                    f"pattern {pattern}: stimulus not in place after "
                    f"{shift_cycles} shift cycles"
                )
        stimulus_bits += sum(chain.scan_in_length for chain in chains)

        # Capture cycle.
        total_cycles += 1
        for chain in chains:
            expected_responses += chain.capture(pattern)

    # Final drain: the last response leaves with no next stimulus.
    drain = max(chain.scan_out_length for chain in chains)
    for _ in range(drain):
        for chain in chains:
            chain.shift(None)
        total_cycles += 1

    observed = sum(
        1
        for chain in chains
        for value in chain.observed
        if isinstance(value, tuple) and value[0] == "resp"
    )
    if observed != expected_responses:
        raise ValidationError(
            f"response bits lost: captured {expected_responses}, "
            f"observed {observed}"
        )

    return SimulationResult(
        total_cycles=total_cycles,
        patterns_applied=patterns,
        stimulus_bits_delivered=stimulus_bits,
        response_bits_observed=observed,
    )
