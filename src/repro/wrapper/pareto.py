"""Per-core testing time as a function of TAM width.

``Design_wrapper`` run at width ``w`` is free to ignore wires, so the
*effective* testing time of a core on a width-``w`` bus is the best
design over all widths up to ``w``:

    T*(w) = min_{w' <= w} T(Design_wrapper(core, w')).

:class:`TimeTable` precomputes this monotonized staircase once per
core (the paper's Line 6 of ``Core_assign`` does the equivalent), so
the assignment and partition layers evaluate T(i, w) by O(1) lookup.
It also exposes the Pareto breakpoints — the widths at which the
staircase actually drops — which downstream search can use to skip
redundant widths.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.chain import WrapperDesign
from repro.wrapper.design import design_wrapper


class TimeTable:
    """Monotonized width→(time, design) table for one core.

    Parameters
    ----------
    core:
        The core to tabulate.
    max_width:
        Largest TAM width the table must answer for (the SOC's total
        TAM width W is always sufficient).
    """

    def __init__(self, core: Core, max_width: int) -> None:
        if max_width < 1:
            raise ConfigurationError(
                f"max_width must be >= 1, got {max_width}"
            )
        self.core = core
        self.max_width = 0
        self._times: List[int] = []
        self._designs: List[WrapperDesign] = []
        self.extend_to(max_width)

    def extend_to(self, max_width: int) -> None:
        """Grow the table in place to cover widths up to ``max_width``.

        Runs ``Design_wrapper`` only for the widths not yet tabulated,
        so a table extended from ``w1`` to ``w2`` costs exactly
        ``w2 - w1`` wrapper designs and is identical to a table built
        fresh at ``w2``.  A no-op when the table already covers
        ``max_width``.
        """
        if max_width <= self.max_width:
            return
        # The stored staircase is the running minimum, so the last
        # entry carries the monotonization state to resume from.
        best_time = self._times[-1] if self._times else None
        best_design = self._designs[-1] if self._designs else None
        for width in range(self.max_width + 1, max_width + 1):
            design = design_wrapper(self.core, width)
            time = design.testing_time
            if best_time is None or time < best_time:
                best_time = time
                best_design = design
            self._times.append(best_time)
            self._designs.append(best_design)  # type: ignore[arg-type]
        self.max_width = max_width

    def time(self, width: int) -> int:
        """Best testing time of the core on a bus of ``width`` wires."""
        self._check_width(width)
        return self._times[width - 1]

    def dense_row(self, max_width: int) -> List[int]:
        """The monotone time staircase as a flat width-indexed list.

        ``row[w - 1]`` is :meth:`time` at width ``w`` for ``1 <= w <=
        max_width`` — the per-core row of the dense N×W sweep matrix
        built by :func:`repro.engine.kernel.build_dense_matrix`.  One
        bulk slice instead of ``max_width`` bounds-checked lookups,
        which is what makes the sweep kernel's matrix assembly cheap.
        """
        self._check_width(max_width)
        return self._times[:max_width]

    def design(self, width: int) -> WrapperDesign:
        """The wrapper design achieving :meth:`time` at ``width``."""
        self._check_width(width)
        return self._designs[width - 1]

    def _check_width(self, width: int) -> None:
        if not 1 <= width <= self.max_width:
            raise ConfigurationError(
                f"width {width} outside table range 1..{self.max_width}"
            )

    @property
    def min_time(self) -> int:
        """Testing time at the full table width (the core's floor)."""
        return self._times[-1]

    @property
    def saturation_width(self) -> int:
        """Smallest width achieving the core's minimum testing time.

        Beyond this width additional wires cannot speed the core up —
        the mechanism behind the paper's p31108 observation that SOC
        testing time stops improving once the bottleneck core's bus
        reaches a threshold width.
        """
        floor = self.min_time
        for width in range(1, self.max_width + 1):
            if self._times[width - 1] == floor:
                return width
        return self.max_width  # pragma: no cover - floor always found

    def pareto_points(self) -> List[Tuple[int, int]]:
        """(width, time) pairs where the staircase strictly drops."""
        points: List[Tuple[int, int]] = []
        previous: int | None = None
        for width in range(1, self.max_width + 1):
            time = self._times[width - 1]
            if previous is None or time < previous:
                points.append((width, time))
                previous = time
        return points

    def staircase(self) -> List[Tuple[int, int, WrapperDesign]]:
        """(width, time, design) at each Pareto breakpoint.

        Between breakpoints the stored time *and* design are exactly
        the previous breakpoint's (the running-minimum construction in
        :meth:`extend_to` keeps the incumbent design until a strictly
        better one appears), so this list plus ``max_width`` is a
        lossless, Pareto-compressed encoding of the whole table —
        the on-disk format of :class:`repro.service.store.TableStore`.
        """
        steps: List[Tuple[int, int, WrapperDesign]] = []
        previous: int | None = None
        for width in range(1, self.max_width + 1):
            time = self._times[width - 1]
            if previous is None or time < previous:
                steps.append((width, time, self._designs[width - 1]))
                previous = time
        return steps

    @classmethod
    def from_staircase(
        cls,
        core: Core,
        max_width: int,
        steps: Sequence[Tuple[int, int, WrapperDesign]],
    ) -> "TimeTable":
        """Rebuild a table from its Pareto staircase, design-free.

        The inverse of :meth:`staircase`: expands the breakpoints back
        into the dense per-width arrays without a single
        ``design_wrapper`` call, producing a table bit-identical to
        one built fresh at ``max_width`` (and extendable past it —
        :meth:`extend_to` resumes from the last entry as usual).
        Raises :class:`~repro.exceptions.ConfigurationError` when the
        steps are not a valid staircase for ``max_width``.
        """
        if max_width < 1:
            raise ConfigurationError(
                f"max_width must be >= 1, got {max_width}"
            )
        steps = list(steps)
        if not steps or steps[0][0] != 1:
            raise ConfigurationError(
                "staircase must start at width 1"
            )
        widths = [width for width, _, _ in steps]
        times = [time for _, time, _ in steps]
        if widths != sorted(set(widths)) or widths[-1] > max_width:
            raise ConfigurationError(
                f"staircase widths {widths} not strictly increasing "
                f"within 1..{max_width}"
            )
        if times != sorted(set(times), reverse=True):
            raise ConfigurationError(
                f"staircase times {times} not strictly decreasing"
            )
        table = cls.__new__(cls)
        table.core = core
        table.max_width = max_width
        table._times = []
        table._designs = []
        step = -1
        for width in range(1, max_width + 1):
            if step + 1 < len(steps) and steps[step + 1][0] == width:
                step += 1
            table._times.append(steps[step][1])
            table._designs.append(steps[step][2])
        return table


def build_time_tables(
    soc: Soc, max_width: int
) -> Dict[str, TimeTable]:
    """Build a :class:`TimeTable` for every core of ``soc``.

    Returns a dict keyed by core name; iteration order of
    ``soc.cores`` is preserved by the dict.
    """
    return {
        core.name: TimeTable(core, max_width)
        for core in soc.cores
    }


def times_matrix(
    tables: Sequence[TimeTable], widths: Sequence[int]
) -> List[List[int]]:
    """T[i][j]: time of core ``i`` on bus ``j`` of ``widths[j]`` wires."""
    return [
        [table.time(width) for width in widths]
        for table in tables
    ]
