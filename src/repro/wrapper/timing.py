"""Core testing-time model for wrapped, scan-tested cores.

The standard test-bus timing model (used by the paper via [8]): for a
core with ``p`` test patterns whose wrapper has maximum scan-in chain
length ``si`` and maximum scan-out chain length ``so`` (both measured
in clock cycles per shift),

    T(p, si, so) = (1 + max(si, so)) * p + min(si, so)

Rationale: scan-in of pattern *k+1* overlaps scan-out of pattern *k*,
so each of the ``p`` patterns costs ``max(si, so)`` shift cycles plus
one capture cycle; the pipeline drains with one final, non-overlapped
scan-out (or pre-fills with one scan-in), adding ``min(si, so)``.
"""

from __future__ import annotations

from repro.exceptions import ValidationError


def testing_time(num_patterns: int, scan_in: int, scan_out: int) -> int:
    """Testing time (clock cycles) of a core under the scan model.

    Parameters
    ----------
    num_patterns:
        Number of test patterns ``p`` (>= 1).
    scan_in:
        Longest wrapper scan-in chain, in cycles (>= 0).
    scan_out:
        Longest wrapper scan-out chain, in cycles (>= 0).

    >>> testing_time(10, 4, 6)   # (1 + 6) * 10 + 4
    74
    >>> testing_time(5, 0, 0)    # pure capture: combinational, no cells
    5
    """
    if num_patterns < 1:
        raise ValidationError(
            f"num_patterns must be >= 1, got {num_patterns}"
        )
    if scan_in < 0 or scan_out < 0:
        raise ValidationError(
            f"scan lengths must be >= 0, got si={scan_in}, so={scan_out}"
        )
    longer, shorter = max(scan_in, scan_out), min(scan_in, scan_out)
    return (1 + longer) * num_patterns + shorter
