"""Wrapper-design result types.

A :class:`WrapperDesign` records, for one core at one TAM width, how
the core-internal scan chains and the wrapper I/O cells were assembled
into wrapper scan chains, and exposes the resulting scan-in/scan-out
lengths and testing time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ValidationError
from repro.soc.core import Core
from repro.wrapper.timing import testing_time


@dataclass(frozen=True)
class WrapperChain:
    """One wrapper scan chain.

    Attributes
    ----------
    scan_chain_lengths:
        Lengths of the core-internal scan chains concatenated into this
        wrapper chain.
    num_input_cells / num_output_cells:
        Wrapper input (output) cells placed on this chain.  Input cells
        lengthen only the scan-in path, output cells only the scan-out
        path; internal scan cells lengthen both.
    """

    scan_chain_lengths: Tuple[int, ...] = field(default_factory=tuple)
    num_input_cells: int = 0
    num_output_cells: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scan_chain_lengths", tuple(self.scan_chain_lengths)
        )
        if self.num_input_cells < 0 or self.num_output_cells < 0:
            raise ValidationError("cell counts must be >= 0")

    @property
    def scan_cells(self) -> int:
        """Internal scan cells on this chain."""
        return sum(self.scan_chain_lengths)

    @property
    def scan_in_length(self) -> int:
        """Cycles to shift one stimulus through this chain."""
        return self.scan_cells + self.num_input_cells

    @property
    def scan_out_length(self) -> int:
        """Cycles to shift one response out of this chain."""
        return self.scan_cells + self.num_output_cells

    @property
    def is_empty(self) -> bool:
        """True when the chain carries no scan cells and no I/O cells."""
        return (
            not self.scan_chain_lengths
            and self.num_input_cells == 0
            and self.num_output_cells == 0
        )


@dataclass(frozen=True)
class WrapperDesign:
    """A complete wrapper design for one core at one TAM width.

    ``width_available`` is the TAM width offered; ``used_width`` (the
    number of non-empty wrapper chains) may be smaller — the second
    priority of ``Design_wrapper`` is precisely to leave wires idle
    when they cannot reduce testing time.
    """

    core: Core
    width_available: int
    chains: Tuple[WrapperChain, ...]

    def __post_init__(self) -> None:
        if self.width_available < 1:
            raise ValidationError(
                f"width_available must be >= 1, got {self.width_available}"
            )
        object.__setattr__(self, "chains", tuple(self.chains))
        if len(self.chains) > self.width_available:
            raise ValidationError(
                f"{len(self.chains)} wrapper chains exceed available "
                f"width {self.width_available}"
            )
        # Conservation: every internal scan chain placed exactly once,
        # every I/O cell placed exactly once.
        placed_scan = sorted(
            length
            for chain in self.chains
            for length in chain.scan_chain_lengths
        )
        if placed_scan != sorted(self.core.scan_chain_lengths):
            raise ValidationError(
                f"wrapper for {self.core.name!r} does not place the "
                "core's scan chains exactly once"
            )
        placed_inputs = sum(c.num_input_cells for c in self.chains)
        if placed_inputs != self.core.num_input_cells:
            raise ValidationError(
                f"wrapper for {self.core.name!r} places {placed_inputs} "
                f"input cells, expected {self.core.num_input_cells}"
            )
        placed_outputs = sum(c.num_output_cells for c in self.chains)
        if placed_outputs != self.core.num_output_cells:
            raise ValidationError(
                f"wrapper for {self.core.name!r} places {placed_outputs} "
                f"output cells, expected {self.core.num_output_cells}"
            )

    @property
    def used_width(self) -> int:
        """TAM wires actually consumed (non-empty wrapper chains)."""
        return sum(1 for chain in self.chains if not chain.is_empty)

    @property
    def scan_in_length(self) -> int:
        """``si``: the longest wrapper scan-in chain."""
        return max(
            (chain.scan_in_length for chain in self.chains), default=0
        )

    @property
    def scan_out_length(self) -> int:
        """``so``: the longest wrapper scan-out chain."""
        return max(
            (chain.scan_out_length for chain in self.chains), default=0
        )

    @property
    def testing_time(self) -> int:
        """Core testing time in clock cycles at this design."""
        return testing_time(
            self.core.num_patterns,
            self.scan_in_length,
            self.scan_out_length,
        )

    def describe(self) -> str:
        """Human-readable summary of the design."""
        lines = [
            f"wrapper for {self.core.name}: width {self.used_width}"
            f"/{self.width_available}, si={self.scan_in_length}, "
            f"so={self.scan_out_length}, T={self.testing_time}"
        ]
        for index, chain in enumerate(self.chains):
            if chain.is_empty:
                continue
            lines.append(
                f"  chain {index}: scan={list(chain.scan_chain_lengths)} "
                f"in={chain.num_input_cells} out={chain.num_output_cells}"
            )
        return "\n".join(lines)
