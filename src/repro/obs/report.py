"""Rendering for ``repro-tam report`` and ``repro-tam tail``.

The query/presentation half of the telemetry spine: turns warehouse
rows (:class:`~repro.obs.warehouse.RunWarehouse`) into the same
tables the live surfaces print, and event streams into the same
progress lines ``submit --stream`` shows.

The grid table here and the one ``repro-tam batch``/``submit``
render share :func:`grid_table_rows` — one formatter, so a table
reproduced from SQLite alone is bit-identical to the table the live
run printed.  That property is asserted by the obs tests and the CI
warehouse smoke.

This module builds *on* the engine/report layers (unlike the rest of
``repro.obs``, which sits below them) and is therefore imported
explicitly by the CLI, never from ``repro.obs``'s package root.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.batch import BATCH_COLUMNS
from repro.exceptions import ValidationError
from repro.obs.warehouse import RunWarehouse
from repro.report.tables import TextTable

__all__ = [
    "REPORT_VIEWS",
    "grid_table_rows",
    "grid_table",
    "format_event_line",
    "build_report",
    "render_report",
]

#: The ``repro-tam report --view`` choices, in help order.
REPORT_VIEWS: Tuple[str, ...] = (
    "table", "pareto", "trend", "phases", "runs",
)


def grid_table_rows(
    points: Sequence[Dict[str, Any]]
) -> List[List[Any]]:
    """Serialized sweep points as ``BATCH_COLUMNS`` table cells.

    The one formatter behind the ``batch`` table, the ``submit``
    table, and the warehouse-backed ``report --view table`` — shared
    so the three render bit-identically from the same payload.
    """
    return [
        [
            point["soc"],
            point["total_width"],
            point["num_tams"],
            "+".join(map(str, point["partition"])),
            point["testing_time"],
            f"{point['gap']:.2%}",
            f"{point['utilization']:.1%}",
        ]
        for point in points
    ]


def grid_table(
    points: Sequence[Dict[str, Any]], title: str
) -> TextTable:
    """The standard grid-results table over serialized points."""
    table = TextTable(list(BATCH_COLUMNS), title=title)
    for row in grid_table_rows(points):
        table.add_row(row)
    return table


def format_event_line(event: Dict[str, Any]) -> Tuple[str, bool]:
    """One streamed :class:`~repro.api.JobEvent` as a progress line.

    Returns ``(line, failed)`` — shared by ``submit --stream`` and
    ``repro-tam tail`` so the two surfaces narrate a grid
    identically.
    """
    point = event.get("payload", {})
    position = f"[{event['index'] + 1}/{event['total']}]"
    if event.get("kind") == "failed":
        return (
            f"{position} FAILED {point.get('soc', '?')} "
            f"W={point.get('total_width', '?')}: "
            f"{point.get('error_type', '?')}",
            True,
        )
    if event.get("kind") == "incumbent":
        gap = point.get("gap")
        gap_text = "?" if gap is None else f"{gap:.2%}"
        return (
            f"{position} {point.get('soc', '?')} incumbent "
            f"T={point.get('time', '?')} gap={gap_text} "
            f"(island {point.get('island', '?')}, "
            f"eval {point.get('eval', '?')})",
            False,
        )
    return (
        f"{position} {point.get('soc', '?')} "
        f"W={point.get('total_width', '?')} "
        f"B={point.get('num_tams', '?')} "
        f"T={point.get('testing_time', '?')}",
        False,
    )


def _stamp(created_at: float) -> str:
    return datetime.fromtimestamp(created_at).strftime(
        "%Y-%m-%d %H:%M:%S"
    )


def _short(key: Optional[str]) -> str:
    return (key or "?")[:12]


def _pareto_front(
    points: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Points not dominated in (total_width, testing_time), per SOC."""
    front: List[Dict[str, Any]] = []
    for point in points:
        dominated = False
        for other in points:
            if other is point or other["soc"] != point["soc"]:
                continue
            if (
                other["total_width"] <= point["total_width"]
                and other["testing_time"] <= point["testing_time"]
                and (
                    other["total_width"] < point["total_width"]
                    or other["testing_time"] < point["testing_time"]
                )
            ):
                dominated = True
                break
        if not dominated:
            front.append(point)
    return sorted(
        front, key=lambda p: (p["soc"], p["total_width"])
    )


def build_report(
    warehouse: RunWarehouse,
    view: str = "table",
    campaign: Optional[str] = None,
    run_id: Optional[int] = None,
    limit: int = 20,
) -> Dict[str, Any]:
    """Assemble one report record from the warehouse.

    ``campaign`` is a canonical grid key (any unambiguous prefix);
    ``None`` means the campaign of the newest stored run.  ``run_id``
    pins a specific run for the per-run views (``table``, ``pareto``,
    ``phases``); otherwise the campaign's newest run is used.  The
    returned record serializes as the ``--format json`` output and
    feeds :func:`render_report` for the text form.
    """
    if view not in REPORT_VIEWS:
        raise ValidationError(
            f"view must be one of {REPORT_VIEWS}, got {view!r}"
        )
    report: Dict[str, Any] = {"schema": 1, "kind": "report", "view": view}
    if view == "runs":
        report["runs"] = warehouse.runs(limit=limit)
        return report
    if run_id is not None:
        runs = [
            run for run in warehouse.runs()
            if run["run_id"] == run_id
        ]
        if not runs:
            raise ValidationError(
                f"unknown warehouse run {run_id}"
            )
        run = runs[0]
        key = str(run["key"])
    else:
        if campaign is not None:
            key = warehouse.resolve_key(campaign)
        else:
            latest = warehouse.latest_run()
            if latest is None:
                raise ValidationError(
                    "the run warehouse is empty — run a grid with "
                    "--cache-dir first"
                )
            key = str(latest["key"])
        newest = warehouse.latest_run(key=key)
        assert newest is not None  # resolve_key proved runs exist
        run = newest
    report["campaign"] = key
    if view == "trend":
        report["trend"] = warehouse.trend(key)
        return report
    report["run"] = run
    if view == "phases":
        report["phases"] = warehouse.phase_breakdown(
            run_id=int(run["run_id"])
        )
        return report
    payload = warehouse.grid_payload(int(run["run_id"]))
    if view == "pareto":
        report["pareto"] = _pareto_front(payload["points"])
        return report
    report["points"] = payload["points"]
    report["failures"] = payload["failures"]
    return report


def render_report(report: Dict[str, Any]) -> str:
    """The text form of a :func:`build_report` record."""
    view = report["view"]
    if view == "runs":
        table = TextTable(
            ["run", "campaign", "source", "client", "job", "mode", "gap",
             "seed", "points", "failures", "recorded"],
            title="warehouse runs",
        )
        for run in report["runs"]:
            worst_gap = run.get("worst_gap")
            seeds = run.get("seeds") or []
            table.add_row([
                run["run_id"],
                _short(run["key"]),
                run["source"],
                run.get("client") or "-",
                run["job_id"] or "-",
                run.get("mode", "-"),
                "-" if worst_gap is None else f"{worst_gap:.2%}",
                ",".join(map(str, seeds)) or "-",
                run["num_points"],
                run["num_failures"],
                _stamp(run["created_at"]),
            ])
        return table.render()
    if view == "trend":
        table = TextTable(
            ["run", "recorded", "soc", "W", "B", "T"],
            title=f"campaign {_short(report['campaign'])} trend",
        )
        for row in report["trend"]:
            table.add_row([
                row["run_id"],
                _stamp(row["created_at"]),
                row["soc"],
                row["total_width"],
                row["num_tams"],
                row["testing_time"],
            ])
        return table.render()
    if view == "phases":
        table = TextTable(
            ["phase", "calls", "total_s", "max_s"],
            title=(
                f"campaign {_short(report['campaign'])} run "
                f"{report['run']['run_id']} phase breakdown"
            ),
        )
        for row in report["phases"]:
            table.add_row([
                row["path"],
                row["calls"],
                f"{row['total_s']:.4f}",
                f"{row['max_s']:.4f}",
            ])
        rendered = table.render()
        if not report["phases"]:
            rendered += (
                "\n(no spans recorded — run with tracing enabled:"
                " REPRO_TRACE=1 or serve/batch under --log-level"
                " debug)"
            )
        return rendered
    run = report["run"]
    if view == "pareto":
        table = grid_table(
            report["pareto"],
            title=(
                f"campaign {_short(report['campaign'])} run "
                f"{run['run_id']} Pareto front"
            ),
        )
        return table.render()
    table = grid_table(report["points"], title="batch sweep")
    lines = [table.render()]
    for failure in report.get("failures", []):
        lines.append(
            f"FAILED {failure['soc']} W={failure['total_width']}: "
            f"{failure['error_type']}: {failure['error_message']}"
        )
    return "\n".join(lines)
