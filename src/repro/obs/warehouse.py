"""The run warehouse: finished grids persisted into SQLite.

Every grid the engine or the service completes can be recorded here —
one ``runs`` row per execution (keyed by the grid's canonical content
key, the same :func:`repro.api.specs.jobs_canonical_key` hash the
memo uses), one ``points`` row per grid point (the *identical*
serialized payload the IPC ``result`` op returns, so a report
rendered from SQLite alone reproduces the live table bit for bit),
and one ``spans`` row per recorded span-tree node.

The store lives next to the :class:`~repro.service.store.TableStore`
(``<cache_dir>/warehouse.sqlite`` — see :func:`warehouse_for`) and
follows the same discipline: content-keyed, append-only in normal
operation, safe to delete wholesale.  ``sqlite3`` is stdlib; one
short-lived connection per operation keeps the warehouse usable from
the dispatcher thread, the CLI, and tests concurrently (SQLite's own
locking arbitrates, with a generous busy timeout).

Unlike the scoring pipeline this module may read the wall clock —
``created_at`` is real time, because trend reports are *about* time —
but nothing here ever feeds a scored value (RPR001's telemetry rule:
the warehouse observes runs, it never participates in them).

Retention is explicit, not automatic: :meth:`RunWarehouse.prune`
keeps the newest N runs per canonical key and drops the rest
(points and spans cascade).  Nothing else ever deletes.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import closing
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import ValidationError
from repro.obs.trace import SpanRecord, TaskTelemetry

__all__ = ["RunWarehouse", "WAREHOUSE_FILENAME", "warehouse_for"]

#: The warehouse's file name inside a runner/service ``cache_dir``.
WAREHOUSE_FILENAME = "warehouse.sqlite"

#: Bump on any table-shape change; the store refuses newer files.
#: Version history: 1 — runs/points/spans; 2 — ``runs.client`` (the
#: submitting tenant, multi-tenant serving).  v1 files are migrated
#: in place on first v2 write (additive ``ALTER TABLE``, old rows
#: read back with ``client = NULL``).
WAREHOUSE_SCHEMA = 2

_CREATE = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        schema INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id INTEGER PRIMARY KEY AUTOINCREMENT,
        key TEXT NOT NULL,
        job_id TEXT,
        source TEXT NOT NULL,
        client TEXT,
        created_at REAL NOT NULL,
        num_points INTEGER NOT NULL,
        num_failures INTEGER NOT NULL,
        metrics TEXT
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS runs_by_key ON runs (key, run_id)
    """,
    """
    CREATE TABLE IF NOT EXISTS points (
        run_id INTEGER NOT NULL,
        kind TEXT NOT NULL,
        idx INTEGER NOT NULL,
        soc TEXT,
        total_width INTEGER,
        num_tams INTEGER,
        partition TEXT,
        testing_time INTEGER,
        gap REAL,
        utilization REAL,
        payload TEXT NOT NULL,
        metrics TEXT,
        PRIMARY KEY (run_id, kind, idx)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS spans (
        run_id INTEGER NOT NULL,
        point_idx INTEGER,
        path TEXT NOT NULL,
        name TEXT NOT NULL,
        start_s REAL NOT NULL,
        elapsed_s REAL NOT NULL,
        meta TEXT
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS spans_by_run ON spans (run_id)
    """,
)


class RunWarehouse:
    """A SQLite store of finished grid runs, points, and spans.

    Parameters
    ----------
    path:
        The database file.  Created (with parent directories) on
        first write; reads against a missing file simply answer
        empty.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _connect(self, create: bool) -> Optional[sqlite3.Connection]:
        if not create and not self.path.exists():
            return None
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=30.0)
        connection.row_factory = sqlite3.Row
        if create:
            with connection:
                for statement in _CREATE:
                    connection.execute(statement)
                row = connection.execute(
                    "SELECT schema FROM meta"
                ).fetchone()
                if row is None:
                    connection.execute(
                        "INSERT INTO meta (schema) VALUES (?)",
                        (WAREHOUSE_SCHEMA,),
                    )
                    row = {"schema": WAREHOUSE_SCHEMA}
                elif row["schema"] == 1:
                    row = {"schema": self._migrate_v1(connection)}
        else:
            try:
                row = connection.execute(
                    "SELECT schema FROM meta"
                ).fetchone()
            except sqlite3.OperationalError:
                row = None
            if row is None:
                connection.close()
                raise ValidationError(
                    f"{self.path} is not a run warehouse"
                )
            if row["schema"] == 1:
                # A v1 file is still fully readable by v2 queries
                # once the additive column exists; migrate in place
                # even on the read path so one code path serves both.
                with connection:
                    row = {"schema": self._migrate_v1(connection)}
        if row["schema"] != WAREHOUSE_SCHEMA:
            connection.close()
            raise ValidationError(
                f"run warehouse schema {row['schema']} unsupported; "
                f"this build reads version {WAREHOUSE_SCHEMA}"
            )
        return connection

    @staticmethod
    def _migrate_v1(connection: sqlite3.Connection) -> int:
        """Upgrade a schema-1 file in place: add ``runs.client``.

        Purely additive — every existing row keeps its bytes, old
        runs read back with ``client = NULL`` ("recorded before
        tenancy"), and the file is never copied.  Caller holds a
        transaction.
        """
        columns = {
            row["name"] for row in connection.execute(
                "PRAGMA table_info(runs)"
            )
        }
        if "client" not in columns:
            connection.execute(
                "ALTER TABLE runs ADD COLUMN client TEXT"
            )
        connection.execute(
            "UPDATE meta SET schema = ?", (WAREHOUSE_SCHEMA,)
        )
        return WAREHOUSE_SCHEMA

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_grid(
        self,
        key: str,
        payload: Dict[str, Any],
        job_id: Optional[str] = None,
        source: str = "batch",
        client: Optional[str] = None,
        metrics: Optional[Dict[str, Any]] = None,
        point_telemetry: Optional[
            Sequence[Optional[TaskTelemetry]]
        ] = None,
        run_spans: Sequence[SpanRecord] = (),
        created_at: Optional[float] = None,
    ) -> int:
        """Persist one finished grid; returns its ``run_id``.

        ``payload`` is the serialized grid — the exact
        ``{"points": [...], "failures": [...]}`` shape of
        :func:`repro.service.server.grid_payload` — stored verbatim
        per point, so :meth:`grid_payload` reconstructs it
        byte-identically.  ``point_telemetry`` aligns with
        ``payload["points"]`` (``None`` entries allowed);
        ``run_spans`` carries grid-level spans with no single point
        to hang on (matrix builds, publishes).  ``client`` is the
        submitting tenant (multi-tenant service runs); ``None`` for
        local batch runs and pre-tenancy writers.
        """
        points = list(payload.get("points", []))
        failures = list(payload.get("failures", []))
        stamp = time.time() if created_at is None else created_at
        connection = self._connect(create=True)
        assert connection is not None
        with closing(connection), connection:
            cursor = connection.execute(
                "INSERT INTO runs (key, job_id, source, client,"
                " created_at, num_points, num_failures, metrics)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key, job_id, source, client, stamp,
                    len(points), len(failures),
                    _json_or_none(metrics),
                ),
            )
            run_id = int(cursor.lastrowid or 0)
            for idx, point in enumerate(points):
                telemetry = None
                if point_telemetry is not None \
                        and idx < len(point_telemetry):
                    telemetry = point_telemetry[idx]
                connection.execute(
                    "INSERT INTO points (run_id, kind, idx, soc,"
                    " total_width, num_tams, partition, testing_time,"
                    " gap, utilization, payload, metrics)"
                    " VALUES (?, 'point', ?, ?, ?, ?, ?, ?, ?, ?,"
                    " ?, ?)",
                    (
                        run_id, idx,
                        point.get("soc"),
                        point.get("total_width"),
                        point.get("num_tams"),
                        "+".join(
                            map(str, point.get("partition", []))
                        ),
                        point.get("testing_time"),
                        point.get("gap"),
                        point.get("utilization"),
                        json.dumps(point, sort_keys=True),
                        _json_or_none(
                            telemetry.metrics.to_dict()
                            if telemetry is not None else None
                        ),
                    ),
                )
                if telemetry is not None:
                    self._insert_spans(
                        connection, run_id, idx, telemetry.spans
                    )
            for idx, failure in enumerate(failures):
                connection.execute(
                    "INSERT INTO points (run_id, kind, idx, soc,"
                    " total_width, payload)"
                    " VALUES (?, 'failed', ?, ?, ?, ?)",
                    (
                        run_id, idx,
                        failure.get("soc"),
                        failure.get("total_width"),
                        json.dumps(failure, sort_keys=True),
                    ),
                )
            self._insert_spans(connection, run_id, None, run_spans)
        return run_id

    @staticmethod
    def _insert_spans(
        connection: sqlite3.Connection,
        run_id: int,
        point_idx: Optional[int],
        spans: Sequence[SpanRecord],
    ) -> None:
        for root in spans:
            for path, record in root.walk():
                connection.execute(
                    "INSERT INTO spans (run_id, point_idx, path,"
                    " name, start_s, elapsed_s, meta)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, point_idx, path, record.name,
                        record.start_s, record.elapsed_s,
                        _json_or_none(
                            dict(record.meta) if record.meta
                            else None
                        ),
                    ),
                )

    def prune(self, keep_per_key: int) -> int:
        """Retention: keep the newest ``keep_per_key`` runs per key.

        Returns how many runs were dropped (their points and spans
        go with them).  The warehouse never prunes on its own.
        """
        if keep_per_key < 1:
            raise ValidationError(
                f"keep_per_key must be >= 1, got {keep_per_key}"
            )
        connection = self._connect(create=False)
        if connection is None:
            return 0
        with closing(connection), connection:
            doomed = [
                int(row["run_id"]) for row in connection.execute(
                    "SELECT run_id, key,"
                    " ROW_NUMBER() OVER (PARTITION BY key"
                    " ORDER BY run_id DESC) AS rank FROM runs"
                )
                if row["rank"] > keep_per_key
            ]
            for run_id in doomed:
                connection.execute(
                    "DELETE FROM spans WHERE run_id = ?", (run_id,)
                )
                connection.execute(
                    "DELETE FROM points WHERE run_id = ?", (run_id,)
                )
                connection.execute(
                    "DELETE FROM runs WHERE run_id = ?", (run_id,)
                )
        return len(doomed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runs(
        self,
        key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run summaries, newest first, optionally for one key."""
        connection = self._connect(create=False)
        if connection is None:
            return []
        query = (
            "SELECT run_id, key, job_id, source, client, created_at,"
            " num_points, num_failures, metrics FROM runs"
        )
        params: Tuple[Any, ...] = ()
        if key is not None:
            query += " WHERE key = ?"
            params = (key,)
        query += " ORDER BY run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params += (limit,)
        with closing(connection):
            rows = [
                _run_row(row)
                for row in connection.execute(query, params)
            ]
            for run in rows:
                run.update(self._point_summary(
                    connection, run["run_id"]
                ))
            return rows

    @staticmethod
    def _point_summary(
        connection: sqlite3.Connection, run_id: int
    ) -> Dict[str, Any]:
        """Mode/gap/seed roll-up of one run's points.

        Feeds the ``runs`` report view: which tier produced the run
        (``exact``, ``search``, or ``mixed``), the worst certificate
        gap across its points, and the distinct search seeds used.
        """
        modes = set()
        seeds = set()
        worst: Optional[float] = None
        for row in connection.execute(
            "SELECT gap, payload FROM points"
            " WHERE run_id = ? AND kind = 'point'",
            (run_id,),
        ):
            payload = json.loads(row["payload"])
            modes.add(payload.get("mode", "exact"))
            seed = payload.get("seed")
            if seed is not None:
                seeds.add(int(seed))
            if row["gap"] is not None:
                gap = float(row["gap"])
                worst = gap if worst is None else max(worst, gap)
        if not modes:
            mode = "-"
        elif len(modes) == 1:
            mode = next(iter(modes))
        else:
            mode = "mixed"
        return {
            "mode": mode,
            "worst_gap": worst,
            "seeds": sorted(seeds),
        }

    def latest_run(
        self, key: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The newest run (optionally of one key), or ``None``."""
        rows = self.runs(key=key, limit=1)
        return rows[0] if rows else None

    def resolve_key(self, prefix: str) -> str:
        """Expand a canonical-key prefix to the full stored key.

        Accepts the full key too; raises
        :class:`~repro.exceptions.ValidationError` when the prefix
        matches no stored run or more than one distinct key.
        """
        connection = self._connect(create=False)
        matches: List[str] = []
        if connection is not None:
            with closing(connection):
                matches = [
                    str(row["key"]) for row in connection.execute(
                        "SELECT DISTINCT key FROM runs"
                        " WHERE key LIKE ? ORDER BY key",
                        (prefix + "%",),
                    )
                ]
        if not matches:
            raise ValidationError(
                f"no warehouse runs match campaign {prefix!r}"
            )
        if len(matches) > 1:
            raise ValidationError(
                f"campaign {prefix!r} is ambiguous: "
                f"{len(matches)} keys match"
            )
        return matches[0]

    def grid_payload(self, run_id: int) -> Dict[str, Any]:
        """The stored grid, reconstructed in its one wire shape.

        Byte-identical to the ``{"points": ..., "failures": ...}``
        payload recorded — what lets ``repro-tam report`` reproduce a
        live grid table from SQLite alone.
        """
        connection = self._connect(create=False)
        if connection is None:
            raise ValidationError(f"unknown warehouse run {run_id}")
        payload: Dict[str, Any] = {"points": [], "failures": []}
        found = False
        with closing(connection):
            if connection.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone() is not None:
                found = True
            for row in connection.execute(
                "SELECT kind, payload FROM points"
                " WHERE run_id = ? ORDER BY kind DESC, idx",
                (run_id,),
            ):
                bucket = (
                    "points" if row["kind"] == "point" else "failures"
                )
                payload[bucket].append(json.loads(row["payload"]))
        if not found:
            raise ValidationError(f"unknown warehouse run {run_id}")
        return payload

    def point_metrics(
        self, run_id: int
    ) -> List[Optional[Dict[str, Any]]]:
        """Per-point metrics dicts for a run (aligned with points)."""
        connection = self._connect(create=False)
        if connection is None:
            return []
        with closing(connection):
            return [
                json.loads(row["metrics"])
                if row["metrics"] is not None else None
                for row in connection.execute(
                    "SELECT metrics FROM points"
                    " WHERE run_id = ? AND kind = 'point'"
                    " ORDER BY idx",
                    (run_id,),
                )
            ]

    def trend(self, key: str) -> List[Dict[str, Any]]:
        """Every stored (soc, W, B, T) of ``key``'s runs, oldest first.

        One row per point per run — the raw series behind a
        per-campaign trend table (is the same grid getting faster or
        slower over time, did a result ever change).
        """
        connection = self._connect(create=False)
        if connection is None:
            return []
        with closing(connection):
            return [
                {
                    "run_id": int(row["run_id"]),
                    "created_at": float(row["created_at"]),
                    "soc": row["soc"],
                    "total_width": row["total_width"],
                    "num_tams": row["num_tams"],
                    "testing_time": row["testing_time"],
                }
                for row in connection.execute(
                    "SELECT r.run_id, r.created_at, p.soc,"
                    " p.total_width, p.num_tams, p.testing_time"
                    " FROM runs r JOIN points p"
                    " ON p.run_id = r.run_id AND p.kind = 'point'"
                    " WHERE r.key = ?"
                    " ORDER BY r.run_id, p.idx",
                    (key,),
                )
            ]

    def phase_breakdown(
        self, run_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Span wall time aggregated by path, heaviest first."""
        connection = self._connect(create=False)
        if connection is None:
            return []
        query = (
            "SELECT path, COUNT(*) AS calls,"
            " SUM(elapsed_s) AS total_s, MAX(elapsed_s) AS max_s"
            " FROM spans"
        )
        params: Tuple[Any, ...] = ()
        if run_id is not None:
            query += " WHERE run_id = ?"
            params = (run_id,)
        query += " GROUP BY path ORDER BY total_s DESC, path"
        with closing(connection):
            return [
                {
                    "path": row["path"],
                    "calls": int(row["calls"]),
                    "total_s": float(row["total_s"]),
                    "max_s": float(row["max_s"]),
                }
                for row in connection.execute(query, params)
            ]

    def spans(
        self, run_id: int, point_idx: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Flattened span rows of one run (optionally one point)."""
        connection = self._connect(create=False)
        if connection is None:
            return []
        query = (
            "SELECT point_idx, path, name, start_s, elapsed_s, meta"
            " FROM spans WHERE run_id = ?"
        )
        params: Tuple[Any, ...] = (run_id,)
        if point_idx is not None:
            query += " AND point_idx = ?"
            params += (point_idx,)
        query += " ORDER BY point_idx, start_s, path"
        with closing(connection):
            return [
                {
                    "point_idx": row["point_idx"],
                    "path": row["path"],
                    "name": row["name"],
                    "start_s": float(row["start_s"]),
                    "elapsed_s": float(row["elapsed_s"]),
                    "meta": (
                        json.loads(row["meta"])
                        if row["meta"] is not None else None
                    ),
                }
                for row in connection.execute(query, params)
            ]


def _run_row(row: sqlite3.Row) -> Dict[str, Any]:
    return {
        "run_id": int(row["run_id"]),
        "key": row["key"],
        "job_id": row["job_id"],
        "source": row["source"],
        "client": row["client"],
        "created_at": float(row["created_at"]),
        "num_points": int(row["num_points"]),
        "num_failures": int(row["num_failures"]),
        "metrics": (
            json.loads(row["metrics"])
            if row["metrics"] is not None else None
        ),
    }


def _json_or_none(data: Optional[Dict[str, Any]]) -> Optional[str]:
    if data is None:
        return None
    return json.dumps(data, sort_keys=True)


def warehouse_for(
    cache_dir: Union[str, Path, None]
) -> Optional[RunWarehouse]:
    """The warehouse living in ``cache_dir``, or ``None`` without one.

    Placed next to the :class:`~repro.service.store.TableStore` and
    the grid memo, so one ``--cache-dir`` turns on all three layers
    of persistence.
    """
    if cache_dir is None:
        return None
    return RunWarehouse(Path(cache_dir) / WAREHOUSE_FILENAME)
