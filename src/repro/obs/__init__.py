"""repro.obs — the telemetry spine: spans, metrics, run warehouse.

Three small pieces, threaded through every layer of the pipeline:

* :mod:`repro.obs.trace` — hierarchical span tracing (monotonic
  clocks, no-op when disabled, picklable across pool workers);
* :mod:`repro.obs.metrics` — typed counters/gauges/timers behind one
  process-wide :data:`~repro.obs.metrics.REGISTRY`, serialized as
  :class:`~repro.obs.metrics.MetricsSnapshot`;
* :mod:`repro.obs.warehouse` — a SQLite store persisting every
  finished grid point's result row, metrics, and span tree, queried
  by ``repro-tam report``.

This package imports nothing from the rest of ``repro`` (exceptions
aside), so any layer — the kernel, the shard workers, the service —
can instrument without import cycles.  The reporting/rendering side
(:mod:`repro.obs.report`) builds *on top of* the engine and is
imported explicitly by its consumers (the CLI), never from here.

The one discipline rule (enforced by RPR001 and the perf smoke
benchmarks): telemetry observes the deterministic pipeline, it never
feeds it — no scored value ever depends on a span or a counter, and
the kernel's inner loop carries no instrumentation at all (sampling
happens at partition/shard granularity).
"""

from __future__ import annotations

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
)
from repro.obs.trace import (
    NOOP_SPAN,
    TRACER,
    SpanRecord,
    TaskTelemetry,
    Tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "SpanRecord",
    "TaskTelemetry",
    "Tracer",
    "TRACER",
    "NOOP_SPAN",
    "span",
    "task_begin",
    "task_end",
]


def task_begin() -> MetricsSnapshot:
    """Mark the start of one unit of work (a job, a shard, a build).

    Returns the baseline snapshot :func:`task_end` subtracts.  Also
    claims any spans a *previous* task left behind, so the telemetry
    assembled at :func:`task_end` is this task's alone.
    """
    TRACER.drain()
    return REGISTRY.snapshot()


def task_end(baseline: MetricsSnapshot) -> TaskTelemetry:
    """Close one unit of work: its spans plus its metrics delta.

    The returned :class:`TaskTelemetry` is picklable — pool workers
    return it alongside their result, and the parent absorbs it into
    the runner's registry.
    """
    return TaskTelemetry(
        spans=tuple(TRACER.drain()),
        metrics=REGISTRY.snapshot().delta(baseline),
    )
