"""Hierarchical span tracing over monotonic clocks.

The tracer answers "where did this run's wall time go" at the
granularity the batch engine works in — per grid point, per
co-optimization phase, per shard — without ever entering the kernel's
inner assignment loop.  Three properties drive the design:

* **zero-overhead when disabled**: :func:`span` returns one shared
  no-op singleton when tracing is off (the default), so an
  instrumented hot path pays a single attribute check and no
  allocation.  The engine's perf benchmarks assert this stays true.
* **monotonic clocks only**: spans measure with
  :func:`time.monotonic`, the same clock the scoring paths are
  allowed to use (RPR001).  Telemetry never feeds a scored value —
  spans are recorded *around* the deterministic pipeline, not in it.
* **picklable records**: a finished span flattens into a frozen
  :class:`SpanRecord` tree of primitives, so pool workers ship their
  spans back to the parent through the existing result channel
  (:class:`TaskTelemetry` rides next to each worker's result).

Spans nest through a thread-local stack::

    with TRACER.span("co_optimize", soc="d695"):
        with TRACER.span("partition_sweep"):
            ...

Finished *root* spans collect on the tracer and are claimed with
:meth:`Tracer.drain` — typically once per job, by whoever assembles
that job's :class:`TaskTelemetry`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import monotonic as _clock
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "SpanRecord",
    "TaskTelemetry",
    "Tracer",
    "TRACER",
    "span",
]

#: Span metadata as frozen, sorted pairs — hashable and picklable.
MetaPairs = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a name, a duration, and its children.

    ``start_s`` is the span's start offset from its *root* span's
    start (0.0 for a root), so a span tree renders as a timeline
    without any absolute timestamp — wall-clock time deliberately
    never enters these records.  Frozen and built from primitives
    only: picklable across pool workers and JSON-serializable for the
    run warehouse.
    """

    name: str
    start_s: float
    elapsed_s: float
    meta: MetaPairs = ()
    children: Tuple["SpanRecord", ...] = ()

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "SpanRecord"]]:
        """Yield ``(path, record)`` over this span's subtree, pre-order.

        ``path`` joins span names with ``/`` — the key the warehouse
        and the phase-breakdown report aggregate on.
        """
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested), for JSON transport."""
        record: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "elapsed_s": self.elapsed_s,
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        if self.children:
            record["children"] = [
                child.to_dict() for child in self.children
            ]
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record produced by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            start_s=float(data["start_s"]),
            elapsed_s=float(data["elapsed_s"]),
            meta=tuple(sorted(dict(data.get("meta", {})).items())),
            children=tuple(
                cls.from_dict(child)
                for child in data.get("children", [])
            ),
        )


@dataclass(frozen=True)
class TaskTelemetry:
    """What one unit of work reports back: spans plus a metrics delta.

    The picklable envelope pool workers attach to their results (and
    the inline path assembles in-process): the root spans the task
    produced and the task's :class:`~repro.obs.metrics.
    MetricsSnapshot` *delta* — counters and timers attributable to
    this task alone, ready to be absorbed into the parent's registry.
    """

    spans: Tuple[SpanRecord, ...] = ()
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, for event payloads and the warehouse."""
        return {
            "spans": [span.to_dict() for span in self.spans],
            "metrics": self.metrics.to_dict(),
        }


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off.

    A singleton (:data:`NOOP_SPAN`), so the disabled fast path
    allocates nothing — verified by identity in the obs tests and by
    the sweep-kernel benchmark's overhead assertion.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **meta: Any) -> None:
        """Accept and drop metadata, mirroring the live span."""


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An in-flight span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "_name", "_meta", "_start", "_children")

    def __init__(
        self, tracer: "Tracer", name: str, meta: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._meta = meta
        self._start = 0.0
        self._children: List[SpanRecord] = []

    def annotate(self, **meta: Any) -> None:
        """Attach metadata discovered mid-span (e.g. a result size)."""
        self._meta.update(meta)

    def __enter__(self) -> "_LiveSpan":
        self._tracer._stack().append(self)
        self._start = _clock()
        return self

    def __exit__(self, exc_type: Any, *exc_info: object) -> bool:
        elapsed = _clock() - self._start
        stack = self._tracer._stack()
        stack.pop()
        if exc_type is not None:
            self._meta.setdefault("error", exc_type.__name__)
        root_start = stack[0]._start if stack else self._start
        record = SpanRecord(
            name=self._name,
            start_s=self._start - root_start,
            elapsed_s=elapsed,
            meta=tuple(sorted(self._meta.items())),
            children=tuple(self._children),
        )
        if stack:
            stack[-1]._children.append(record)
        else:
            self._tracer._collect(record)
        return False


class Tracer:
    """A process-wide span collector with per-thread nesting.

    Disabled by default: :meth:`span` then returns
    :data:`NOOP_SPAN` and nothing is recorded.  Enabling is a single
    flag flip — the batch engine turns it on in pool workers when the
    parent's tracer is on (via the worker initializer), so one
    ``enable()`` in the parent traces the whole fleet.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[SpanRecord] = []

    def _stack(self) -> List[_LiveSpan]:
        stack: Optional[List[_LiveSpan]] = getattr(
            self._local, "stack", None
        )
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _collect(self, record: SpanRecord) -> None:
        with self._lock:
            self._roots.append(record)

    def span(
        self, name: str, **meta: Any
    ) -> Union[_LiveSpan, _NoopSpan]:
        """A context manager timing ``name``; no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return _LiveSpan(self, name, meta)

    def enable(self) -> None:
        """Start handing out live spans."""
        self.enabled = True

    def disable(self) -> None:
        """Back to the no-op fast path (collected spans remain)."""
        self.enabled = False

    def drain(self) -> List[SpanRecord]:
        """Claim (and clear) every finished root span so far."""
        with self._lock:
            roots, self._roots = self._roots, []
        return roots


#: The process-wide tracer every instrumentation site records into.
TRACER = Tracer()


def span(name: str, **meta: Any) -> Union[_LiveSpan, _NoopSpan]:
    """Module-level shorthand for ``TRACER.span(...)``."""
    if not TRACER.enabled:
        return NOOP_SPAN
    return _LiveSpan(TRACER, name, meta)
