"""Typed runtime metrics: counters, gauges, timers, and snapshots.

One :class:`MetricsRegistry` replaces the scattered integer
attributes the engine and the service grew (``BatchRunner.
shm_fallbacks``, ``ExplorationServer.memo_hits``, ...) with a single
namespace of typed instruments:

* :class:`Counter` — monotonically increasing counts (cache hits,
  shards run, fallbacks);
* :class:`Gauge` — point-in-time levels (queue depth);
* :class:`Timer` — duration accumulators (per-phase wall time),
  measured with :func:`time.monotonic` only.

The registry's serialized view is a frozen :class:`MetricsSnapshot`:
the one shape that rides in ``JobEvent`` payloads, the service
``info()`` op, and the run warehouse.  Snapshots subtract
(:meth:`MetricsSnapshot.delta`) — which is how a *persistent* runner
reports each ``run_grid`` call's own numbers instead of its lifetime
totals — and registries absorb snapshots
(:meth:`MetricsRegistry.absorb`), which is how pool workers' deltas
merge into the parent's registry.

Instrument creation is lock-guarded; updates are plain attribute
arithmetic (GIL-granular).  Metrics are observational only: nothing
in the scoring pipeline ever reads them (RPR001's telemetry rule).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic as _clock
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the count."""
        self.value += amount


class Gauge:
    """A point-in-time level; set, not accumulated."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Timer:
    """An accumulator of durations (monotonic-clock seconds)."""

    __slots__ = ("name", "count", "total_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        self.count += 1
        self.total_s += seconds

    def time(self) -> "_TimerContext":
        """Context manager measuring one block into this timer."""
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = _clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._timer.observe(_clock() - self._start)
        return False


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, serializable view of a registry at one moment.

    Counters and timers are cumulative values; :meth:`delta` turns
    two snapshots of the same registry into the activity *between*
    them (gauges, being levels, carry the later reading through).
    Built from primitives only — picklable for the worker result
    channel and JSON-stable for events, ``info()``, and the
    warehouse.
    """

    counters: Tuple[Tuple[str, int], ...] = ()
    gauges: Tuple[Tuple[str, float], ...] = ()
    #: ``(name, count, total_s)`` per timer.
    timers: Tuple[Tuple[str, int, float], ...] = ()

    def counter(self, name: str) -> int:
        """The named counter's value (0 when absent)."""
        return dict(self.counters).get(name, 0)

    def gauge(self, name: str) -> float:
        """The named gauge's level (0.0 when absent)."""
        return dict(self.gauges).get(name, 0.0)

    def timer(self, name: str) -> Tuple[int, float]:
        """The named timer as ``(count, total_s)`` (zeros when absent)."""
        for timer_name, count, total_s in self.timers:
            if timer_name == name:
                return count, total_s
        return 0, 0.0

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Activity between ``earlier`` and this snapshot.

        Counters/timers subtract (entries that did not move are
        dropped); gauges keep this snapshot's readings.  The result
        is what one run, one job, or one worker task contributed.
        """
        base_counts = dict(earlier.counters)
        counters = tuple(
            (name, value - base_counts.get(name, 0))
            for name, value in self.counters
            if value != base_counts.get(name, 0)
        )
        base_timers = {
            name: (count, total_s)
            for name, count, total_s in earlier.timers
        }
        timers = tuple(
            (name, count - base_timers.get(name, (0, 0.0))[0],
             total_s - base_timers.get(name, (0, 0.0))[1])
            for name, count, total_s in self.timers
            if count != base_timers.get(name, (0, 0.0))[0]
        )
        return MetricsSnapshot(
            counters=counters, gauges=self.gauges, timers=timers
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: the one wire shape for metrics."""
        return {
            "counters": {name: value for name, value in self.counters},
            "gauges": {name: value for name, value in self.gauges},
            "timers": {
                name: {"count": count, "total_s": total_s}
                for name, count, total_s in self.timers
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot serialized by :meth:`to_dict`."""
        if not isinstance(data, dict):
            raise ValidationError("metrics record must be an object")
        try:
            return cls(
                counters=tuple(sorted(
                    (str(name), int(value))
                    for name, value in data.get("counters", {}).items()
                )),
                gauges=tuple(sorted(
                    (str(name), float(value))
                    for name, value in data.get("gauges", {}).items()
                )),
                timers=tuple(sorted(
                    (str(name), int(entry["count"]),
                     float(entry["total_s"]))
                    for name, entry in data.get("timers", {}).items()
                )),
            )
        except (TypeError, KeyError, ValueError) as error:
            raise ValidationError(
                f"malformed metrics record: {error}"
            ) from error


class MetricsRegistry:
    """A namespace of named instruments with snapshot/absorb support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(name)
                )
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def timer(self, name: str) -> Timer:
        """The named timer, created on first use."""
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, Timer(name))
        return timer

    def instruments(self) -> Iterator[str]:
        """Every instrument name currently registered."""
        with self._lock:
            yield from sorted(
                set(self._counters) | set(self._gauges)
                | set(self._timers)
            )

    def snapshot(self) -> MetricsSnapshot:
        """This registry's current values, frozen."""
        with self._lock:
            return MetricsSnapshot(
                counters=tuple(sorted(
                    (name, counter.value)
                    for name, counter in self._counters.items()
                )),
                gauges=tuple(sorted(
                    (name, gauge.value)
                    for name, gauge in self._gauges.items()
                )),
                timers=tuple(sorted(
                    (name, timer.count, timer.total_s)
                    for name, timer in self._timers.items()
                )),
            )

    def absorb(self, snapshot: Optional[MetricsSnapshot]) -> None:
        """Fold a (delta) snapshot into this registry.

        Counters and timers add; gauges take the snapshot's reading.
        This is the merge half of the worker telemetry channel: each
        pool task ships its delta, the parent absorbs it, and the
        parent's own snapshots then cover the whole fleet.
        """
        if snapshot is None:
            return
        for name, value in snapshot.counters:
            self.counter(name).inc(value)
        for name, value in snapshot.gauges:
            self.gauge(name).set(value)
        for name, count, total_s in snapshot.timers:
            timer = self.timer(name)
            timer.count += count
            timer.total_s += total_s


#: The process-wide registry library instrumentation records into.
#: Pool workers each have their own (fresh process); their deltas
#: ship back with results and are absorbed by the parent's runner.
REGISTRY = MetricsRegistry()
