"""Architecture analysis: why a wrapper/TAM design is good (or not).

The paper's introduction argues that multiple TAMs reduce testing time
for two reasons: (i) cores can ride buses whose widths match their
test-data needs, wasting fewer wires, and (ii) more buses mean more
parallelism.  This subpackage makes both effects measurable, and adds
optimality certificates from makespan lower bounds:

* :mod:`~repro.analysis.utilization` — per-bus and per-core wire-level
  accounting: idle wires (granted minus used), idle bus-cycles, and
  the wire-cycle utilization of a whole architecture;
* :mod:`~repro.analysis.certificates` — how close a result provably is
  to optimal, from the bottleneck-core and area lower bounds;
* :mod:`~repro.analysis.sweep` — width/TAM-count sweeps returning
  structured records for plotting or tabulation.
"""

from repro.analysis.utilization import (
    ArchitectureUtilization,
    BusUtilization,
    analyze_utilization,
)
from repro.analysis.certificates import Certificate, certify
from repro.analysis.sweep import (
    SweepPoint,
    evaluate_point,
    sweep_widths,
    sweep_tam_counts,
)

__all__ = [
    "ArchitectureUtilization",
    "BusUtilization",
    "analyze_utilization",
    "Certificate",
    "certify",
    "SweepPoint",
    "evaluate_point",
    "sweep_widths",
    "sweep_tam_counts",
]
