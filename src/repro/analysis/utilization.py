"""Wire-level utilization accounting for a wrapper/TAM architecture.

Two kinds of waste exist under the test-bus model:

* **idle wires** — a core whose wrapper saturates at ``u < w`` wires
  leaves ``w - u`` of its bus's wires unused for its whole test
  (the waste the paper says width-matched multiple TAMs reduce);
* **idle cycles** — a bus that finishes before the SOC makespan sits
  idle (the parallelism effect).

Both reduce to *wire-cycles*: the architecture offers
``W * makespan`` wire-cycles; each core usefully occupies
``used_width(core) * time(core)`` of them.  Utilization is the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.soc.soc import Soc
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable, build_time_tables


@dataclass(frozen=True)
class CoreUtilization:
    """One core's wire usage on its bus."""

    core_name: str
    bus: int
    bus_width: int
    used_width: int
    testing_time: int

    @property
    def idle_wires(self) -> int:
        """Wires of the bus this core never drives."""
        return self.bus_width - self.used_width

    @property
    def idle_wire_cycles(self) -> int:
        """Wire-cycles wasted by this core's width mismatch."""
        return self.idle_wires * self.testing_time


@dataclass(frozen=True)
class BusUtilization:
    """One bus's aggregate usage."""

    bus: int
    width: int
    busy_cycles: int
    makespan: int
    cores: Tuple[CoreUtilization, ...]

    @property
    def idle_cycles(self) -> int:
        """Cycles the bus sits idle before the SOC test completes."""
        return self.makespan - self.busy_cycles

    @property
    def idle_wire_cycles(self) -> int:
        """Total wasted wire-cycles on this bus (both waste kinds)."""
        width_waste = sum(core.idle_wire_cycles for core in self.cores)
        return width_waste + self.width * self.idle_cycles


@dataclass(frozen=True)
class ArchitectureUtilization:
    """Whole-architecture wire-cycle accounting."""

    widths: Tuple[int, ...]
    makespan: int
    buses: Tuple[BusUtilization, ...]

    @property
    def total_wire_cycles(self) -> int:
        """Wire-cycles the architecture offers: W * makespan."""
        return sum(self.widths) * self.makespan

    @property
    def useful_wire_cycles(self) -> int:
        """Wire-cycles actually carrying test data."""
        return sum(
            core.used_width * core.testing_time
            for bus in self.buses
            for core in bus.cores
        )

    @property
    def idle_wire_cycles(self) -> int:
        return self.total_wire_cycles - self.useful_wire_cycles

    @property
    def utilization(self) -> float:
        """Fraction of offered wire-cycles spent carrying test data."""
        if self.total_wire_cycles == 0:
            return 0.0
        return self.useful_wire_cycles / self.total_wire_cycles

    def describe(self) -> str:
        """Multi-line utilization report."""
        lines = [
            f"architecture {'+'.join(map(str, self.widths))}: "
            f"makespan {self.makespan}, utilization "
            f"{self.utilization:.1%}",
        ]
        for bus in self.buses:
            lines.append(
                f"  bus {bus.bus + 1} (w={bus.width}): busy "
                f"{bus.busy_cycles}/{self.makespan} cycles, "
                f"{bus.idle_wire_cycles} idle wire-cycles"
            )
        return "\n".join(lines)


def analyze_utilization(
    soc: Soc,
    result: AssignmentResult,
    tables: Optional[Dict[str, TimeTable]] = None,
) -> ArchitectureUtilization:
    """Account every wire-cycle of ``result`` on ``soc``.

    ``tables`` must cover widths up to the architecture's widest bus
    (as produced by :func:`repro.wrapper.pareto.build_time_tables` or
    shared from ``CoOptimizationResult.tables`` / a
    :class:`repro.engine.WrapperTableCache`); when ``None`` they are
    built here at the widest bus width.
    """
    if tables is None:
        tables = build_time_tables(soc, max(result.widths))
    if len(result.assignment) != len(soc.cores):
        raise ValidationError(
            f"assignment covers {len(result.assignment)} cores, "
            f"SOC has {len(soc.cores)}"
        )
    makespan = result.testing_time

    buses: List[BusUtilization] = []
    for bus_index, width in enumerate(result.widths):
        core_utils = []
        busy = 0
        for core_index in result.cores_on_bus(bus_index):
            core = soc.cores[core_index]
            table = tables[core.name]
            time = table.time(width)
            design = table.design(width)
            busy += time
            core_utils.append(
                CoreUtilization(
                    core_name=core.name,
                    bus=bus_index,
                    bus_width=width,
                    used_width=design.used_width,
                    testing_time=time,
                )
            )
        buses.append(
            BusUtilization(
                bus=bus_index,
                width=width,
                busy_cycles=busy,
                makespan=makespan,
                cores=tuple(core_utils),
            )
        )
    return ArchitectureUtilization(
        widths=result.widths,
        makespan=makespan,
        buses=tuple(buses),
    )
