"""Optimality certificates from makespan lower bounds.

A heuristic answer is far more useful with a proof of how bad it can
possibly be.  For a fixed architecture the P_AW lower bounds apply
directly; across *all* architectures of total width W the relevant
floor is the bottleneck core at full width — no partition can beat
the slowest core's own best time.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Optional

from repro.exceptions import ValidationError
from repro.schedule.makespan import unrelated_lower_bound
from repro.soc.soc import Soc
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable, build_time_tables


@dataclass(frozen=True)
class Certificate:
    """How close ``testing_time`` provably is to the optimum.

    ``architecture_bound`` holds for the *given* width partition;
    ``global_bound`` holds for every architecture of the same total
    width (bottleneck core + total-work floor).  ``gap`` is measured
    against the tighter (larger) of the two that applies.
    """

    testing_time: int
    architecture_bound: int
    global_bound: int

    @property
    def bound(self) -> int:
        return max(self.architecture_bound, self.global_bound)

    @property
    def gap(self) -> float:
        """Relative optimality gap: 0.0 means provably optimal."""
        if self.bound <= 0:
            raise ValidationError("cannot certify against a zero bound")
        return self.testing_time / self.bound - 1.0

    @property
    def is_provably_optimal(self) -> bool:
        return self.testing_time == self.bound

    def describe(self) -> str:
        """One-line gap report for logs and the CLI."""
        return (
            f"T = {self.testing_time}, bound = {self.bound} "
            f"(architecture {self.architecture_bound}, global "
            f"{self.global_bound}): gap {self.gap:.2%}"
        )


def global_lower_bound(
    soc: Soc, tables: Dict[str, TimeTable], total_width: int
) -> int:
    """Floor over every architecture of ``total_width`` wires.

    Two effects, both partition-independent:

    * the bottleneck core: some core must run somewhere, and no bus
      can be wider than W, so T* >= max_i T_i(W);
    * total work: the W wires supply at most W wire-cycles per clock,
      and core i occupies at least ``used_width * T_i`` wire-cycles
      at its cheapest operating point; we use the weaker but safe
      pattern floor  sum_i T_i(W) * 1 / ... — conservatively, the
      serial floor divided by W is dominated by per-core minima, so
      the bound used is  max(bottleneck, ceil(sum_i min-work / W))
      with min-work_i = T_i(W) (each core occupies at least one wire
      for its whole test).
    """
    bottleneck = 0
    min_work = 0
    for core in soc.cores:
        best_time = tables[core.name].time(total_width)
        bottleneck = max(bottleneck, best_time)
        min_work += best_time
    return max(bottleneck, ceil(min_work / total_width))


def certify(
    soc: Soc,
    result: AssignmentResult,
    tables: Optional[Dict[str, TimeTable]] = None,
) -> Certificate:
    """Build a :class:`Certificate` for ``result`` on ``soc``.

    ``tables`` are the wrapper time tables to read T(i, w) from —
    pass the ones the optimization already built (e.g.
    ``CoOptimizationResult.tables`` or a
    :class:`repro.engine.WrapperTableCache`).  When ``None`` they are
    built here, which re-runs ``Design_wrapper`` per (core, width).
    """
    if tables is None:
        tables = build_time_tables(soc, sum(result.widths))
    times = [
        [tables[core.name].time(width) for width in result.widths]
        for core in soc.cores
    ]
    return Certificate(
        testing_time=result.testing_time,
        architecture_bound=unrelated_lower_bound(times),
        global_bound=global_lower_bound(
            soc, tables, sum(result.widths)
        ),
    )
