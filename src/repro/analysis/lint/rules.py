"""The project-invariant rules (RPR001—RPR007, except the schema lock).

Each rule mechanizes one contract the differential suites only
sample.  They are deliberately *syntactic* approximations — sound
enough to catch the regressions that actually happen (a wall-clock
call creeping into the kernel, a segment created without a cleanup
path, a lambda handed to the pool), cheap enough to run on every
commit, and suppressible per line with ``# repro: allow[CODE] why``
where a human can see further than the AST.

The golden spec-schema lock (RPR004) lives in
:mod:`repro.analysis.lint.schema_lock` — it diffs a committed
artifact, not a single module.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.engine import (
    ModuleSource,
    Rule,
    Violation,
    register,
)

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _call_name(node: ast.AST) -> Optional[str]:
    """``foo`` for ``foo(...)``, ``bar`` for ``x.bar(...)``, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_name(node: ast.AST) -> Optional[str]:
    """The leftmost simple name of an attribute chain, if any."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_expression(node: ast.AST) -> bool:
    """A set display, set/frozenset call, or set comprehension."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _enclosing_functions(
    tree: ast.Module,
) -> Dict[ast.AST, List[ast.AST]]:
    """node → stack of enclosing function/lambda nodes (outermost first)."""
    scopes: Dict[ast.AST, List[ast.AST]] = {}

    def visit(node: ast.AST, stack: List[ast.AST]) -> None:
        scopes[node] = stack
        child_stack = stack
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            child_stack = stack + [node]
        for child in ast.iter_child_nodes(node):
            visit(child, child_stack)

    visit(tree, [])
    return scopes


def _local_callables(scope: ast.AST) -> Set[str]:
    """Names bound to nested defs or lambdas directly inside ``scope``.

    Anything in this set cannot be pickled by the pool transport: it
    is reachable only through the enclosing frame.
    """
    names: Set[str] = set()
    body = getattr(scope, "body", [])
    statements = list(body if isinstance(body, list) else [])
    while statements:
        statement = statements.pop()
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            names.add(statement.name)
            continue  # a nested def's own body is a deeper scope
        if isinstance(statement, ast.Assign) and isinstance(
            statement.value, ast.Lambda
        ):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        # Walk compound statements (if/for/try/with) at this level.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.stmt):
                statements.append(child)
    return names


# ---------------------------------------------------------------------------
# RPR001 — determinism in the hot scoring paths
# ---------------------------------------------------------------------------

#: The scoring paths whose outputs must be bit-identical across runs,
#: shard counts, and hosts (DESIGN.md §5: the shard merge's replay
#: proof assumes partition scores are pure functions of their inputs).
_HOT_PATH_PATTERNS = (
    re.compile(r"(^|/)repro/engine/kernel\.py$"),
    re.compile(r"(^|/)repro/partition/shard\.py$"),
    re.compile(r"(^|/)repro/partition/evaluate\.py$"),
    re.compile(r"(^|/)repro/assign/[^/]+\.py$"),
    # The anytime search tier: seeded random.Random only, and a
    # fixed-seed run must replay bit-identically at any worker count.
    re.compile(r"(^|/)repro/search/[^/]+\.py$"),
)

#: module name → banned attributes (wall clock, entropy).  The
#: monotonic clock is deliberately *not* listed: deadlines and elapsed
#: metrics are allowed, wall-clock values leaking into scores are not.
_NONDETERMINISTIC_CALLS: Dict[str, Tuple[str, ...]] = {
    "time": ("time", "time_ns"),
    "_time": ("time", "time_ns"),
    "datetime": ("now", "utcnow", "today"),
    "date": ("today",),
    "os": ("urandom",),
    "uuid": ("uuid1", "uuid4"),
}


@register
class DeterminismRule(Rule):
    """RPR001: no order- or clock-sensitive constructs in hot paths."""

    code = "RPR001"
    name = "determinism"
    description = (
        "Hot scoring paths (engine/kernel, partition/shard, "
        "partition/evaluate, assign/*, search/*) must be "
        "bit-deterministic: no wall-clock or entropy calls, no "
        "unseeded random, no iteration or float accumulation over "
        "unordered sets."
    )

    def applies_to(self, relpath: str) -> bool:
        """The determinism rule patrols only the hot scoring paths."""
        return any(
            pattern.search(relpath) for pattern in _HOT_PATH_PATTERNS
        )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag non-deterministic constructs in this hot-path module."""
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(
                    module, node, node.iter
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iteration(
                        module, node, generator.iter
                    )

    def _check_import(
        self, module: ModuleSource, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        if node.module == "random":
            yield self.violation(
                module, node,
                "import from 'random' in a hot scoring path; use an "
                "explicitly seeded random.Random instance threaded "
                "through the caller",
            )
        elif node.module == "time":
            banned = [
                alias.name for alias in node.names
                if alias.name in ("time", "time_ns")
            ]
            if banned:
                yield self.violation(
                    module, node,
                    f"wall-clock import ({', '.join(banned)}) in a "
                    f"hot scoring path; use time.monotonic for "
                    f"deadlines and elapsed metrics",
                )

    def _check_call(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # sum() over a set: float accumulation in set order.
            if (
                isinstance(func, ast.Name)
                and func.id == "sum"
                and node.args
                and _is_set_expression(node.args[0])
            ):
                yield self.violation(
                    module, node,
                    "sum() over an unordered set accumulates floats "
                    "in set-iteration order; sort first",
                )
            return
        base = _base_name(func.value)
        if base is None:
            return
        if base in ("random", "_random"):
            if func.attr != "Random":
                yield self.violation(
                    module, node,
                    f"random.{func.attr}() uses the shared unseeded "
                    f"generator; construct random.Random(seed) "
                    f"explicitly",
                )
            return
        banned = _NONDETERMINISTIC_CALLS.get(base, ())
        if func.attr in banned:
            yield self.violation(
                module, node,
                f"{base}.{func.attr}() is non-deterministic; hot "
                f"scoring paths may only use the monotonic clock",
            )

    def _check_iteration(
        self, module: ModuleSource, node: ast.AST, iterable: ast.expr
    ) -> Iterator[Violation]:
        if _is_set_expression(iterable):
            yield self.violation(
                module, node,
                "iteration over an unordered set in a hot scoring "
                "path; wrap in sorted(...) to fix the order",
            )


# ---------------------------------------------------------------------------
# RPR002 — shared-memory segment lifecycle
# ---------------------------------------------------------------------------


@register
class ShmLifecycleRule(Rule):
    """RPR002: every shm segment is created/attached with a cleanup path."""

    code = "RPR002"
    name = "shm-lifecycle"
    description = (
        "Every SharedMemory(create=True) must live in a module with "
        "both .close() and .unlink() cleanup calls, and every attach "
        "in a module with .close() — leaked segments survive the "
        "process and exhaust /dev/shm."
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag shm segments without a close()/unlink() path."""
        tree = module.tree
        assert tree is not None
        creates: List[ast.Call] = []
        attaches: List[ast.Call] = []
        method_calls: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                method_calls.add(node.func.attr)
            if _call_name(node.func) != "SharedMemory":
                continue
            if any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            ):
                creates.append(node)
            else:
                attaches.append(node)
        for node in creates:
            missing = [
                cleanup for cleanup in ("close", "unlink")
                if cleanup not in method_calls
            ]
            if missing:
                yield self.violation(
                    module, node,
                    f"SharedMemory(create=True) without a "
                    f"{' + '.join('.' + m + '()' for m in missing)} "
                    f"cleanup path in this module; the segment "
                    f"outlives the process",
                )
        for node in attaches:
            if "close" not in method_calls:
                yield self.violation(
                    module, node,
                    "SharedMemory attach without a .close() call in "
                    "this module; the mapping leaks",
                )


# ---------------------------------------------------------------------------
# RPR003 — pool picklability
# ---------------------------------------------------------------------------

#: Receiver names that identify a process-pool submission; a method
#: called ``submit`` on anything else (e.g. the exploration server)
#: is not a pool hand-off.
_POOL_RECEIVER = re.compile(r"pool|executor", re.IGNORECASE)

#: Methods whose first positional argument crosses the pickle boundary.
_POOL_METHODS = ("submit", "apply_async", "map", "imap")


@register
class PicklabilityRule(Rule):
    """RPR003: callables handed to the pool must be module-level."""

    code = "RPR003"
    name = "pool-picklability"
    description = (
        "Callables submitted to BatchRunner's pool / a "
        "ProcessPoolExecutor must be module-level functions; lambdas "
        "and nested defs fail to pickle at runtime, inside a worker."
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag non-module-level callables handed to pool methods."""
        tree = module.tree
        assert tree is not None
        scopes = _enclosing_functions(tree)
        local_names: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _POOL_METHODS:
                continue
            receiver = _base_name(func.value)
            terminal = (
                func.value.attr
                if isinstance(func.value, ast.Attribute) else receiver
            )
            if not any(
                name and _POOL_RECEIVER.search(name)
                for name in (receiver, terminal)
            ):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            if isinstance(payload, ast.Lambda):
                yield self.violation(
                    module, node,
                    f"lambda passed to {func.attr}() on a pool; "
                    f"pool payloads must be module-level functions "
                    f"(pickled by name)",
                )
                continue
            if isinstance(payload, ast.Name):
                for scope in scopes.get(node, []):
                    if scope not in local_names:
                        local_names[scope] = _local_callables(scope)
                    if payload.id in local_names[scope]:
                        yield self.violation(
                            module, node,
                            f"'{payload.id}' is defined inside an "
                            f"enclosing function; pool payloads must "
                            f"be module-level functions (pickled by "
                            f"name)",
                        )
                        break


# ---------------------------------------------------------------------------
# RPR005 — protocol discipline on the wire
# ---------------------------------------------------------------------------

#: The service modules that touch sockets.  The on-disk stores
#: (service/store.py) parse their own JSON artifacts and are exempt.
_WIRE_MODULE = re.compile(
    r"(^|/)repro/service/(ipc|client|server)\.py$"
)

#: Referencing any of these inside the decoding function counts as
#: routing through the versioned envelope layer.
_ENVELOPE_SYMBOLS = ("JobRequest", "JobEvent", "handle_request")


@register
class ProtocolDisciplineRule(Rule):
    """RPR005: wire bytes decode through the versioned envelopes."""

    code = "RPR005"
    name = "protocol-discipline"
    description = (
        "In the wire-facing service modules, json.loads is only "
        "allowed inside functions that route the decoded object "
        "through the v1/v2 envelope validators (JobRequest / "
        "JobEvent / handle_request) — raw dicts must never drive "
        "protocol behavior."
    )

    def applies_to(self, relpath: str) -> bool:
        """The protocol rule patrols only the wire-facing modules."""
        return _WIRE_MODULE.search(relpath) is not None

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag raw json.loads outside the envelope validators."""
        tree = module.tree
        assert tree is not None
        scopes = _enclosing_functions(tree)
        referenced: Dict[ast.AST, bool] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "loads"
                and _base_name(func.value) == "json"
            ):
                continue
            stack = scopes.get(node, [])
            functions = [
                scope for scope in stack
                if isinstance(
                    scope, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            ]
            if not functions:
                yield self.violation(
                    module, node,
                    "module-level json.loads on wire data; decode "
                    "inside a handler that validates through the "
                    "protocol envelopes",
                )
                continue
            enclosing = functions[-1]
            if enclosing not in referenced:
                referenced[enclosing] = _references_envelope(enclosing)
            if not referenced[enclosing]:
                yield self.violation(
                    module, node,
                    f"json.loads in {enclosing.name}() without "
                    f"routing through an envelope validator "
                    f"({', '.join(_ENVELOPE_SYMBOLS)}); raw wire "
                    f"dicts bypass version and field validation",
                )


def _references_envelope(function: ast.AST) -> bool:
    """Whether a function's body mentions an envelope validator."""
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and node.id in _ENVELOPE_SYMBOLS:
            return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _ENVELOPE_SYMBOLS
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# RPR006 / RPR007 — repo-wide hygiene the hot rules assume
# ---------------------------------------------------------------------------


@register
class MutableDefaultRule(Rule):
    """RPR006: no mutable default arguments."""

    code = "RPR006"
    name = "mutable-default"
    description = (
        "Mutable default arguments ([] / {} / set()) are shared "
        "across calls — state bleeds between jobs and, through the "
        "pool, between grids.  Default to None and construct inside."
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag mutable default values in function signatures."""
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        module, default,
                        f"mutable default argument in {label}(); "
                        f"use None and construct per call",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Name
        ):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


@register
class BareExceptRule(Rule):
    """RPR007: no bare ``except:`` clauses."""

    code = "RPR007"
    name = "bare-except"
    description = (
        "A bare except: swallows KeyboardInterrupt and SystemExit — "
        "it can wedge pool shutdown and hide worker crashes.  Catch "
        "Exception (or narrower) instead."
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag bare ``except:`` clauses."""
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    module, node,
                    "bare 'except:' clause; catch Exception or a "
                    "narrower type",
                )


# ---------------------------------------------------------------------------
# RPR008 — retry loops bounded, backoff from the seeded schedule
# ---------------------------------------------------------------------------

#: The layers whose retry behavior must stay deterministic and
#: bounded (DESIGN.md §8: every recovery path terminates, and its
#: delays come from ``repro.retry.backoff_schedule``).
_RETRY_MODULE = re.compile(
    r"(^|/)repro/(service|engine)/[^/]+\.py$"
)


def _literal_only(node: ast.expr) -> bool:
    """An expression built solely from numeric literals.

    ``0.5``, ``-1``, ``0.1 * 3`` count; any name, call or subscript
    (a schedule lookup) does not.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float))
    if isinstance(node, ast.UnaryOp):
        return _literal_only(node.operand)
    if isinstance(node, ast.BinOp):
        return _literal_only(node.left) and _literal_only(node.right)
    return False


@register
class BoundedBackoffRule(Rule):
    """RPR008: retries are bounded; sleeps come from the schedule."""

    code = "RPR008"
    name = "bounded-backoff"
    description = (
        "Service/engine retry behavior must be deterministic and "
        "bounded: no sleep() with hard-coded literal delays (derive "
        "from repro.retry.backoff_schedule so tests can predict "
        "every delay), and no `while True` loop whose exception "
        "handler just `continue`s — an unbounded retry that spins "
        "forever when the failure is permanent."
    )

    def applies_to(self, relpath: str) -> bool:
        """The backoff rule patrols the service and engine layers."""
        return _RETRY_MODULE.search(relpath) is not None

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Flag literal sleeps and unbounded retry loops."""
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_sleep(module, node)
            elif isinstance(node, ast.While):
                yield from self._check_retry_loop(module, node)

    def _check_sleep(
        self, module: ModuleSource, node: ast.Call
    ) -> Iterator[Violation]:
        if _call_name(node.func) != "sleep":
            return
        if node.args and all(
            _literal_only(arg) for arg in node.args
        ):
            yield self.violation(
                module, node,
                "sleep() with a hard-coded literal delay; derive "
                "delays from repro.retry.backoff_schedule so retry "
                "timing is seeded, bounded and testable",
            )

    def _check_retry_loop(
        self, module: ModuleSource, node: ast.While
    ) -> Iterator[Violation]:
        # Only unconditional loops can be unbounded by construction;
        # `while attempt < n` style loops carry their own bound.
        if not (
            isinstance(node.test, ast.Constant)
            and node.test.value is True
        ):
            return
        for statement in node.body:
            if not isinstance(statement, ast.Try):
                continue
            for handler in statement.handlers:
                if self._swallows_and_continues(handler):
                    yield self.violation(
                        module, handler,
                        "`while True` retry whose except handler "
                        "continues without a raise or break: "
                        "unbounded when the failure is permanent — "
                        "count attempts against a bounded "
                        "backoff_schedule and re-raise on exhaustion",
                    )

    @staticmethod
    def _swallows_and_continues(handler: ast.ExceptHandler) -> bool:
        """A handler that retries (``continue``) with no escape path."""
        retries = False
        for node in ast.walk(handler):
            if isinstance(node, ast.Continue):
                retries = True
            if isinstance(node, (ast.Raise, ast.Break, ast.Return)):
                return False
        return retries
