"""The lint command line — ``repro-tam lint`` and ``python -m
repro.analysis`` run the identical entry point (the same contract the
main CLI keeps between ``repro-tam`` and ``python -m repro``).

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage errors
(unknown rule codes, missing paths) — so CI can distinguish "the tree
regressed" from "the lint invocation is broken".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.engine import all_rules, run_lint
from repro.analysis.lint.report import render_json, render_text
from repro.analysis.lint.schema_lock import write_golden


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags (shared with the ``repro-tam`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint "
             "(default: ./src, falling back to the root)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root violations are reported relative to "
             "(default: the current directory)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run "
             "(default: every registered rule)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--write-schema", action="store_true",
        help="regenerate the committed golden spec schema from the "
             "live dataclasses (run after a deliberate version bump) "
             "and exit",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0
    if args.write_schema:
        golden = write_golden()
        print(f"golden spec schema written to {golden}")
        return 0
    root = Path(args.root) if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else None
    if paths is not None:
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            print(
                f"error: no such path: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 2
    select = None
    if args.select:
        select = [
            code.strip() for code in args.select.split(",")
            if code.strip()
        ]
    try:
        report = run_lint(paths=paths, root=root, select=select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rendered = (
        render_json(report) if args.format == "json"
        else render_text(report)
    )
    print(rendered)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro-tam lint",
        description="Project-invariant static analysis: determinism "
                    "in the hot scoring paths, shared-memory "
                    "lifecycle, pool picklability, the golden spec-"
                    "schema lock, and wire-protocol discipline.",
        epilog="Invoke as `repro-tam lint` or `python -m "
               "repro.analysis` — the two entry points run the "
               "identical linter.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
