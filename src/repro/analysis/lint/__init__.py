"""Project-invariant lint: the contracts of PRs 3–5, enforced statically.

The differential suites prove determinism, shm lifecycle, and schema
freezing only on sampled paths; this package checks them on every
line of every file, on every run:

* :mod:`~repro.analysis.lint.engine` — the visitor framework, rule
  registry, ``# repro: allow[CODE]`` suppression, and
  :func:`~repro.analysis.lint.engine.run_lint`;
* :mod:`~repro.analysis.lint.rules` — RPR001 determinism, RPR002
  shm-lifecycle, RPR003 pool-picklability, RPR005
  protocol-discipline, RPR006 mutable-default, RPR007 bare-except;
* :mod:`~repro.analysis.lint.schema_lock` — RPR004, the committed
  golden spec schema;
* :mod:`~repro.analysis.lint.cli` — ``repro-tam lint`` /
  ``python -m repro.analysis``.
"""

from repro.analysis.lint.engine import (
    LintReport,
    ModuleSource,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    register,
    run_lint,
)
from repro.analysis.lint.schema_lock import (
    check_drift,
    current_schema,
    golden_path,
    load_golden,
    write_golden,
)

__all__ = [
    "LintReport",
    "ModuleSource",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "register",
    "run_lint",
    "check_drift",
    "current_schema",
    "golden_path",
    "load_golden",
    "write_golden",
]
