"""The lint engine: sources in, rule-checked violations out.

The differential suites prove the project's correctness contracts —
bit-identical sharding, shared-memory lifecycle, frozen spec schema —
only on the paths they happen to exercise.  This engine enforces the
same contracts *mechanically*, over every file, on every run:

* a :class:`ModuleSource` wraps one parsed file (text, AST, and the
  ``# repro: allow[...]`` suppression table, all computed lazily);
* a :class:`Rule` inspects one module at a time; a
  :class:`ProjectRule` inspects the tree as a whole (the golden spec
  schema lock needs the committed artifact, not a single file);
* :func:`run_lint` walks the requested paths, applies every selected
  rule, filters suppressed findings, and returns a
  :class:`LintReport`.

Suppression syntax
------------------
A violation is silenced by a trailing comment on its line::

    segment = SharedMemory(name=name)  # repro: allow[RPR002] freed by caller

Several codes may share one comment (``allow[RPR001,RPR005]``).  The
prose after the bracket is *required by convention* — say why the
construct is safe — but not enforced mechanically.

Rules register themselves via :func:`register`; the registry is the
single source the CLI's ``--list-rules`` and ``--select`` read.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: ``# repro: allow[RPR001]`` / ``# repro: allow[RPR001,RPR005] why``.
_ALLOW_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]"
)

#: Pseudo-rule emitted for files the parser rejects outright.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and what went wrong."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (the ``--format json`` reporter's unit)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleSource:
    """One file under lint: path, text, AST, and suppressions.

    The AST and the suppression table are parsed on first use and
    cached, so a file skipped by every rule's ``applies_to`` is never
    parsed at all.
    """

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self._tree: Optional[ast.Module] = None
        self._parse_error: Optional[SyntaxError] = None
        self._suppressions: Optional[Dict[int, Set[str]]] = None

    @property
    def tree(self) -> Optional[ast.Module]:
        """The parsed module, or ``None`` on a syntax error."""
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text, filename=self.relpath)
            except SyntaxError as error:
                self._parse_error = error
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        """The syntax error that blocked parsing, if any."""
        self.tree  # noqa: B018 - force the lazy parse
        return self._parse_error

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """Line number → rule codes allowed on that line."""
        if self._suppressions is None:
            self._suppressions = _parse_suppressions(self.text)
        return self._suppressions

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether an ``allow`` comment covers this violation."""
        allowed = self.suppressions.get(violation.line, set())
        return violation.rule in allowed or "*" in allowed

    def violation(
        self, rule: str, node: ast.AST, message: str
    ) -> Violation:
        """A violation anchored at ``node``'s source position."""
        return Violation(
            rule=rule,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Extract the per-line ``# repro: allow[...]`` table from source.

    Tokenizing (rather than regexing raw lines) keeps ``allow``
    markers inside string literals from suppressing anything.
    """
    table: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_PATTERN.search(token.string)
            if match is None:
                continue
            codes = {
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            }
            table.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        # An untokenizable file will fail AST parsing too; the parse
        # error is reported instead of a suppression table.
        pass
    return table


class Rule:
    """One per-module check.  Subclass, set the class fields, register.

    ``applies_to`` narrows a rule to the paths whose invariant it
    guards (the determinism rule only patrols the hot scoring paths);
    the default is every file.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule inspects the module at ``relpath``."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Yield this rule's findings for one module."""
        raise NotImplementedError

    def violation(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Violation:
        """Subclass shorthand: a finding of this rule at ``node``."""
        return module.violation(self.code, node, message)


class ProjectRule(Rule):
    """A check over the tree as a whole rather than one module.

    Runs once per lint invocation; per-line suppression does not
    apply (the findings name artifacts, not source lines).
    """

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Nothing per-module; see :meth:`check_project`."""
        return iter(())

    def check_project(self, root: Path) -> Iterator[Violation]:
        """Yield this rule's findings for the whole tree."""
        raise NotImplementedError


#: code → rule instance; populated by :func:`register` at import time.
_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the engine registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"{rule_cls.__name__} has no rule code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    _load_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _load_rules() -> None:
    """Import the rule modules so their ``register`` calls run."""
    from repro.analysis.lint import rules, schema_lock  # noqa: F401


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no violation survived suppression."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for the ``--format json`` reporter."""
        return {
            "schema": 1,
            "kind": "lint",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "violations": [v.to_dict() for v in self.violations],
        }


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted for determinism."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and candidate.suffix == ".py":
                seen.add(resolved)
                yield candidate


def _relpath(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` (posix), or absolute if outside."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint ``paths`` (default: ``root/src``) with the selected rules.

    ``select`` narrows the run to specific rule codes (unknown codes
    raise ``ValueError`` — a typo must not silently lint nothing).
    Findings suppressed by ``# repro: allow[...]`` comments are
    dropped; everything else is returned sorted by location.
    """
    root = Path.cwd() if root is None else Path(root)
    if paths is None:
        default = root / "src"
        paths = [default if default.is_dir() else root]
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        known = {rule.code for rule in rules}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        rules = [rule for rule in rules if rule.code in wanted]
    module_rules = [
        rule for rule in rules if not isinstance(rule, ProjectRule)
    ]
    project_rules = [
        rule for rule in rules if isinstance(rule, ProjectRule)
    ]

    report = LintReport(rules_run=tuple(rule.code for rule in rules))
    for path in _iter_python_files([Path(p) for p in paths]):
        relpath = _relpath(path, root)
        applicable = [
            rule for rule in module_rules if rule.applies_to(relpath)
        ]
        if not applicable:
            continue
        module = ModuleSource(path, relpath, path.read_text())
        report.files_checked += 1
        if module.tree is None:
            error = module.parse_error
            report.violations.append(Violation(
                rule=PARSE_ERROR_CODE,
                path=relpath,
                line=error.lineno or 1 if error else 1,
                col=error.offset or 0 if error else 0,
                message=f"syntax error: "
                        f"{error.msg if error else 'unparsable file'}",
            ))
            continue
        for rule in applicable:
            for violation in rule.check(module):
                if not module.is_suppressed(violation):
                    report.violations.append(violation)
    for rule in project_rules:
        report.violations.extend(rule.check_project(root))
    report.violations.sort(
        key=lambda v: (v.path, v.line, v.col, v.rule)
    )
    return report
