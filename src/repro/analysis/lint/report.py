"""Reporters: a :class:`~repro.analysis.lint.engine.LintReport` out.

Two formats, matching the rest of the CLI surface:

* ``text`` — one ``path:line:col: CODE message`` line per finding
  (editor- and grep-friendly) plus a one-line summary;
* ``json`` — a single schema-tagged object, the same shape
  ``repro-tam batch --json`` consumers already parse by convention.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """The human-facing report: findings, then a summary line."""
    lines: List[str] = [
        violation.render() for violation in report.violations
    ]
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(
            f"ok: {report.files_checked} {noun} checked, "
            f"{len(report.rules_run)} rule(s), no violations"
        )
    else:
        lines.append(
            f"FAILED: {len(report.violations)} violation(s) in "
            f"{report.files_checked} {noun} checked"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-facing report as one JSON document."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
