"""RPR004 — the golden spec-schema lock.

PR 4 froze the job description into schema-versioned dataclasses
(:class:`~repro.api.specs.OptimizeSpec` / :class:`~repro.api.specs.
GridSpec`) and wire envelopes (:class:`~repro.api.envelopes.
JobRequest` / :class:`~repro.api.envelopes.JobEvent`).  Their
``from_dict`` loaders reject unknown fields and versions — but
nothing stopped a PR from *adding or retyping a field without
bumping the version*, silently aliasing old persisted memo entries
and old wire payloads onto new semantics.

This module closes that hole with a committed golden artifact:

* :func:`current_schema` introspects the live dataclasses into a
  plain JSON record — field names, field type strings, option
  defaults, and every version constant;
* the golden copy lives next to this module
  (``spec_schema.json``, regenerated via ``repro-tam lint
  --write-schema``) and is committed, so schema drift fails PRs;
* :class:`SchemaLockRule` (RPR004) diffs live against golden on
  every lint run.  A field change while the version constants are
  unchanged is *the* hard error; a stale golden after a legitimate
  version bump asks for regeneration.

:func:`check_drift` is pure (two records in, findings out) so the
drift logic is testable without touching the committed file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.analysis.lint.engine import (
    ProjectRule,
    Violation,
    register,
)

#: The committed golden artifact, next to this module so it ships
#: with the package and is found regardless of the lint root.
GOLDEN_FILENAME = "spec_schema.json"

#: Keys of :func:`current_schema` that hold version constants; a
#: change to any locked class requires moving at least one of them.
_VERSION_KEYS = (
    "spec_schema_version",
    "protocol_version",
    "supported_protocol_versions",
)


def golden_path() -> Path:
    """Where the committed golden schema lives."""
    return Path(__file__).resolve().parent / GOLDEN_FILENAME


def _locked_classes() -> List[type]:
    """The dataclasses whose shape the golden schema locks."""
    from repro.api.envelopes import JobEvent, JobRequest
    from repro.api.specs import GridSpec, OptimizeSpec

    return [OptimizeSpec, GridSpec, JobRequest, JobEvent]


def current_schema() -> Dict[str, Any]:
    """The live schema record, introspected from the dataclasses.

    Everything is plain JSON data (types as their annotation
    strings), so the record round-trips losslessly through the
    committed file and ``==`` is the whole comparison.
    """
    from repro.api import envelopes, specs

    classes: Dict[str, Any] = {}
    for cls in _locked_classes():
        classes[cls.__name__] = {
            "fields": {
                spec_field.name: str(spec_field.type)
                for spec_field in dataclasses.fields(cls)
            },
        }
    return {
        "generated_by": "repro-tam lint --write-schema",
        "spec_schema_version": specs.SPEC_SCHEMA_VERSION,
        "protocol_version": envelopes.PROTOCOL_VERSION,
        "supported_protocol_versions": list(
            envelopes.SUPPORTED_PROTOCOL_VERSIONS
        ),
        "option_defaults": {
            key: _default_repr(value)
            for key, value in specs.OPTION_DEFAULTS.items()
        },
        "classes": classes,
    }


def _default_repr(value: Any) -> Any:
    """JSON-stable form of an option default.

    ``repr`` for floats and strings keeps ``30.0`` and ``30``
    distinct through the JSON round trip; everything the defaults
    table holds today is already JSON-native, but the lock must not
    silently coarsen future values.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


def load_golden(path: Optional[Path] = None) -> Dict[str, Any]:
    """The committed golden record; raises ``FileNotFoundError``."""
    golden = golden_path() if path is None else path
    return json.loads(golden.read_text())


def write_golden(path: Optional[Path] = None) -> Path:
    """(Re)generate the golden file from the live schema."""
    golden = golden_path() if path is None else path
    golden.write_text(
        json.dumps(current_schema(), indent=2, sort_keys=True) + "\n"
    )
    return golden


def _diff_fields(
    name: str,
    current: Dict[str, str],
    golden: Dict[str, str],
) -> Iterator[str]:
    """Human-readable field-level differences for one class."""
    for field_name in sorted(set(golden) - set(current)):
        yield f"{name}.{field_name} was removed"
    for field_name in sorted(set(current) - set(golden)):
        yield f"{name}.{field_name} was added"
    for field_name in sorted(set(current) & set(golden)):
        if current[field_name] != golden[field_name]:
            yield (
                f"{name}.{field_name} changed type: "
                f"{golden[field_name]} -> {current[field_name]}"
            )


def check_drift(
    current: Dict[str, Any], golden: Dict[str, Any]
) -> List[str]:
    """Every difference between the live and golden records.

    Pure — the in-memory drift surface the tests mutate directly.
    An empty list means the lock holds.
    """
    problems: List[str] = []
    current_classes = current.get("classes", {})
    golden_classes = golden.get("classes", {})
    for name in sorted(set(golden_classes) - set(current_classes)):
        problems.append(f"locked class {name} disappeared")
    for name in sorted(set(current_classes) - set(golden_classes)):
        problems.append(f"class {name} is new to the lock")
    for name in sorted(set(current_classes) & set(golden_classes)):
        problems.extend(_diff_fields(
            name,
            current_classes[name].get("fields", {}),
            golden_classes[name].get("fields", {}),
        ))
    for key in ("option_defaults",):
        if current.get(key) != golden.get(key):
            problems.append(
                f"{key} changed: {golden.get(key)!r} -> "
                f"{current.get(key)!r}"
            )
    for key in _VERSION_KEYS:
        if current.get(key) != golden.get(key):
            problems.append(
                f"{key} changed: {golden.get(key)!r} -> "
                f"{current.get(key)!r}"
            )
    return problems


def _versions_bumped(
    current: Dict[str, Any], golden: Dict[str, Any]
) -> bool:
    """Whether any version constant moved between the two records."""
    return any(
        current.get(key) != golden.get(key) for key in _VERSION_KEYS
    )


@register
class SchemaLockRule(ProjectRule):
    """RPR004: spec/envelope shape changes require a version bump."""

    code = "RPR004"
    name = "spec-schema-lock"
    description = (
        "The committed golden schema (analysis/lint/spec_schema.json) "
        "must match the live OptimizeSpec / GridSpec / JobRequest / "
        "JobEvent dataclasses; any field or default change without a "
        "schema/protocol version bump is a hard error.  Regenerate "
        "after a legitimate bump with `repro-tam lint --write-schema`."
    )

    def check_project(self, root: Path) -> Iterator[Violation]:
        """Compare the live schema against the committed golden."""
        target = golden_path()
        relpath = _display_path(target, root)
        try:
            golden = load_golden()
        except FileNotFoundError:
            yield Violation(
                rule=self.code, path=relpath, line=1, col=0,
                message=(
                    "golden spec schema is missing; generate and "
                    "commit it with `repro-tam lint --write-schema`"
                ),
            )
            return
        except ValueError as error:
            yield Violation(
                rule=self.code, path=relpath, line=1, col=0,
                message=f"golden spec schema is unreadable: {error}",
            )
            return
        current = current_schema()
        problems = check_drift(current, golden)
        if not problems:
            return
        if _versions_bumped(current, golden):
            preamble = (
                "golden spec schema is stale after a version bump; "
                "regenerate with `repro-tam lint --write-schema` and "
                "commit it"
            )
        else:
            preamble = (
                "spec/envelope schema changed without a version "
                "bump — old persisted memos and wire payloads would "
                "alias onto new semantics; bump the schema/protocol "
                "version, then regenerate the golden file"
            )
        for problem in problems:
            yield Violation(
                rule=self.code, path=relpath, line=1, col=0,
                message=f"{preamble}: {problem}",
            )


def _display_path(target: Path, root: Path) -> str:
    """``target`` relative to the lint root when possible."""
    try:
        return target.relative_to(root.resolve()).as_posix()
    except ValueError:
        return target.as_posix()
