"""Design-space sweeps with structured results.

Thin, reusable drivers over :func:`repro.optimize.co_optimize` for the
two questions every SOC test architect asks first:

* how does testing time respond to the TAM budget W?
* at a fixed budget, how many TAMs should I build?

Each sweep point carries the optimality certificate and wire-cycle
utilization from the sibling modules, so the answers come with their
*why*.

Both sweeps execute through :class:`repro.engine.BatchRunner`: by
default inline (sequential, deterministic), or in parallel across a
process pool when a runner with workers is passed in.  Either way the
wrapper time tables are built once per core via
:class:`repro.engine.WrapperTableCache` and shared by the optimizer,
the certificate, and the utilization accounting — a width sweep over
``1..W`` performs exactly one ``design_wrapper`` call per
(core, width) pair instead of the O(W²) a rebuild-per-point strategy
would pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.certificates import (
    Certificate,
    certify,
    global_lower_bound,
)
from repro.analysis.utilization import (
    ArchitectureUtilization,
    analyze_utilization,
)
from repro.api.specs import OPTION_DEFAULTS, SEARCH_ONLY_OPTIONS
from repro.exceptions import ConfigurationError
from repro.obs import REGISTRY
from repro.obs import span as _obs_span
from repro.optimize.co_optimize import co_optimize
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.batch import BatchRunner
    from repro.engine.kernel import DenseTimeMatrix
    from repro.search.driver import SearchResult


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point.

    ``mode`` records which tier produced it: ``"exact"`` (the paper's
    sweep + polish pipeline) or ``"search"`` (the anytime
    metaheuristic tier), in which case ``seed`` is the result-defining
    RNG seed and ``search`` the full :class:`repro.search.
    SearchResult` — islands, trajectory, and the gap-vs-bound
    certificate the service streams as ``incumbent`` events.
    """

    total_width: int
    num_tams: int
    partition: Tuple[int, ...]
    testing_time: int
    certificate: Certificate
    utilization: ArchitectureUtilization
    mode: str = "exact"
    seed: Optional[int] = None
    search: "Optional[SearchResult]" = None

    @property
    def wire_efficiency(self) -> float:
        """Shorthand for the wire-cycle utilization fraction."""
        return self.utilization.utilization


def evaluate_point(
    soc: Soc,
    total_width: int,
    num_tams: Union[int, Iterable[int], None] = None,
    tables: Optional[Dict[str, TimeTable]] = None,
    dense: "Optional[DenseTimeMatrix]" = None,
    **co_optimize_options: Any,
) -> SweepPoint:
    """Optimize one (W, B) design point and annotate it.

    The certificate and utilization are computed from the *same*
    tables the optimizer used (``result.tables``), so the point costs
    zero extra ``design_wrapper`` calls beyond the optimization
    itself.  Pass ``tables`` (e.g. from a
    :class:`repro.engine.WrapperTableCache`) to also share them
    across points, and ``dense`` (e.g. attached from the batch
    engine's shared-memory transport) to hand the partition sweep a
    pre-built matrix.  Remaining keyword arguments go to
    :func:`~repro.optimize.co_optimize.co_optimize` verbatim
    (``polish``, ``exact_time_limit``, ...).

    This is the engine/service entry point, so the sweep defaults to
    ``prune="lb"`` — outcome-identical to the paper's abort-only
    pruning, just faster; pass ``prune=True`` (or ``False``) in the
    options to override.

    ``mode="search"`` dispatches to the anytime metaheuristic tier
    instead (:func:`repro.search.search_optimize`); the exact-tier
    knobs (``polish``, ``prune``, ...) are inert there, and the
    search-only knobs (``seed``, ``eval_budget``, ...) are rejected
    here under ``mode="exact"`` — mirroring the spec-layer
    validation for callers that bypass :class:`~repro.api.specs.
    OptimizeSpec`.
    """
    mode = co_optimize_options.pop("mode", "exact")
    if mode == "search":
        return _evaluate_search_point(
            soc, total_width, num_tams, tables, dense,
            co_optimize_options,
        )
    if mode != "exact":
        raise ConfigurationError(
            f'mode must be "exact" or "search", got {mode!r}'
        )
    for key in SEARCH_ONLY_OPTIONS:
        if key in co_optimize_options:
            value = co_optimize_options.pop(key)
            if value != OPTION_DEFAULTS[key]:
                raise ConfigurationError(
                    f'option {key}={value!r} only applies to '
                    f'mode="search"'
                )
    if co_optimize_options.get("sweep_engine", "kernel") == "kernel":
        co_optimize_options.setdefault("prune", "lb")
    with _obs_span(
        "evaluate_point", soc=soc.name, W=total_width
    ) as point_span:
        with _obs_span("co_optimize"):
            result = co_optimize(
                soc, total_width, num_tams=num_tams, tables=tables,
                dense=dense, **co_optimize_options,
            )
        tables = result.tables
        with _obs_span("certify"):
            certificate = certify(soc, result.final, tables)
        with _obs_span("utilization"):
            utilization = analyze_utilization(soc, result.final, tables)
        point_span.annotate(
            B=result.num_tams, T=result.testing_time
        )
    # Post-hoc sweep totals from the search stats — observation only,
    # recorded outside the scored pipeline (RPR001 discipline).
    REGISTRY.counter("sweep.points").inc()
    for stats in result.search.stats:
        REGISTRY.counter("sweep.partitions_enumerated").inc(
            stats.num_enumerated
        )
        REGISTRY.counter("sweep.partitions_completed").inc(
            stats.num_completed
        )
        REGISTRY.counter("sweep.partitions_lb_pruned").inc(
            stats.num_lb_pruned
        )
    return SweepPoint(
        total_width=total_width,
        num_tams=result.num_tams,
        partition=result.partition,
        testing_time=result.testing_time,
        certificate=certificate,
        utilization=utilization,
    )


#: Exact-tier knobs a ``mode="search"`` point silently ignores (they
#: configure the sweep/polish pipeline the search tier replaces);
#: ``sweep``/``polish_runner`` are the batch engine's injected pool
#: seams.
_SEARCH_IGNORED_OPTIONS = (
    "enumerator", "polish", "polish_top_k", "polish_per_tam_count",
    "exact_node_limit", "exact_time_limit", "prune", "sweep_engine",
    "sweep", "polish_runner",
)


def _evaluate_search_point(
    soc: Soc,
    total_width: int,
    num_tams: Union[int, Iterable[int], None],
    tables: Optional[Dict[str, TimeTable]],
    dense: "Optional[DenseTimeMatrix]",
    options: Dict[str, Any],
) -> SweepPoint:
    """One ``mode="search"`` design point through the anytime tier.

    The certificate folds the search tier's range bound (see
    :func:`repro.search.range_lower_bound`) into the standard
    :class:`~repro.analysis.certificates.Certificate` shape —
    ``architecture_bound`` carries the explored-range bound, so the
    reported gap is exactly the search certificate's gap.
    """
    # Imported lazily: repro.search builds on repro.engine, which
    # builds on this module.
    from repro.search import search_optimize

    strategy = options.pop("search_strategy", "sa")
    seed = options.pop("seed", 0)
    time_budget = options.pop("time_budget", 5.0)
    eval_budget = options.pop("eval_budget", 20000)
    target_gap = options.pop("target_gap", 0.0)
    islands_runner = options.pop("search_islands", None)
    for key in _SEARCH_IGNORED_OPTIONS:
        options.pop(key, None)
    if options:
        raise ConfigurationError(
            f"unknown option(s) for mode=\"search\": "
            f"{', '.join(sorted(options))}"
        )
    with _obs_span(
        "evaluate_point", soc=soc.name, W=total_width, mode="search"
    ) as point_span:
        if tables is None:
            from repro.wrapper.pareto import build_time_tables
            tables = build_time_tables(soc, total_width)
        floor = global_lower_bound(soc, tables, total_width)
        with _obs_span(
            "search_optimize", strategy=strategy, seed=seed
        ):
            result = search_optimize(
                tables,
                total_width,
                num_tams=num_tams,
                strategy=strategy,
                seed=seed,
                time_budget=time_budget,
                eval_budget=eval_budget,
                target_gap=target_gap,
                matrix=dense,
                floor_bound=floor,
                islands_runner=islands_runner,
                core_order=[core.name for core in soc.cores],
            )
        with _obs_span("certify"):
            certificate = Certificate(
                testing_time=result.testing_time,
                architecture_bound=result.certificate.bound,
                global_bound=floor,
            )
        with _obs_span("utilization"):
            utilization = analyze_utilization(soc, result.best, tables)
        point_span.annotate(B=result.num_tams, T=result.testing_time)
    # Post-hoc totals, recorded outside the scored pipeline (RPR001
    # discipline) — the search-health numbers ``info()`` and the
    # warehouse surface.
    REGISTRY.counter("sweep.points").inc()
    REGISTRY.counter("search.points").inc()
    REGISTRY.counter("search.evals").inc(result.certificate.evals)
    REGISTRY.counter("search.improvements").inc(
        result.certificate.improvements
    )
    REGISTRY.gauge("search.gap").set(result.certificate.gap)
    return SweepPoint(
        total_width=total_width,
        num_tams=result.num_tams,
        partition=result.partition,
        testing_time=result.testing_time,
        certificate=certificate,
        utilization=utilization,
        mode="search",
        seed=seed,
        search=result,
    )


def _run(
    soc: Soc,
    points: Sequence[Tuple[int, Union[int, Iterable[int], None]]],
    runner: "Optional[BatchRunner]",
) -> List[SweepPoint]:
    """Run (W, B) points through a batch runner (inline by default)."""
    # Imported here: repro.engine.batch builds on this module.
    from repro.engine.batch import BatchJob, BatchRunner

    if runner is None:
        runner = BatchRunner(max_workers=1)
    return runner.run([
        BatchJob(soc=soc, total_width=width, num_tams=num_tams)
        for width, num_tams in points
    ])


def pareto_widths(
    soc: Soc,
    max_width: int,
    tables: Optional[Dict[str, TimeTable]] = None,
) -> List[int]:
    """Union of every core's Pareto breakpoint widths up to ``max_width``.

    The widths at which at least one core's T*(w) staircase actually
    drops — the only budgets where a width sweep can observe a
    per-core time change.  Pass ``tables`` (covering ``max_width``)
    to reuse already-built staircases; otherwise they are built here.
    """
    if tables is None:
        from repro.wrapper.pareto import build_time_tables
        tables = build_time_tables(soc, max_width)
    union = {
        width
        for core in soc.cores
        for width, _ in tables[core.name].pareto_points()
        if width <= max_width
    }
    return sorted(union)


def sweep_widths(
    soc: Soc,
    widths: Sequence[int],
    num_tams: Union[int, Iterable[int], None] = None,
    runner: "Optional[BatchRunner]" = None,
    pareto_only: bool = False,
) -> List[SweepPoint]:
    """Testing time (and why) across TAM budgets.

    ``runner`` selects the execution engine: ``None`` runs inline
    (sequential) with table reuse across widths; a
    :class:`repro.engine.BatchRunner` with workers fans the widths
    out over a process pool.

    ``pareto_only=True`` replaces ``widths`` by the union of each
    core's :meth:`~repro.wrapper.pareto.TimeTable.pareto_points`
    breakpoints within ``[min(widths), max(widths)]``, always keeping
    the top budget itself.  Per-core times only change at breakpoint
    widths, so this is where the testing-time curve moves fastest;
    skipped budgets can still differ slightly at the SOC level (a
    wider budget fits *combinations* of breakpoints no smaller budget
    holds), which is the trade: a much smaller grid for a curve
    sampled where it bends.  Each swept point's result is identical
    to the dense sweep's at that width.
    """
    num_tams = _freeze_counts(num_tams)
    widths = list(widths)
    if pareto_only and widths:
        # Imported here: repro.engine.batch builds on this module.
        from repro.engine.batch import BatchRunner

        if runner is None:
            runner = BatchRunner(max_workers=1)
        lo, hi = min(widths), max(widths)
        # The runner's own cache builds (or reuses) the staircases the
        # breakpoints come from; the jobs below then share them.
        tables = runner.cache_for(soc).tables(hi)
        union = pareto_widths(soc, hi, tables=tables)
        widths = sorted(
            {width for width in union if lo <= width <= hi} | {hi}
        )
    return _run(soc, [(width, num_tams) for width in widths], runner)


def sweep_tam_counts(
    soc: Soc,
    total_width: int,
    tam_counts: Sequence[int],
    runner: "Optional[BatchRunner]" = None,
) -> List[SweepPoint]:
    """Testing time (and why) across TAM counts at a fixed budget.

    Every requested count must be feasible: a count larger than
    ``total_width`` cannot give each bus a wire, and raises
    :class:`~repro.exceptions.ConfigurationError` (matching the
    partition enumerator) instead of silently dropping the point.
    """
    for count in tam_counts:
        if count > total_width:
            raise ConfigurationError(
                f"cannot split width {total_width} into {count} "
                f"buses of width >= 1"
            )
    return _run(soc, [(total_width, count) for count in tam_counts], runner)


def _freeze_counts(
    num_tams: Union[int, Iterable[int], None]
) -> Union[int, Tuple[int, ...], None]:
    """Make a (possibly one-shot) counts iterable reusable per point."""
    if num_tams is None or isinstance(num_tams, int):
        return num_tams
    return tuple(num_tams)
