"""Design-space sweeps with structured results.

Thin, reusable drivers over :func:`repro.optimize.co_optimize` for the
two questions every SOC test architect asks first:

* how does testing time respond to the TAM budget W?
* at a fixed budget, how many TAMs should I build?

Each sweep point carries the optimality certificate and wire-cycle
utilization from the sibling modules, so the answers come with their
*why*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from repro.analysis.certificates import Certificate, certify
from repro.analysis.utilization import (
    ArchitectureUtilization,
    analyze_utilization,
)
from repro.optimize.co_optimize import co_optimize
from repro.soc.soc import Soc
from repro.wrapper.pareto import build_time_tables


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    total_width: int
    num_tams: int
    partition: Tuple[int, ...]
    testing_time: int
    certificate: Certificate
    utilization: ArchitectureUtilization

    @property
    def wire_efficiency(self) -> float:
        """Shorthand for the wire-cycle utilization fraction."""
        return self.utilization.utilization


def _evaluate(
    soc: Soc,
    total_width: int,
    num_tams: Union[int, Iterable[int], None],
) -> SweepPoint:
    result = co_optimize(soc, total_width, num_tams=num_tams)
    tables = build_time_tables(soc, total_width)
    return SweepPoint(
        total_width=total_width,
        num_tams=result.num_tams,
        partition=result.partition,
        testing_time=result.testing_time,
        certificate=certify(soc, result.final, tables),
        utilization=analyze_utilization(soc, result.final, tables),
    )


def sweep_widths(
    soc: Soc,
    widths: Sequence[int],
    num_tams: Union[int, Iterable[int], None] = None,
) -> List[SweepPoint]:
    """Testing time (and why) across TAM budgets."""
    return [_evaluate(soc, width, num_tams) for width in widths]


def sweep_tam_counts(
    soc: Soc,
    total_width: int,
    tam_counts: Sequence[int],
) -> List[SweepPoint]:
    """Testing time (and why) across TAM counts at a fixed budget."""
    return [
        _evaluate(soc, total_width, count)
        for count in tam_counts
        if count <= total_width
    ]
