"""JSON serialization of optimization results.

Round-trippable, schema-stable dictionaries for the result records,
so CI pipelines can archive runs and diff regressions without parsing
ASCII tables.  ``schema`` is versioned; loaders reject unknown
versions rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.sweep import SweepPoint
from repro.exceptions import ValidationError
from repro.optimize.result import CoOptimizationResult, ExhaustiveResult
from repro.soc.core import Core
from repro.soc.fingerprint import core_fingerprint
from repro.tam.assignment import AssignmentResult
from repro.wrapper.chain import WrapperChain, WrapperDesign
from repro.wrapper.pareto import TimeTable

SCHEMA_VERSION = 1


def assignment_to_dict(result: AssignmentResult) -> Dict[str, Any]:
    """Plain-data form of an :class:`AssignmentResult`."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "assignment",
        "widths": list(result.widths),
        "assignment": list(result.assignment),
        "bus_times": list(result.bus_times),
        "testing_time": result.testing_time,
        "optimal": result.optimal,
    }


def assignment_from_dict(data: Dict[str, Any]) -> AssignmentResult:
    """Rebuild an :class:`AssignmentResult`; validates on construction."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if data.get("kind") != "assignment":
        raise ValidationError(
            f"expected kind 'assignment', got {data.get('kind')!r}"
        )
    try:
        return AssignmentResult(
            widths=tuple(data["widths"]),
            assignment=tuple(data["assignment"]),
            bus_times=tuple(data["bus_times"]),
            testing_time=int(data["testing_time"]),
            optimal=bool(data.get("optimal", False)),
        )
    except KeyError as missing:
        raise ValidationError(
            f"assignment record missing field {missing}"
        ) from None


def co_optimization_to_dict(
    result: CoOptimizationResult,
) -> Dict[str, Any]:
    """Plain-data form of a full co-optimization run."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "co_optimization",
        "soc": result.soc_name,
        "total_width": result.total_width,
        "final": assignment_to_dict(result.final),
        "final_optimal": result.final_optimal,
        "heuristic_testing_time": result.search.testing_time,
        "heuristic_partition": list(result.search.best_partition),
        "elapsed_seconds": result.elapsed_seconds,
        "pruning": [
            {
                "num_tams": stats.num_tams,
                "unique": stats.num_unique,
                "enumerated": stats.num_enumerated,
                "completed": stats.num_completed,
                "lb_pruned": stats.num_lb_pruned,
            }
            for stats in result.search.stats
        ],
    }


def sweep_point_to_dict(point: SweepPoint) -> Dict[str, Any]:
    """Plain-data form of one design-space sweep point.

    Exact-tier points serialize exactly as they always have; a
    ``mode="search"`` point additively carries its provenance
    (``mode``/``seed``) and a ``search`` summary — strategy, the
    anytime certificate, and the merged improvement trajectory — so
    archived runs record how the incumbent was found, not just what
    it is.
    """
    record = {
        "schema": SCHEMA_VERSION,
        "kind": "sweep_point",
        "total_width": point.total_width,
        "num_tams": point.num_tams,
        "partition": list(point.partition),
        "testing_time": point.testing_time,
        "bound": point.certificate.bound,
        "gap": point.certificate.gap,
        "provably_optimal": point.certificate.is_provably_optimal,
        "utilization": point.utilization.utilization,
        "idle_wire_cycles": point.utilization.idle_wire_cycles,
    }
    if point.mode != "exact":
        record["mode"] = point.mode
        record["seed"] = point.seed
        search = point.search
        if search is not None:
            record["search"] = {
                "strategy": search.strategy,
                "evals": search.certificate.evals,
                "improvements": search.certificate.improvements,
                "terminated_by": search.certificate.terminated_by,
                "islands": len(search.islands),
                "trajectory": [
                    list(step) for step in search.trajectory
                ],
            }
    return record


def exhaustive_to_dict(result: ExhaustiveResult) -> Dict[str, Any]:
    """Plain-data form of an exhaustive-baseline run."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "exhaustive",
        "soc": result.soc_name,
        "total_width": result.total_width,
        "best": assignment_to_dict(result.best),
        "partitions_evaluated": result.partitions_evaluated,
        "partitions_total": result.partitions_total,
        "all_exact": result.all_exact,
        "complete": result.complete,
        "elapsed_seconds": result.elapsed_seconds,
    }


def failed_point_to_dict(failure: "Any") -> Dict[str, Any]:
    """Plain-data form of a :class:`repro.engine.batch.FailedPoint`.

    Typed loosely to keep this module import-light (the engine builds
    on the analysis layer, not the reverse); any object with the
    ``FailedPoint`` fields serializes.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "failed_point",
        "soc": failure.job.soc.name,
        "total_width": failure.job.total_width,
        "error_type": failure.error_type,
        "error_message": failure.error_message,
        "attempts": failure.attempts,
    }


def grid_memo_to_dict(
    key: str, payload: Dict[str, Any], num_jobs: int
) -> Dict[str, Any]:
    """Plain-data form of one persisted grid-memo entry.

    ``payload`` is a finished grid's serialized result — ``points``
    (sweep-point records, each tagged with its ``soc``) and
    ``failures`` — keyed by the grid's canonical content hash
    (:meth:`repro.api.GridSpec.canonical_key`), which is what lets a
    restarted server answer an identical submission without
    re-running anything.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "grid_memo",
        "key": key,
        "num_jobs": num_jobs,
        "points": list(payload.get("points", [])),
        "failures": list(payload.get("failures", [])),
    }


def grid_memo_from_dict(
    data: Dict[str, Any], key: str
) -> Dict[str, Any]:
    """Validate a stored grid-memo entry and return its payload.

    Checks the schema version, record kind, and that the record's
    ``key`` matches the canonical key the caller derived from the
    submission — a moved or hand-edited file can never answer the
    wrong grid.  Raises :class:`~repro.exceptions.ValidationError`
    on any mismatch (the store treats that as a miss).
    """
    if not isinstance(data, dict):
        raise ValidationError("grid memo record must be an object")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if data.get("kind") != "grid_memo":
        raise ValidationError(
            f"expected kind 'grid_memo', got {data.get('kind')!r}"
        )
    if data.get("key") != key:
        raise ValidationError(
            f"grid memo record key {data.get('key')!r} does not "
            f"match submission key {key!r}"
        )
    points = data.get("points")
    failures = data.get("failures")
    if not isinstance(points, list) or not isinstance(failures, list):
        raise ValidationError(
            "grid memo record needs 'points' and 'failures' lists"
        )
    return {"points": points, "failures": failures}


def wrapper_design_to_dict(design: WrapperDesign) -> Dict[str, Any]:
    """Plain-data form of one wrapper design (chains and counts).

    The owning core is *not* serialized — reconstruction
    (:func:`wrapper_design_from_dict`) takes it as an argument, which
    is what lets the table store key entries by core content hash and
    share them across identically-structured cores.
    """
    return {
        "width_available": design.width_available,
        "chains": [
            {
                "scan": list(chain.scan_chain_lengths),
                "in": chain.num_input_cells,
                "out": chain.num_output_cells,
            }
            for chain in design.chains
        ],
    }


def wrapper_design_from_dict(
    data: Dict[str, Any], core: Core
) -> WrapperDesign:
    """Rebuild a :class:`WrapperDesign` for ``core``.

    ``WrapperDesign.__post_init__`` re-validates conservation (every
    scan chain and I/O cell of ``core`` placed exactly once), so a
    record that does not actually belong to ``core`` raises
    :class:`~repro.exceptions.ValidationError` instead of silently
    producing a bogus design.
    """
    try:
        return WrapperDesign(
            core=core,
            width_available=int(data["width_available"]),
            chains=tuple(
                WrapperChain(
                    scan_chain_lengths=tuple(chain["scan"]),
                    num_input_cells=int(chain["in"]),
                    num_output_cells=int(chain["out"]),
                )
                for chain in data["chains"]
            ),
        )
    except KeyError as missing:
        raise ValidationError(
            f"wrapper design record missing field {missing}"
        ) from None


def time_table_to_dict(table: TimeTable) -> Dict[str, Any]:
    """Plain-data, Pareto-compressed form of a core's time table.

    Stores only the staircase breakpoints (width, time, design) plus
    ``max_width`` — see :meth:`repro.wrapper.pareto.TimeTable.
    staircase` for why this is lossless — keyed by the core's content
    fingerprint so loaders can refuse records built for a different
    core structure.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "time_table",
        "fingerprint": core_fingerprint(table.core),
        "max_width": table.max_width,
        "steps": [
            {
                "width": width,
                "time": time,
                "design": wrapper_design_to_dict(design),
            }
            for width, time, design in table.staircase()
        ],
    }


def time_table_from_dict(data: Dict[str, Any], core: Core) -> TimeTable:
    """Rebuild a :class:`TimeTable` for ``core`` from a stored record.

    Validates the schema version, record kind, and — crucially — that
    the record's fingerprint matches ``core``'s current content hash;
    a mismatch (the core's scan/IO structure changed since the record
    was written) raises :class:`~repro.exceptions.ValidationError`,
    which the table store treats as a cache miss.
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if data.get("kind") != "time_table":
        raise ValidationError(
            f"expected kind 'time_table', got {data.get('kind')!r}"
        )
    if data.get("fingerprint") != core_fingerprint(core):
        raise ValidationError(
            f"time table record fingerprint {data.get('fingerprint')!r} "
            f"does not match core {core.name!r}"
        )
    try:
        steps = [
            (
                int(step["width"]),
                int(step["time"]),
                wrapper_design_from_dict(step["design"], core),
            )
            for step in data["steps"]
        ]
        max_width = int(data["max_width"])
    except KeyError as missing:
        raise ValidationError(
            f"time table record missing field {missing}"
        ) from None
    try:
        return TimeTable.from_staircase(core, max_width, steps)
    except Exception as error:
        raise ValidationError(
            f"time table record for {core.name!r} is not a valid "
            f"staircase: {error}"
        ) from error


def to_json(record: Dict[str, Any], indent: int = 2) -> str:
    """Serialize a record dictionary to a JSON string."""
    return json.dumps(record, indent=indent, sort_keys=True)


def from_json(text: str) -> Dict[str, Any]:
    """Parse a JSON record, checking the schema version."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValidationError("expected a JSON object at top level")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return data
