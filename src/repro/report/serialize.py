"""JSON serialization of optimization results.

Round-trippable, schema-stable dictionaries for the result records,
so CI pipelines can archive runs and diff regressions without parsing
ASCII tables.  ``schema`` is versioned; loaders reject unknown
versions rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.sweep import SweepPoint
from repro.exceptions import ValidationError
from repro.optimize.result import CoOptimizationResult, ExhaustiveResult
from repro.tam.assignment import AssignmentResult

SCHEMA_VERSION = 1


def assignment_to_dict(result: AssignmentResult) -> Dict[str, Any]:
    """Plain-data form of an :class:`AssignmentResult`."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "assignment",
        "widths": list(result.widths),
        "assignment": list(result.assignment),
        "bus_times": list(result.bus_times),
        "testing_time": result.testing_time,
        "optimal": result.optimal,
    }


def assignment_from_dict(data: Dict[str, Any]) -> AssignmentResult:
    """Rebuild an :class:`AssignmentResult`; validates on construction."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if data.get("kind") != "assignment":
        raise ValidationError(
            f"expected kind 'assignment', got {data.get('kind')!r}"
        )
    try:
        return AssignmentResult(
            widths=tuple(data["widths"]),
            assignment=tuple(data["assignment"]),
            bus_times=tuple(data["bus_times"]),
            testing_time=int(data["testing_time"]),
            optimal=bool(data.get("optimal", False)),
        )
    except KeyError as missing:
        raise ValidationError(
            f"assignment record missing field {missing}"
        ) from None


def co_optimization_to_dict(
    result: CoOptimizationResult,
) -> Dict[str, Any]:
    """Plain-data form of a full co-optimization run."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "co_optimization",
        "soc": result.soc_name,
        "total_width": result.total_width,
        "final": assignment_to_dict(result.final),
        "final_optimal": result.final_optimal,
        "heuristic_testing_time": result.search.testing_time,
        "heuristic_partition": list(result.search.best_partition),
        "elapsed_seconds": result.elapsed_seconds,
        "pruning": [
            {
                "num_tams": stats.num_tams,
                "unique": stats.num_unique,
                "enumerated": stats.num_enumerated,
                "completed": stats.num_completed,
            }
            for stats in result.search.stats
        ],
    }


def sweep_point_to_dict(point: SweepPoint) -> Dict[str, Any]:
    """Plain-data form of one design-space sweep point."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "sweep_point",
        "total_width": point.total_width,
        "num_tams": point.num_tams,
        "partition": list(point.partition),
        "testing_time": point.testing_time,
        "bound": point.certificate.bound,
        "gap": point.certificate.gap,
        "provably_optimal": point.certificate.is_provably_optimal,
        "utilization": point.utilization.utilization,
        "idle_wire_cycles": point.utilization.idle_wire_cycles,
    }


def exhaustive_to_dict(result: ExhaustiveResult) -> Dict[str, Any]:
    """Plain-data form of an exhaustive-baseline run."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "exhaustive",
        "soc": result.soc_name,
        "total_width": result.total_width,
        "best": assignment_to_dict(result.best),
        "partitions_evaluated": result.partitions_evaluated,
        "partitions_total": result.partitions_total,
        "all_exact": result.all_exact,
        "complete": result.complete,
        "elapsed_seconds": result.elapsed_seconds,
    }


def to_json(record: Dict[str, Any], indent: int = 2) -> str:
    """Serialize a record dictionary to a JSON string."""
    return json.dumps(record, indent=indent, sort_keys=True)


def from_json(text: str) -> Dict[str, Any]:
    """Parse a JSON record, checking the schema version."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValidationError("expected a JSON object at top level")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return data
