"""Reporting: ASCII tables and the paper's experiment drivers.

* :mod:`~repro.report.tables` — lightweight column-aligned text tables
  used by the benchmark harness and examples;
* :mod:`~repro.report.experiments` — one driver per paper table,
  returning structured rows so benchmarks, tests and EXPERIMENTS.md
  all consume the same data.
"""

from repro.report.tables import TextTable

__all__ = ["TextTable"]
