"""Column-aligned ASCII tables for experiment reports.

Deliberately tiny: enough to print the paper's tables faithfully from
benchmark harnesses without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


class TextTable:
    """A simple left/right-aligned text table.

    >>> table = TextTable(["W", "partition", "T (cycles)"])
    >>> table.add_row([16, "8+8", 45055])
    >>> print(table.render())
    W  | partition | T (cycles)
    ---+-----------+-----------
    16 | 8+8       | 45055
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; cells are stringified (floats to 2 dp)."""
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.2f}")
            else:
                rendered.append(str(cell))
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row has {len(rendered)} cells, "
                f"table has {len(self.headers)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """Render the table as a string."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            return " | ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(format_row(self.headers))
        lines.append("-+-".join("-" * width for width in widths))
        lines.extend(format_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
