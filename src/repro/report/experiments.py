"""Experiment drivers — one per table family of the paper.

Benchmarks, tests and EXPERIMENTS.md all consume these drivers, so the
numbers in every artifact come from a single code path:

* :func:`run_range_table` — Tables 4 / 8 / 14 (SOC data ranges);
* :func:`run_table1` — Table 1 (partition-pruning efficiency);
* :func:`run_paw_comparison` — Tables 2, 5/6, 9/10, 11/12, 15/16,
  17/18 (fixed-B comparison: exhaustive [8] vs the new method);
* :func:`run_npaw` — Tables 3, 7, 13, 19 (P_NPAW across TAM counts);
* :func:`run_fig2_example` — the Fig. 2 worked example.

Each driver returns a list of per-row dicts plus renders via
:func:`rows_to_table`.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.assign.core_assign import core_assign
from repro.engine.cache import WrapperTableCache
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.optimize.result import percent_delta
from repro.partition.count import count_partitions
from repro.partition.evaluate import partition_evaluate
from repro.report.tables import TextTable
from repro.soc.soc import Soc

#: The TAM widths every results table in the paper sweeps.
PAPER_WIDTHS: Tuple[int, ...] = (16, 24, 32, 40, 48, 56, 64)


def rows_to_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render selected ``columns`` of ``rows`` as an ASCII table."""
    table = TextTable(list(columns), title=title)
    for row in rows:
        table.add_row([row.get(column, "") for column in columns])
    return table.render()


# ----------------------------------------------------------------------
# Tables 4 / 8 / 14 — SOC data ranges
# ----------------------------------------------------------------------
def run_range_table(soc: Soc) -> List[Dict[str, object]]:
    """Rows of the per-class data-range summary for ``soc``."""
    rows: List[Dict[str, object]] = []
    for label, summary in (
        ("Logic cores", soc.logic_range_summary()),
        ("Memory cores", soc.memory_range_summary()),
    ):
        if summary is None:
            continue
        cells = summary.as_row()
        rows.append({
            "circuit": label,
            "cores": cells["cores"],
            "patterns": cells["patterns"],
            "ios": cells["ios"],
            "chains": cells["chains"],
            "lengths": cells["lengths"],
        })
    return rows


# ----------------------------------------------------------------------
# Table 1 — partition-pruning efficiency
# ----------------------------------------------------------------------
def run_table1(
    soc: Soc,
    widths: Sequence[int] = (44, 48, 52, 56, 60, 64),
    tam_counts: Sequence[int] = (4, 5),
    prune: "bool | str" = True,
) -> List[Dict[str, object]]:
    """Pruning-efficiency rows: P(W,B), N_eval and E per (W, B).

    Matches the paper's protocol: each (W, B) cell is an independent
    ``Partition_evaluate`` run over that single B, with the paper's
    abort-only pruning by default.  Pass ``prune="lb"`` to also
    engage the dense kernel's lower-bound skip — N_eval and E are
    unchanged (the bound is admissible), and the per-count
    ``LBpruned`` columns then show how many partitions never even
    started ``Core_assign``.
    """
    cache = WrapperTableCache(soc)
    table_list = cache.table_list(max(widths))

    rows = []
    for width in widths:
        row: Dict[str, object] = {"W": width}
        for count in tam_counts:
            result = partition_evaluate(
                table_list, width, count, prune=prune
            )
            stats = result.stats_for(count)
            row[f"P(W,{count})"] = count_partitions(width, count)
            row[f"Neval(B={count})"] = stats.num_completed
            row[f"E(B={count})"] = round(stats.efficiency, 4)
            row[f"LBpruned(B={count})"] = stats.num_lb_pruned
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fixed-B comparison tables (2, 5/6, 9/10, 11/12, 15/16, 17/18)
# ----------------------------------------------------------------------
def run_paw_comparison(
    soc: Soc,
    num_tams: int,
    widths: Sequence[int] = PAPER_WIDTHS,
    exhaustive_time_per_partition: float = 5.0,
    exhaustive_total_time: float = 300.0,
) -> List[Dict[str, object]]:
    """Exhaustive-[8] vs new-method rows for a fixed TAM count.

    Per width: the exhaustive baseline (exact assignment per
    partition, budgeted) and the heuristic+polish pipeline, with the
    paper's ΔT% and CPU-ratio columns.  Both methods read the same
    cached wrapper tables, built once at the largest width, so table
    construction is paid once per core per width across the whole
    table — and excluded from both timing columns alike.
    """
    cache = WrapperTableCache(soc)
    cache.ensure(max(widths))
    rows = []
    for width in widths:
        tables = cache.tables(width)
        exhaustive = exhaustive_optimize(
            soc,
            width,
            num_tams,
            time_limit_per_partition=exhaustive_time_per_partition,
            total_time_limit=exhaustive_total_time,
            tables=tables,
        )
        start = _time.monotonic()
        cooptimized = co_optimize(soc, width, num_tams=num_tams,
                                  tables=tables)
        new_elapsed = _time.monotonic() - start
        rows.append({
            "W": width,
            "old_partition": "+".join(map(str, exhaustive.partition)),
            "T_old": exhaustive.testing_time,
            "t_old_s": round(exhaustive.elapsed_seconds, 3),
            "old_complete": exhaustive.complete and exhaustive.all_exact,
            "new_partition": "+".join(map(str, cooptimized.partition)),
            "T_new": cooptimized.testing_time,
            "t_new_s": round(new_elapsed, 3),
            "assignment": cooptimized.final.vector_notation(),
            "delta_pct": round(
                percent_delta(
                    cooptimized.testing_time, exhaustive.testing_time
                ),
                2,
            ),
            "cpu_ratio": round(
                new_elapsed / max(exhaustive.elapsed_seconds, 1e-9), 4
            ),
        })
    return rows


# ----------------------------------------------------------------------
# P_NPAW tables (3, 7, 13, 19)
# ----------------------------------------------------------------------
def run_npaw(
    soc: Soc,
    widths: Sequence[int] = PAPER_WIDTHS,
    max_tams: int = 10,
) -> List[Dict[str, object]]:
    """New-method rows across TAM counts 1..max_tams per width.

    Wrapper tables are built once at the largest width and shared
    across the per-width runs via a
    :class:`~repro.engine.cache.WrapperTableCache`.
    """
    cache = WrapperTableCache(soc)
    cache.ensure(max(widths))
    rows = []
    for width in widths:
        start = _time.monotonic()
        result = co_optimize(
            soc, width, num_tams=range(1, min(max_tams, width) + 1),
            tables=cache.tables(width),
        )
        elapsed = _time.monotonic() - start
        rows.append({
            "W": width,
            "B": result.num_tams,
            "partition": "+".join(map(str, result.partition)),
            "T_new": result.testing_time,
            "T_heuristic": result.search.testing_time,
            "t_new_s": round(elapsed, 3),
            "assignment": result.final.vector_notation(),
        })
    return rows


# ----------------------------------------------------------------------
# Fig. 2 — the Core_assign worked example
# ----------------------------------------------------------------------
FIG2_TIMES: Tuple[Tuple[int, ...], ...] = (
    (50, 100, 200),
    (75, 95, 200),
    (90, 100, 150),
    (60, 75, 80),
    (120, 120, 125),
)
FIG2_WIDTHS: Tuple[int, ...] = (32, 16, 8)


def run_fig2_example() -> Dict[str, object]:
    """Reproduce Figure 2: the 5-core / 3-TAM walkthrough."""
    outcome = core_assign(
        [list(row) for row in FIG2_TIMES], list(FIG2_WIDTHS)
    )
    assert outcome.result is not None
    return {
        "assignment": outcome.result.vector_notation(),
        "bus_times": outcome.result.bus_times,
        "testing_time": outcome.testing_time,
    }
