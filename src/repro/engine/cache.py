"""A per-SOC cache of wrapper :class:`~repro.wrapper.pareto.TimeTable` s.

``Design_wrapper`` is the pipeline's only expensive primitive; a
:class:`~repro.wrapper.pareto.TimeTable` built at width ``W`` answers
every width ``<= W`` by O(1) lookup.  :class:`WrapperTableCache`
therefore keeps exactly one table per core, built lazily at the
largest width any consumer has requested and *extended in place*
(:meth:`~repro.wrapper.pareto.TimeTable.extend_to`) when a larger
width arrives.  Every consumer receives the same table objects, so a
width sweep over ``1..W`` costs one ``design_wrapper`` call per
(core, width) pair — O(W) designs per core instead of the O(W²) a
rebuild-per-width strategy pays.

The cache is deliberately not thread-safe: within a process it is
meant to be owned by one pipeline (or one pool worker — see
:mod:`repro.engine.batch`); cross-process sharing happens by giving
each worker its own cache.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import ConfigurationError
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable


class WrapperTableCache:
    """Build-once, extend-in-place time tables for one SOC.

    Parameters
    ----------
    soc:
        The SOC whose cores to tabulate.  Tables are built lazily on
        the first :meth:`tables` / :meth:`table_list` call.
    """

    def __init__(self, soc: Soc):
        self.soc = soc
        self._tables: Dict[str, TimeTable] = {}

    @property
    def max_width(self) -> int:
        """Largest width the cached tables currently cover (0 = empty)."""
        if not self._tables:
            return 0
        return next(iter(self._tables.values())).max_width

    def ensure(self, max_width: int) -> None:
        """Make every core's table cover widths up to ``max_width``."""
        if max_width < 1:
            raise ConfigurationError(
                f"max_width must be >= 1, got {max_width}"
            )
        if not self._tables:
            self._tables = {
                core.name: TimeTable(core, max_width)
                for core in self.soc.cores
            }
            return
        if max_width > self.max_width:
            for table in self._tables.values():
                table.extend_to(max_width)

    def tables(self, max_width: int) -> Dict[str, TimeTable]:
        """Core-name → table dict covering widths up to ``max_width``.

        The returned dict is the cache's own mapping and the tables in
        it are shared: a later call with a larger width extends these
        same objects rather than replacing them.  Drop-in compatible
        with :func:`repro.wrapper.pareto.build_time_tables` output
        (tables may cover *more* than the requested width, never
        less).
        """
        self.ensure(max_width)
        return self._tables

    def table_list(self, max_width: int) -> List[TimeTable]:
        """Tables in SOC core order, covering up to ``max_width``."""
        tables = self.tables(max_width)
        return [tables[core.name] for core in self.soc.cores]

    def table(self, core_name: str, max_width: int) -> TimeTable:
        """The named core's table, covering up to ``max_width``."""
        return self.tables(max_width)[core_name]

    def design_calls(self) -> int:
        """Total ``design_wrapper`` invocations this cache has paid for."""
        return sum(table.max_width for table in self._tables.values())
