"""A per-SOC cache of wrapper :class:`~repro.wrapper.pareto.TimeTable` s.

``Design_wrapper`` is the pipeline's only expensive primitive; a
:class:`~repro.wrapper.pareto.TimeTable` built at width ``W`` answers
every width ``<= W`` by O(1) lookup.  :class:`WrapperTableCache`
therefore keeps exactly one table per core, built lazily at the
largest width any consumer has requested and *extended in place*
(:meth:`~repro.wrapper.pareto.TimeTable.extend_to`) when a larger
width arrives.  Every consumer receives the same table objects, so a
width sweep over ``1..W`` costs one ``design_wrapper`` call per
(core, width) pair — O(W) designs per core instead of the O(W²) a
rebuild-per-width strategy pays.

With a persistent backing (``store=``, a :class:`repro.service.store.
TableStore`), the first build of each table is attempted from disk —
a stored staircase wide enough costs *zero* designs, a narrower one
pays only the extension — and every build or extension is written
back, so the savings compound across processes and runs, not just
within one.

The cache is deliberately not thread-safe: within a process it is
meant to be owned by one pipeline (or one pool worker — see
:mod:`repro.engine.batch`); cross-process sharing happens by giving
each worker its own cache (optionally over one shared store, whose
writes are atomic and never narrowing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.obs import REGISTRY, span
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.store import TableStore


class WrapperTableCache:
    """Build-once, extend-in-place time tables for one SOC.

    Parameters
    ----------
    soc:
        The SOC whose cores to tabulate.  Tables are built lazily on
        the first :meth:`tables` / :meth:`table_list` call.
    store:
        Optional persistent :class:`repro.service.store.TableStore`.
        When given, table builds try the store first and every
        build/extension is persisted back.
    """

    def __init__(self, soc: Soc, store: "Optional[TableStore]" = None) -> None:
        self.soc = soc
        self.store = store
        self._tables: Dict[str, TimeTable] = {}
        #: Widths that came off disk for free, per core name — what
        #: :meth:`design_calls` subtracts from table coverage.
        self._prepaid: Dict[str, int] = {}
        #: Width last persisted per core name, to skip no-op saves.
        self._saved: Dict[str, int] = {}

    @property
    def max_width(self) -> int:
        """Width every cached table is guaranteed to cover (0 = empty).

        The *minimum* over the per-core tables: store-backed loads can
        leave individual tables wider than ever requested (a previous
        run persisted more), and the guarantee consumers rely on is
        the width all of them answer.
        """
        if not self._tables:
            return 0
        return min(table.max_width for table in self._tables.values())

    def ensure(self, max_width: int) -> None:
        """Make every core's table cover widths up to ``max_width``."""
        if max_width < 1:
            raise ConfigurationError(
                f"max_width must be >= 1, got {max_width}"
            )
        if not self._tables:
            with span(
                "build_wrapper_tables", soc=self.soc.name, W=max_width
            ):
                for core in self.soc.cores:
                    table = (
                        self.store.load(core) if self.store else None
                    )
                    if table is None:
                        REGISTRY.counter("cache.table_builds").inc()
                        table = TimeTable(core, max_width)
                    else:
                        REGISTRY.counter("cache.table_loads").inc()
                        self._prepaid[core.name] = table.max_width
                        self._saved[core.name] = table.max_width
                        table.extend_to(max_width)
                    self._tables[core.name] = table
                self._persist()
            return
        if max_width > self.max_width:
            # Per-table no-op when already covered, so mixed widths
            # (possible after store loads) each pay only their gap.
            REGISTRY.counter("cache.table_extensions").inc()
            for table in self._tables.values():
                table.extend_to(max_width)
            self._persist()

    def _persist(self) -> None:
        """Write back any table wider than its last-saved width."""
        if self.store is None:
            return
        for name, table in self._tables.items():
            if table.max_width > self._saved.get(name, 0):
                self.store.save(table)
                self._saved[name] = table.max_width

    def tables(self, max_width: int) -> Dict[str, TimeTable]:
        """Core-name → table dict covering widths up to ``max_width``.

        The returned dict is the cache's own mapping and the tables in
        it are shared: a later call with a larger width extends these
        same objects rather than replacing them.  Drop-in compatible
        with :func:`repro.wrapper.pareto.build_time_tables` output
        (tables may cover *more* than the requested width, never
        less).
        """
        self.ensure(max_width)
        return self._tables

    def table_list(self, max_width: int) -> List[TimeTable]:
        """Tables in SOC core order, covering up to ``max_width``."""
        tables = self.tables(max_width)
        return [tables[core.name] for core in self.soc.cores]

    def table(self, core_name: str, max_width: int) -> TimeTable:
        """The named core's table, covering up to ``max_width``."""
        return self.tables(max_width)[core_name]

    def design_calls(self) -> int:
        """Total ``design_wrapper`` invocations this cache has paid for.

        Widths loaded from a persistent store came for free and are
        excluded — a fully warm store yields coverage with zero calls.
        """
        return sum(
            table.max_width - self._prepaid.get(name, 0)
            for name, table in self._tables.items()
        )
