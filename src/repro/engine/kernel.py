"""The dense time-matrix sweep kernel — ``Partition_evaluate``'s fast path.

The legacy sweep rebuilds a fresh N×B Python list-of-lists for *every*
width partition (``_times_for``) and runs ``Core_assign`` as an
allocation-heavy pure-Python loop.  This module removes both costs
while staying **bit-identical** to the legacy heuristic (asserted by
the differential suite in ``tests/engine/test_kernel.py``):

* :class:`DenseTimeMatrix` — every core's monotone time staircase
  exported once (:meth:`~repro.wrapper.pareto.TimeTable.dense_row`)
  into one flat width-indexed array.  Partitions share widths, so the
  per-width *columns* the assignment loop reads are memoized: each is
  materialized exactly once per sweep, with its max/sum aggregates.
* :func:`kernel_assign` — the Fig. 1 heuristic rewritten over those
  columns: single-scan bus and core picks, precomputed per-bus
  tie-break reference, swap-pop core removal, O(1) abort check, and a
  reusable :class:`KernelWorkspace` so the per-partition loop
  allocates nothing but the final result (only built on completion,
  which pruning makes rare).
* :meth:`DenseTimeMatrix.lower_bound` — an admissible O(1) partition
  bound (:func:`repro.assign.lower_bounds.column_lower_bound` on the
  widest column's cached aggregates).  A partition whose bound
  already meets the incumbent cannot complete under the Lines 18-20
  abort, so ``partition_evaluate(prune="lb")`` skips ``Core_assign``
  entirely without changing any observable outcome.
* :class:`DenseTimeTable` — a times-only :class:`~repro.wrapper.
  pareto.TimeTable` stand-in over one matrix row, for pool workers
  that receive the matrix through shared memory
  (:mod:`repro.engine.shm`) instead of building their own tables;
  wrapper *designs* (needed only for final utilization accounting)
  are recovered on demand at the staircase breakpoint.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.assign.core_assign import CoreAssignOutcome, reference_buses
from repro.assign.lower_bounds import column_lower_bound
from repro.exceptions import ConfigurationError
from repro.obs import span as _obs_span
from repro.soc.core import Core
from repro.tam.assignment import AssignmentResult
from repro.wrapper.chain import WrapperDesign
from repro.wrapper.design import design_wrapper
from repro.wrapper.pareto import TimeTable


class DenseTimeMatrix:
    """N cores × W widths testing times, flat and column-memoized.

    ``flat[i * total_width + (w - 1)]`` is core ``i``'s best testing
    time on a width-``w`` bus.  Rows are monotone non-increasing (the
    :class:`~repro.wrapper.pareto.TimeTable` staircase), which is what
    makes the widest-column lower bound admissible.

    The backing store is any flat int sequence — an ``array('q')``
    when built locally, a zero-copy ``memoryview`` when attached to a
    shared-memory segment.  Hot loops never touch it directly: they
    read the memoized per-width column tuples.
    """

    __slots__ = (
        "num_cores", "total_width", "_flat", "_columns", "_stats",
        "_orders", "_contexts",
    )

    def __init__(
        self,
        flat: Union["array[int]", memoryview, Sequence[int]],
        num_cores: int,
        total_width: int,
    ) -> None:
        if num_cores < 1:
            raise ConfigurationError(
                f"num_cores must be >= 1, got {num_cores}"
            )
        if total_width < 1:
            raise ConfigurationError(
                f"total_width must be >= 1, got {total_width}"
            )
        if len(flat) != num_cores * total_width:
            raise ConfigurationError(
                f"flat matrix has {len(flat)} entries, expected "
                f"{num_cores} x {total_width}"
            )
        self.num_cores = num_cores
        self.total_width = total_width
        self._flat = flat
        #: width → column tuple (one entry per core), built on demand.
        self._columns: Dict[int, Tuple[int, ...]] = {}
        #: width → (max, sum) of the column, for the O(1) lower bound.
        self._stats: Dict[int, Tuple[int, int]] = {}
        #: (width, reference width) → core pick order, memoized — the
        #: Line 13-16 selection collapses to "first unassigned core in
        #: this order", O(1) amortized per step.
        self._orders: Dict[Tuple[int, Optional[int]], Tuple[int, ...]] = {}
        #: (width, reference width) → (column, pick order), the fused
        #: per-bus lookup the sweep loop performs once per bus.
        self._contexts: Dict[
            Tuple[int, Optional[int]],
            Tuple[Tuple[int, ...], Tuple[int, ...]],
        ] = {}

    def time(self, core: int, width: int) -> int:
        """Core ``core``'s (0-based) testing time at ``width``."""
        if not 1 <= width <= self.total_width:
            raise ConfigurationError(
                f"width {width} outside matrix range 1..{self.total_width}"
            )
        return self._flat[core * self.total_width + width - 1]

    def column(self, width: int) -> Tuple[int, ...]:
        """All cores' times at ``width``; materialized exactly once."""
        col = self._columns.get(width)
        if col is None:
            if not 1 <= width <= self.total_width:
                raise ConfigurationError(
                    f"width {width} outside matrix range "
                    f"1..{self.total_width}"
                )
            stride = self.total_width
            flat = self._flat
            col = tuple(
                flat[core * stride + width - 1]
                for core in range(self.num_cores)
            )
            self._columns[width] = col
        return col

    def column_stats(self, width: int) -> Tuple[int, int]:
        """(max, sum) of :meth:`column`, cached alongside it."""
        stats = self._stats.get(width)
        if stats is None:
            col = self.column(width)
            stats = (max(col), sum(col))
            self._stats[width] = stats
        return stats

    def lower_bound(self, widths: Sequence[int]) -> int:
        """Admissible P_AW bound for one partition, O(B) amortized.

        Every core's best time under ``widths`` is its time on the
        widest bus (rows are monotone), so the unrelated-machines
        bound needs only that column's cached aggregates.
        """
        return self.lower_bound_for_max(max(widths), len(widths))

    def lower_bound_for_max(self, max_part: int, num_buses: int) -> int:
        """:meth:`lower_bound` of any partition with this widest bus.

        The bound depends on a partition only through its largest
        part and its bus count — and it is monotone non-increasing in
        the largest part (wider columns are elementwise faster).
        The sharded sweep's merge exploits both facts to count
        lower-bound-pruned partitions analytically
        (:func:`repro.partition.enumerate.count_slice_max_at_most`)
        instead of replaying them.
        """
        max_time, total = self.column_stats(max_part)
        return column_lower_bound(max_time, total, num_buses)

    def pick_order(
        self, width: int, reference_width: Optional[int] = None
    ) -> Tuple[int, ...]:
        """Core indices in Line 13-16 preference order for one bus.

        Descending time on the width-``width`` bus, ties by descending
        time on the reference bus (the widest strictly narrower one),
        then ascending core index — exactly the legacy ``_pick_core``
        ordering, so the next core to assign is always the first not-
        yet-assigned entry.  Memoized per (width, reference) pair;
        partitions share widths, so the sweep sorts each pair once.
        """
        key = (width, reference_width)
        order = self._orders.get(key)
        if order is None:
            col = self.column(width)
            if reference_width is None:
                order = sorted(
                    range(self.num_cores),
                    key=lambda core: (-col[core], core),
                )
            else:
                ref = self.column(reference_width)
                order = sorted(
                    range(self.num_cores),
                    key=lambda core: (-col[core], -ref[core], core),
                )
            order = tuple(order)
            self._orders[key] = order
        return order

    def bus_context(
        self, width: int, reference_width: Optional[int]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(column, pick order) for one bus, one dict probe when warm."""
        key = (width, reference_width)
        context = self._contexts.get(key)
        if context is None:
            context = (
                self.column(width),
                self.pick_order(width, reference_width),
            )
            self._contexts[key] = context
        return context

    def times_for(self, widths: Sequence[int]) -> List[List[int]]:
        """Row-major N×B times for ``widths`` (the legacy layout)."""
        cols = [self.column(width) for width in widths]
        return [
            [col[core] for col in cols]
            for core in range(self.num_cores)
        ]

    def to_bytes(self) -> bytes:
        """The flat matrix as native int64 bytes (shared-memory wire form)."""
        flat = self._flat
        if isinstance(flat, array) and flat.typecode == "q":
            return flat.tobytes()
        return array("q", flat).tobytes()

    @classmethod
    def from_buffer(
        cls,
        buffer: Union[bytes, bytearray, memoryview],
        num_cores: int,
        total_width: int,
    ) -> "DenseTimeMatrix":
        """Zero-copy view over a native int64 buffer (bytes or shm)."""
        view = memoryview(buffer).cast("q")
        return cls(view, num_cores, total_width)

    def release(self) -> None:
        """Release a buffer-backed view (before closing its segment)."""
        if isinstance(self._flat, memoryview):
            self._flat.release()
        self._columns.clear()
        self._stats.clear()
        self._orders.clear()
        self._contexts.clear()


def build_dense_matrix(
    tables: Sequence[TimeTable], total_width: int
) -> DenseTimeMatrix:
    """Assemble the N×W matrix from per-core tables, once per sweep."""
    if not tables:
        raise ConfigurationError("need at least one core time table")
    # One coarse span per sweep; the kernel's inner assignment loop
    # stays instrumentation-free (RPR001's telemetry discipline).
    with _obs_span(
        "build_dense_matrix", cores=len(tables), W=total_width
    ):
        flat = array("q")
        for table in tables:
            if table.max_width < total_width:
                raise ConfigurationError(
                    f"time table for {table.core.name!r} covers "
                    f"widths up to {table.max_width} < total width "
                    f"{total_width}"
                )
            flat.extend(table.dense_row(total_width))
        return DenseTimeMatrix(flat, len(tables), total_width)


class KernelWorkspace:
    """Reusable scratch arrays for :func:`kernel_assign`.

    One workspace per sweep keeps the inner loop allocation-free: the
    loads / assignment / cursor lists are grown once and reset in
    place per partition, and the assigned-core marks are generation-
    stamped so resetting them costs nothing at all.
    """

    __slots__ = ("_loads", "_assignment", "_cursors", "_stamps",
                 "_generation")

    def __init__(self) -> None:
        self._loads: List[int] = []
        self._assignment: List[int] = []
        self._cursors: List[int] = []
        self._stamps: List[int] = []
        self._generation = 0


def sweep_assign(
    matrix: DenseTimeMatrix,
    widths: Sequence[int],
    best_known: Optional[int] = None,
    workspace: Optional[KernelWorkspace] = None,
) -> Optional[AssignmentResult]:
    """``Core_assign`` over dense columns; ``None`` when aborted.

    The sweep-internal form of :func:`kernel_assign`: identical logic,
    but an aborted partition returns ``None`` instead of allocating an
    outcome object — under heavy pruning almost every partition
    aborts, so the fast path allocates nothing.
    """
    num_buses = len(widths)
    if num_buses == 0:
        raise ConfigurationError("need at least one bus")
    num_cores = matrix.num_cores
    # Per-bus (column, Line 13-16 pick order), fused and memoized on
    # the matrix across partitions sharing the (width, reference)
    # pair; the reference widths fall out of the same single pass
    # that detects sorted input.
    cols = []
    orders = []
    previous_first = -1
    run_first = 0
    is_sorted = True
    for j, width in enumerate(widths):
        if j and width != widths[j - 1]:
            if width < widths[j - 1]:
                is_sorted = False
                break
            previous_first = run_first
            run_first = j
        column, order = matrix.bus_context(
            width,
            widths[previous_first] if previous_first >= 0 else None,
        )
        cols.append(column)
        orders.append(order)
    if not is_sorted:
        references = reference_buses(widths)
        cols = []
        orders = []
        for j, width in enumerate(widths):
            reference = references[j]
            column, order = matrix.bus_context(
                width,
                widths[reference] if reference >= 0 else None,
            )
            cols.append(column)
            orders.append(order)

    if workspace is None:
        workspace = KernelWorkspace()
    loads = workspace._loads
    if len(loads) < num_buses:
        loads.extend([0] * (num_buses - len(loads)))
    cursors = workspace._cursors
    if len(cursors) < num_buses:
        cursors.extend([0] * (num_buses - len(cursors)))
    for bus in range(num_buses):
        loads[bus] = 0
        cursors[bus] = 0
    assignment = workspace._assignment
    stamps = workspace._stamps
    if len(assignment) < num_cores:
        grow = num_cores - len(assignment)
        assignment.extend([0] * grow)
        stamps.extend([0] * grow)
    workspace._generation += 1
    generation = workspace._generation

    # Partial area bound state: ``projected`` is assigned work plus
    # the floor (widest-column time) of every unassigned core — a
    # lower bound on the final total work, so the final makespan is
    # at least ceil(projected / B).  ``projected > area_limit`` is
    # that test without the division.
    floors = None
    projected = 0
    area_limit = 0
    if best_known is not None:
        widest = max(widths)
        floors = matrix.column(widest)
        projected = matrix.column_stats(widest)[1]
        area_limit = (best_known - 1) * num_buses

    remaining = num_cores
    while remaining:
        # Lines 10-12: min-load bus, ties to the widest, then lowest
        # index — a single scan.
        bus = 0
        best_load = loads[0]
        best_width = widths[0]
        for j in range(1, num_buses):
            load = loads[j]
            if load < best_load or (
                load == best_load and widths[j] > best_width
            ):
                bus = j
                best_load = load
                best_width = widths[j]

        # Lines 13-16: first unassigned core in this bus's preference
        # order.  Cursors only ever advance — cores assigned earlier
        # stay stamped for the whole partition — so the skips
        # amortize to O(N) per partition, not per step.
        order = orders[bus]
        cursor = cursors[bus]
        core = order[cursor]
        while stamps[core] == generation:
            cursor += 1
            core = order[cursor]
        cursors[bus] = cursor
        stamps[core] = generation

        assignment[core] = bus
        best_time = cols[bus][core]
        load = loads[bus] + best_time
        loads[bus] = load
        if floors is not None:
            # Lines 18-20 (only this bus's load changed, and every
            # load was below the incumbent before — O(1)), plus the
            # partial area bound, which cannot misfire: it bounds the
            # final time from below, and the legacy abort fires on
            # every run whose final time reaches the incumbent.
            projected += best_time - floors[core]
            if load >= best_known or projected > area_limit:
                return None
        remaining -= 1

    bus_times = tuple(loads[:num_buses])
    return AssignmentResult(
        widths=tuple(widths),
        assignment=tuple(assignment[:num_cores]),
        bus_times=bus_times,
        testing_time=max(bus_times),
    )


def kernel_assign(
    matrix: DenseTimeMatrix,
    widths: Sequence[int],
    best_known: Optional[int] = None,
    workspace: Optional[KernelWorkspace] = None,
) -> CoreAssignOutcome:
    """``Core_assign`` over dense columns — bit-identical, allocation-lean.

    Produces exactly the outcome of :func:`repro.assign.core_assign.
    core_assign` on ``matrix.times_for(widths)``: the same result on
    completion, and an abort exactly when the legacy path would have
    aborted — a run completes iff its final time beats ``best_known``.
    The abort itself may fire *earlier* than Lines 18-20: alongside
    the per-bus load check the loop maintains an admissible partial
    area bound (assigned work so far plus every remaining core's
    floor, cf. :func:`repro.assign.lower_bounds.partial_lower_bound`),
    which dooms most partitions steps before a single bus physically
    crosses the incumbent.
    """
    result = sweep_assign(matrix, widths, best_known, workspace)
    if result is None:
        assert best_known is not None
        return CoreAssignOutcome(
            completed=False, testing_time=best_known, result=None
        )
    return CoreAssignOutcome(
        completed=True, testing_time=result.testing_time, result=result
    )


class DenseTimeTable:
    """A times-only :class:`~repro.wrapper.pareto.TimeTable` stand-in.

    Answers :meth:`time` by O(1) matrix lookup and :meth:`design` by
    recovering the staircase breakpoint (leftmost width with the same
    time — where the running-minimum construction stored its design).
    Values are identical to the real table's; pool workers use these
    over a shared-memory matrix so they never build private tables.

    ``design_steps`` — serialized wrapper-design records keyed by
    breakpoint width, as shipped by the shared-memory staircase
    transport (:mod:`repro.engine.shm`) — closes the last per-worker
    rebuild gap: a breakpoint with a shipped record is *decoded*, not
    re-designed, so the handful of designs the final utilization
    accounting needs cost zero ``Design_wrapper`` calls too.  Without
    records (or for a width outside them) the table falls back to
    running ``Design_wrapper`` at the breakpoint, as before.
    """

    def __init__(
        self,
        core: Core,
        matrix: DenseTimeMatrix,
        index: int,
        design_steps: Optional[Sequence[Tuple[int, dict]]] = None,
    ) -> None:
        self.core = core
        self.max_width = matrix.total_width
        self._matrix = matrix
        self._index = index
        self._designs: Dict[int, WrapperDesign] = {}
        #: breakpoint width → serialized design record, decoded lazily.
        self._design_steps: Dict[int, dict] = dict(design_steps or ())

    def _check_width(self, width: int) -> None:
        if not 1 <= width <= self.max_width:
            raise ConfigurationError(
                f"width {width} outside table range 1..{self.max_width}"
            )

    def time(self, width: int) -> int:
        """Best testing time of the core on a bus of ``width`` wires."""
        self._check_width(width)
        return self._matrix.time(self._index, width)

    def design(self, width: int) -> WrapperDesign:
        """The design achieving :meth:`time` at ``width``, on demand."""
        self._check_width(width)
        target = self.time(width)
        # Leftmost width attaining the same time: rows are monotone
        # non-increasing, so equality with the target is a monotone
        # predicate and binary search finds the breakpoint.
        low, high = 1, width
        while low < high:
            mid = (low + high) // 2
            if self.time(mid) == target:
                high = mid
            else:
                low = mid + 1
        design = self._designs.get(low)
        if design is None:
            record = self._design_steps.get(low)
            if record is not None:
                # Imported lazily: the serializer sits above this
                # module in the layering.
                from repro.report.serialize import (
                    wrapper_design_from_dict,
                )

                design = wrapper_design_from_dict(record, self.core)
            else:
                design = design_wrapper(self.core, low)
            self._designs[low] = design
        return design

    @property
    def min_time(self) -> int:
        """Testing time at the full table width (the core's floor)."""
        return self.time(self.max_width)

    def dense_row(self, max_width: int) -> List[int]:
        """Flat width-indexed times, mirroring ``TimeTable.dense_row``."""
        self._check_width(max_width)
        stride = self._matrix.total_width
        start = self._index * stride
        return list(self._matrix._flat[start:start + max_width])


def dense_time_tables(
    cores: Sequence[Core],
    matrix: DenseTimeMatrix,
    design_steps: Optional[Dict[str, Sequence[Tuple[int, dict]]]] = None,
) -> Dict[str, "DenseTimeTable"]:
    """One :class:`DenseTimeTable` per core over ``matrix``'s rows.

    ``design_steps`` optionally maps core names to their transported
    staircase records (see :func:`repro.engine.shm.attach_design_steps`).
    """
    if len(cores) != matrix.num_cores:
        raise ConfigurationError(
            f"{len(cores)} cores for a {matrix.num_cores}-row matrix"
        )
    steps = design_steps or {}
    return {
        core.name: DenseTimeTable(
            core, matrix, index, design_steps=steps.get(core.name)
        )
        for index, core in enumerate(cores)
    }
