"""Parallel batch execution of (SOC, W, B) optimization jobs.

A design-space sweep is embarrassingly parallel across its points,
but a naive pool would re-run ``Design_wrapper`` per point.  The
:class:`BatchRunner` keeps the sharing and adds the parallelism:

* **inline mode** (``max_workers=1``, the default for the sequential
  sweeps in :mod:`repro.analysis.sweep`): jobs run in the calling
  process against runner-owned :class:`~repro.engine.cache.
  WrapperTableCache` s, one per SOC, so a width sweep pays one
  wrapper design per (core, width) pair in total;
* **pool mode** (``max_workers > 1`` or ``None`` = one per CPU):
  jobs fan out over a ``concurrent.futures`` process pool.  Each
  worker process keeps its own module-level cache per SOC, so every
  job a worker receives after its first reuses (and at most extends)
  tables already built in that worker.

Three orthogonal options extend the engine for service use:

* ``cache_dir`` backs every cache (inline and per-worker) with a
  persistent :class:`repro.service.store.TableStore`, so table
  builds are skipped entirely once the store is warm — across
  processes *and* across runs;
* ``on_error="record"`` turns a failing grid point into a structured
  :class:`FailedPoint` in the result list instead of aborting the
  whole grid, with ``retries`` transient-failure attempts first;
* ``persistent=True`` keeps the process pool alive across
  :meth:`BatchRunner.run` calls (close with :meth:`BatchRunner.
  close` or a ``with`` block) — the resident-worker mode the
  exploration service (:mod:`repro.service.server`) is built on.

Results come back as :class:`~repro.analysis.sweep.SweepPoint`
records in job order, and are identical to a sequential run — the
optimizer is deterministic and the tables a cache hands out match a
fresh build exactly.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from time import monotonic as _os_clock
from time import sleep as _sleep
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.sweep import SweepPoint, evaluate_point
from repro.api.specs import resolved_tam_counts
from repro.engine.cache import WrapperTableCache
from repro.engine.faults import FaultPlan
from repro.engine.kernel import (
    DenseTimeMatrix,
    build_dense_matrix,
    dense_time_tables,
)
from repro.engine.shm import (
    DenseDescriptor,
    IncumbentBoard,
    SegmentRegistry,
    attach,
    attach_design_steps,
    design_steps_blob,
    parse_design_steps,
)
from repro.exceptions import ConfigurationError, DeadlineError
from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    MetricsSnapshot,
    SpanRecord,
    TaskTelemetry,
    span,
    task_begin,
    task_end,
)
from repro.partition.evaluate import (
    PartitionSearchResult,
    partition_evaluate,
)
from repro.partition.shard import (
    ShardOutcome,
    ShardPlan,
    ShardSpan,
    count_sizes,
    sharded_partition_evaluate,
    sweep_shard,
)
from repro.retry import backoff_schedule
from repro.soc.fingerprint import soc_fingerprint
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.specs import GridSpec, OptimizeSpec
    from repro.service.store import TableStore

logger = logging.getLogger(__name__)

#: Valid ``on_error`` policies: abort the grid on the first failing
#: point, or record it as a :class:`FailedPoint` and keep going.
ON_ERROR_POLICIES: Tuple[str, ...] = ("raise", "record")


@dataclass(frozen=True)
class BatchJob:
    """One optimization job: a SOC, a TAM budget, and TAM count(s).

    ``num_tams`` follows :func:`repro.optimize.co_optimize.co_optimize`:
    a single count (P_PAW), a tuple of counts, or ``None`` for the
    paper's P_NPAW default.  Iterables are frozen to tuples so jobs
    are immutable and picklable for the process pool.

    ``options`` holds extra keyword arguments forwarded to
    ``co_optimize`` (e.g. ``polish``, ``polish_top_k``,
    ``exact_time_limit``); a mapping is frozen to sorted items.  Note
    that ``exact_time_limit`` is a *wall-clock* budget: a solve that
    hits it under CPU contention returns its incumbent, so strictly
    load-independent results require budgets generous enough that
    solves finish by node exhaustion or optimality proof.
    """

    soc: Soc
    total_width: int
    num_tams: Union[int, Tuple[int, ...], None] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.total_width < 1:
            raise ConfigurationError(
                f"total_width must be >= 1, got {self.total_width}"
            )
        if self.num_tams is not None and not isinstance(self.num_tams, int):
            object.__setattr__(self, "num_tams", tuple(self.num_tams))
        if isinstance(self.options, Mapping):
            object.__setattr__(
                self, "options", tuple(sorted(self.options.items()))
            )
        else:
            object.__setattr__(self, "options", tuple(self.options))

    def options_dict(self) -> Dict[str, Any]:
        """The frozen ``options`` pairs as keyword arguments."""
        return dict(self.options)

    @classmethod
    def from_spec(cls, soc: Soc, spec: "OptimizeSpec") -> "BatchJob":
        """The engine job a typed :class:`repro.api.OptimizeSpec` means.

        Options are carried *sparse* (non-defaults only, via
        :meth:`~repro.api.specs.OptimizeSpec.engine_options`) so the
        engine's own defaulting — e.g. ``evaluate_point`` switching
        an unspecified ``prune`` to the outcome-identical ``"lb"`` —
        still applies, exactly as for a hand-built job.
        """
        return cls(
            soc=soc,
            total_width=spec.total_width,
            num_tams=spec.num_tams,
            options=spec.engine_options(),
        )

    def spec(self) -> "OptimizeSpec":
        """This job's configuration as a typed ``OptimizeSpec``.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        job carries option keys the canonical spec does not know —
        the drift guard that makes every supported option exist in
        one place (:data:`repro.api.specs.OPTION_DEFAULTS`).
        """
        from repro.api.specs import OptimizeSpec

        return OptimizeSpec.from_options(
            self.total_width,
            num_tams=self.num_tams,
            options=self.options_dict(),
        )

    def describe(self) -> str:
        """Short ``soc W=.. B=..`` label for logs and progress lines."""
        if self.num_tams is None:
            counts = "B=auto"
        elif isinstance(self.num_tams, int):
            counts = f"B={self.num_tams}"
        else:
            counts = f"B in {list(self.num_tams)}"
        return f"{self.soc.name} W={self.total_width} {counts}"


@dataclass(frozen=True)
class FailedPoint:
    """A grid point that raised instead of producing a result.

    Returned in place of a :class:`~repro.analysis.sweep.SweepPoint`
    when the runner's ``on_error`` policy is ``"record"``: the grid
    completes, and failures stay attributable — which job, which
    exception, after how many attempts.  Picklable, so pool workers
    can ship it back like any result.
    """

    job: BatchJob
    error_type: str
    error_message: str
    attempts: int

    @property
    def total_width(self) -> int:
        """The failed job's TAM budget, mirroring ``SweepPoint``."""
        return self.job.total_width

    def describe(self) -> str:
        """One-line ``job: error`` summary for logs and reports."""
        retried = (
            f" after {self.attempts} attempts" if self.attempts > 1 else ""
        )
        return (
            f"{self.job.describe()}: {self.error_type}: "
            f"{self.error_message}{retried}"
        )


#: What a batch returns per job: a result or a recorded failure.
BatchResult = Union[SweepPoint, FailedPoint]


def normalize_shard_policy(
    value: Union[int, str, None]
) -> Union[int, str, None]:
    """Validate a shard policy (runner default, CLI flag, or hint).

    Accepts ``None`` (defer to the runner), ``"auto"``, or a shard
    count >= 0; anything else — including the untrusted ``runner``
    mapping of a submitted :class:`~repro.api.specs.GridSpec` —
    raises :class:`~repro.exceptions.ConfigurationError` instead of
    silently degrading the grid or crashing a worker.
    """
    if value is None or value == "auto":
        return value
    if isinstance(value, int) and not isinstance(value, bool) \
            and value >= 0:
        return value
    raise ConfigurationError(
        f'shard must be "auto", a count >= 0, or None; got {value!r}'
    )


def normalize_point_timeout(
    value: Union[int, float, None]
) -> Optional[float]:
    """Validate a per-point deadline (runner default, CLI, or hint).

    Accepts ``None`` (no deadline) or a positive number of seconds;
    anything else — including the untrusted ``runner`` mapping of a
    submitted :class:`~repro.api.specs.GridSpec` — raises
    :class:`~repro.exceptions.ConfigurationError`.  Like ``shard``,
    the deadline is pure execution strategy: excluded from every
    canonical job key.
    """
    if value is None:
        return None
    if (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value > 0
    ):
        return float(value)
    raise ConfigurationError(
        "point_timeout must be a positive number of seconds or "
        f"None; got {value!r}"
    )


def normalize_max_concurrent(
    value: Union[int, None]
) -> Optional[int]:
    """Validate a concurrent-point ceiling (quota or runner hint).

    Accepts ``None`` (uncapped) or an int >= 1 — the most grid
    points of one job kept in flight on the pool at once, the
    fairness knob a multi-tenant server derives from the client's
    ``max_concurrent_points`` quota.  Pure execution strategy:
    excluded from every canonical job key, results bit-identical at
    any setting.
    """
    if value is None:
        return None
    if isinstance(value, int) and not isinstance(value, bool) \
            and value >= 1:
        return value
    raise ConfigurationError(
        f"max_concurrent must be an int >= 1 or None; got {value!r}"
    )


def split_results(
    results: Iterable[BatchResult],
) -> Tuple[List[SweepPoint], List[FailedPoint]]:
    """Partition mixed batch results into (points, failures)."""
    points: List[SweepPoint] = []
    failures: List[FailedPoint] = []
    for result in results:
        if isinstance(result, FailedPoint):
            failures.append(result)
        else:
            points.append(result)
    return points, failures


def align_point_telemetry(
    results: Sequence[BatchResult],
    telemetry: Sequence[Optional[TaskTelemetry]],
) -> List[Optional[TaskTelemetry]]:
    """Per-job telemetry re-aligned with a serialized grid's points.

    :func:`repro.service.server.grid_payload` keeps successful points
    (in job order) separate from failures; the warehouse stores
    telemetry per *point*, so failed jobs' slots are dropped here.
    """
    return [
        entry for result, entry in zip(results, telemetry)
        if not isinstance(result, FailedPoint)
    ]


#: Per-worker-process table caches, keyed by SOC name.  Populated only
#: inside pool workers; each worker builds tables for a SOC at most
#: once (extending in place when a wider job arrives).
_WORKER_CACHES: Dict[str, WrapperTableCache] = {}

#: Per-worker-process runtime policy, set by :func:`_init_worker` at
#: pool start: (on_error, retries, table store or None, tracing on).
_WORKER_POLICY: Tuple[str, int, "Optional[TableStore]", bool] = (
    "raise", 0, None, False
)

#: The fault-injection plan active in this worker process, parsed
#: from the plan text the parent threaded through the initializer.
#: ``None`` (the default, and the only production value) makes every
#: fault hook a no-op.
_WORKER_FAULTS: Optional[FaultPlan] = None

#: True only in processes initialized by :func:`_init_worker` — the
#: guard that keeps crash faults (``os._exit``) from ever firing in
#: the parent/inline process.
_IN_POOL_WORKER = False


def _make_store(cache_dir: Union[str, Path, None]) -> "Optional[TableStore]":
    """A :class:`TableStore` on ``cache_dir``, or ``None``."""
    if cache_dir is None:
        return None
    # Imported lazily: repro.service builds on this module.
    from repro.service.store import TableStore

    return TableStore(cache_dir)


def _init_worker(
    on_error: str,
    retries: int,
    cache_dir: Union[str, None],
    trace: bool = False,
    faults: Optional[str] = None,
) -> None:
    """Pool initializer: install the runner's policy in this worker.

    ``trace`` mirrors the parent tracer's state at pool start, so one
    ``TRACER.enable()`` in the parent traces the whole fleet — each
    worker's spans ride home in its :class:`TaskTelemetry`.
    ``faults`` is the parent's ``REPRO_FAULTS`` plan text at pool
    start (normally ``None``), re-parsed here so every worker shares
    the same deterministic chaos plan.
    """
    global _WORKER_POLICY, _WORKER_FAULTS, _IN_POOL_WORKER
    _WORKER_POLICY = (on_error, retries, _make_store(cache_dir), trace)
    _WORKER_FAULTS = FaultPlan.parse(faults) if faults else None
    _IN_POOL_WORKER = True
    if trace:
        TRACER.enable()


def _cache_for(
    caches: Dict[str, WrapperTableCache],
    soc: Soc,
    store: "Optional[TableStore]" = None,
) -> WrapperTableCache:
    """The cache for ``soc`` in ``caches``, created or replaced as needed."""
    cache = caches.get(soc.name)
    if cache is None or cache.soc != soc:
        cache = WrapperTableCache(soc, store=store)
        caches[soc.name] = cache
    return cache


def _dense_point(
    job: BatchJob,
    descriptor: Optional[DenseDescriptor],
    point_index: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> Optional[SweepPoint]:
    """Evaluate ``job`` over a transported dense matrix, if possible.

    Returns ``None`` whenever the descriptor cannot serve this job —
    wrong SOC content, too narrow, segment gone — so the caller falls
    back to its private table cache.  On the happy path the worker
    builds *no* wrapper tables at all: the sweep reads the shared
    matrix, and the designs the final utilization accounting needs
    come decoded from the transported staircases (or, absent those,
    are recovered on demand per bus width).
    """
    if descriptor is None:
        return None
    if (
        descriptor.total_width < job.total_width
        or descriptor.num_cores != len(job.soc.cores)
        or descriptor.fingerprint != soc_fingerprint(job.soc)
    ):
        return None
    if (
        faults is not None
        and point_index is not None
        and faults.take_shm_failure(point_index)
    ):
        return None  # injected attach failure: take the fallback path
    matrix = attach(descriptor)
    if matrix is None:
        return None
    return evaluate_point(
        job.soc,
        job.total_width,
        num_tams=job.num_tams,
        tables=dense_time_tables(
            job.soc.cores, matrix,
            design_steps=attach_design_steps(descriptor),
        ),
        dense=matrix,
        **job.options_dict(),
    )


def _run_job_tracked(
    caches: Dict[str, WrapperTableCache],
    job: BatchJob,
    store: "Optional[TableStore]" = None,
    descriptor: Optional[DenseDescriptor] = None,
    point_index: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> Tuple[SweepPoint, int]:
    """Evaluate one job; also report whether the dense path was lost.

    The second element counts shared-table fallbacks: ``1`` when a
    descriptor was provided but could not serve the job (segment
    gone, stale content, attach failure) and the worker silently paid
    for a full private cache instead — the slow path the runner now
    surfaces (:attr:`BatchRunner.shm_fallbacks`) instead of hiding.
    """
    if faults is not None and point_index is not None:
        delay = faults.slow_delay(point_index)
        if delay:
            _sleep(delay)  # injected stall; delay comes from the plan
    if descriptor is not None:
        point = _dense_point(
            job, descriptor, point_index=point_index, faults=faults
        )
        if point is not None:
            return point, 0
    cache = _cache_for(caches, job.soc, store=store)
    point = evaluate_point(
        job.soc,
        job.total_width,
        num_tams=job.num_tams,
        tables=cache.tables(job.total_width),
        **job.options_dict(),
    )
    return point, (0 if descriptor is None else 1)


def _run_job_cached(
    caches: Dict[str, WrapperTableCache],
    job: BatchJob,
    store: "Optional[TableStore]" = None,
    descriptor: Optional[DenseDescriptor] = None,
) -> SweepPoint:
    """Evaluate one job against the transported matrix or shared caches."""
    return _run_job_tracked(
        caches, job, store=store, descriptor=descriptor
    )[0]


def _run_job_safe(
    caches: Dict[str, WrapperTableCache],
    job: BatchJob,
    on_error: str,
    retries: int,
    store: "Optional[TableStore]" = None,
    descriptor: Optional[DenseDescriptor] = None,
    point_index: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> Tuple[BatchResult, int]:
    """Evaluate one job under the runner's failure policy."""
    attempts = retries + 1
    for attempt in range(1, attempts + 1):
        try:
            return _run_job_tracked(
                caches, job, store=store, descriptor=descriptor,
                point_index=point_index, faults=faults,
            )
        except Exception as error:  # noqa: BLE001 - policy boundary
            if attempt < attempts:
                logger.warning(
                    "job %s failed (attempt %d/%d), retrying: %s",
                    job.describe(), attempt, attempts, error,
                )
                continue
            if on_error == "record":
                logger.error(
                    "job %s failed permanently: %s: %s",
                    job.describe(), type(error).__name__, error,
                )
                return FailedPoint(
                    job=job,
                    error_type=type(error).__name__,
                    error_message=str(error),
                    attempts=attempt,
                ), 0
            raise
    raise AssertionError("unreachable")  # pragma: no cover


def _pool_worker(
    item: Tuple[Any, ...]
) -> Tuple[BatchResult, int, TaskTelemetry]:
    """Pool entry point: evaluate one (job, descriptor, index) item.

    Ships the job's :class:`TaskTelemetry` (its spans plus this
    worker's metrics delta) back with the result, so the parent's
    registry covers the whole fleet.  The grid-point index keys the
    fault-injection hooks (and older two-element items still work).
    """
    job, descriptor = item[0], item[1]
    point_index: Optional[int] = item[2] if len(item) > 2 else None
    on_error, retries, store, _ = _WORKER_POLICY
    faults = _WORKER_FAULTS
    if (
        faults is not None
        and point_index is not None
        and _IN_POOL_WORKER
        and faults.take_crash(point_index)
    ):
        # Injected worker death: surfaces in the parent as a
        # BrokenProcessPool, exercising the pool-rebuild recovery.
        os._exit(1)
    baseline = task_begin()
    result, fallbacks = _run_job_safe(
        _WORKER_CACHES, job, on_error, retries, store=store,
        descriptor=descriptor, point_index=point_index, faults=faults,
    )
    return result, fallbacks, task_end(baseline)


def _shard_worker(
    item: Tuple[
        DenseDescriptor, object, int, Tuple[ShardSpan, ...], Soc,
        int, int, Optional[int], Union[bool, str],
    ]
) -> Tuple[ShardOutcome, int, TaskTelemetry]:
    """Pool entry point: score one shard of a sharded partition sweep.

    Attaches the job's shared dense matrix and the sweep's incumbent
    board, scores the shard's rank ranges, and ships the recorded
    completions back for the parent-side deterministic merge.  A
    worker that cannot attach the matrix rebuilds privately from its
    cache — same outcome, counted as a shared-table fallback.
    """
    (descriptor, board_descriptor, shard_index, spans, soc,
     total_width, keep_top, initial_best, prune) = item
    faults = _WORKER_FAULTS
    if (
        faults is not None and _IN_POOL_WORKER
        and faults.take_crash(shard_index)
    ):
        os._exit(1)  # injected shard-worker death
    baseline = task_begin()
    if faults is not None:
        delay = faults.slow_delay(shard_index)
        if delay:
            _sleep(delay)  # injected stall; delay comes from the plan
    fallbacks = 0
    matrix = (
        None
        if faults is not None and faults.take_shm_failure(shard_index)
        else attach(descriptor)
    )
    if matrix is None:
        fallbacks = 1
        logger.warning(
            "shard %d: dense segment for %s unavailable; rebuilding "
            "tables privately", shard_index, soc.name,
        )
        store = _WORKER_POLICY[2]
        cache = _cache_for(_WORKER_CACHES, soc, store=store)
        matrix = build_dense_matrix(
            cache.table_list(total_width), total_width
        )
    board = IncumbentBoard.attach(board_descriptor)
    try:
        with span(
            "shard_sweep", soc=soc.name, shard=shard_index
        ) as shard_span:
            outcome = sweep_shard(
                matrix, spans, shard_index, total_width,
                keep_top=keep_top, initial_best=initial_best,
                prune=prune, board=board,
            )
            shard_span.annotate(
                completions=len(outcome.completions)
            )
    finally:
        if board is not None:
            board.close()
    REGISTRY.counter("shard.shards_run").inc()
    return outcome, fallbacks, task_end(baseline)


def _search_worker(
    item: Tuple[DenseDescriptor, object, Any, Soc, int]
) -> Tuple[Any, int, TaskTelemetry]:
    """Pool entry point: run one island of a ``mode="search"`` point.

    Attaches the job's shared dense matrix and the search's incumbent
    board, runs the island to budget exhaustion, and ships its
    :class:`~repro.search.IslandResult` back for the parent-side
    deterministic merge.  Publication to the board is write-only —
    the island never reads other islands' incumbents — so the result
    is bit-identical to inline execution.  A worker that cannot
    attach the matrix rebuilds privately from its cache — same
    outcome, counted as a shared-table fallback.
    """
    (descriptor, board_descriptor, plan, soc, total_width) = item
    # Imported lazily: repro.search builds on repro.engine.kernel,
    # whose package import lands back in this module.
    from repro.search.driver import run_island

    faults = _WORKER_FAULTS
    if (
        faults is not None and _IN_POOL_WORKER
        and faults.take_crash(plan.island_index)
    ):
        os._exit(1)  # injected island-worker death
    baseline = task_begin()
    if faults is not None:
        delay = faults.slow_delay(plan.island_index)
        if delay:
            _sleep(delay)  # injected stall; delay comes from the plan
    fallbacks = 0
    matrix = (
        None
        if faults is not None
        and faults.take_shm_failure(plan.island_index)
        else attach(descriptor)
    )
    if matrix is None:
        fallbacks = 1
        logger.warning(
            "island %d: dense segment for %s unavailable; rebuilding "
            "tables privately", plan.island_index, soc.name,
        )
        store = _WORKER_POLICY[2]
        cache = _cache_for(_WORKER_CACHES, soc, store=store)
        matrix = build_dense_matrix(
            cache.table_list(total_width), total_width
        )
    board = (
        IncumbentBoard.attach(board_descriptor)
        if board_descriptor is not None else None
    )
    publish = None
    if board is not None:
        def publish(
            time: int, _board: IncumbentBoard = board,
            _slot: int = plan.island_index,
        ) -> None:
            _board.publish(_slot, (time,))
    try:
        with span(
            "search_island", soc=soc.name, island=plan.island_index,
            strategy=plan.strategy,
        ) as island_span:
            result = run_island(matrix, plan, publish=publish)
            island_span.annotate(evals=result.evals)
    finally:
        if board is not None:
            board.close()
    REGISTRY.counter("search.islands_run").inc()
    return result, fallbacks, task_end(baseline)


def _polish_worker(
    item: Tuple[Any, ...]
) -> Tuple[Any, TaskTelemetry]:
    """Pool entry point: solve one exact-polish candidate.

    Executes one :data:`repro.optimize.co_optimize.PolishTask` — an
    independent, picklable exact ``P_AW`` solve — so a sharded job's
    top-k polish steps run across the pool instead of serially in the
    parent.  The parent reduces the returned
    :class:`~repro.assign.exact.ExactResult` s in candidate order,
    which is exactly the serial loop's reduction.
    """
    from repro.optimize.co_optimize import run_polish_task

    baseline = task_begin()
    with span("polish_candidate", widths=str(item[1].widths)):
        exact = run_polish_task(item)
    REGISTRY.counter("engine.polish_tasks_run").inc()
    return exact, task_end(baseline)


def _build_matrix_worker(
    item: Tuple[Soc, int]
) -> Tuple[bytes, bytes, float, TaskTelemetry]:
    """Pool entry point: build one cold SOC's dense matrix + staircases.

    Runs the wrapper designs on a pool worker — through that worker's
    (store-backed) cache, so the build also warms it — and returns
    the matrix bytes, the serialized design staircases, and the build
    seconds for the parent to publish over shared memory.  This is
    how a cold many-SOC grid's table builds spread across the pool
    instead of serializing in the parent.
    """
    soc, total_width = item
    baseline = task_begin()
    start = _os_clock()
    store = _WORKER_POLICY[2]
    with span("build_tables", soc=soc.name, W=total_width):
        cache = _cache_for(_WORKER_CACHES, soc, store=store)
        tables = cache.table_list(total_width)
        matrix = build_dense_matrix(tables, total_width)
    return (
        matrix.to_bytes(),
        design_steps_blob(tables),
        _os_clock() - start,
        task_end(baseline),
    )


def _merge_task_telemetry(
    parent: TaskTelemetry, shards: Sequence[TaskTelemetry]
) -> TaskTelemetry:
    """One job's telemetry from its parent-side and shard-side parts.

    A sharded job's spans and counters come from two places: the
    parent (merge, polish, certificate) and each shard worker.  The
    merged record is what the warehouse stores per point; the caller
    is responsible for absorbing each part into the runner's registry
    exactly once.
    """
    if not shards:
        return parent
    registry = MetricsRegistry()
    registry.absorb(parent.metrics)
    merged: List[SpanRecord] = list(parent.spans)
    for telemetry in shards:
        registry.absorb(telemetry.metrics)
        merged.extend(telemetry.spans)
    return TaskTelemetry(
        spans=tuple(merged), metrics=registry.snapshot()
    )


class BatchRunner:
    """Run batches of :class:`BatchJob` s with shared-table reuse.

    Parameters
    ----------
    max_workers:
        ``1`` runs jobs inline in the calling process (sequential,
        no pool, runner-owned caches reused across ``run`` calls);
        ``None`` uses one worker per CPU; any other value sizes the
        process pool explicitly.  An ephemeral pool never exceeds
        the number of jobs; a persistent one is sized once.
    chunksize:
        Jobs handed to a pool worker per dispatch.  Values above 1
        keep consecutive jobs (typically same SOC, ascending widths)
        on one worker, improving its cache reuse at some cost in
        load balance.
    on_error:
        ``"raise"`` (default) aborts the batch on the first failing
        job; ``"record"`` returns a :class:`FailedPoint` for it and
        completes the rest of the grid.
    retries:
        Extra attempts per job before its failure is raised or
        recorded.  The pipeline is deterministic, so retries pay off
        only for environmental failures (a worker killed under
        memory pressure, a wall-clock-truncated exact solve).
    cache_dir:
        When set, every table cache — the runner's own in inline
        mode, each worker's in pool mode — is backed by a persistent
        :class:`repro.service.store.TableStore` on this directory.
    persistent:
        Keep the process pool alive across :meth:`run` calls instead
        of starting one per call.  Callers own the shutdown:
        :meth:`close`, or use the runner as a context manager.
    share_tables:
        Pool mode only: build each SOC's dense time matrix once in
        the parent and ship it to the workers through
        ``multiprocessing.shared_memory`` (:mod:`repro.engine.shm`)
        instead of every worker building a private wrapper-table
        copy.  Results are identical either way; segments are freed
        when the pool goes away (end of :meth:`run` for an ephemeral
        pool, :meth:`close` for a persistent one), and the transport
        degrades gracefully — to pickled matrix bytes when shared
        memory is unavailable, to per-worker caches when a worker
        cannot attach.  The matrices of a *cold* grid over several
        SOCs are built through the pool (one task per SOC) rather
        than serially in the parent, and the wrapper-design
        staircases ride along, so workers never run ``Design_wrapper``
        at all on the happy path.
    shard:
        Intra-job sharding policy for the partition sweep
        (:mod:`repro.partition.shard`): ``"auto"`` (default) splits a
        job's enumeration across the pool when jobs are scarcer than
        workers and the partition space is big enough to pay for the
        fan-out; an ``int`` forces that many shards per eligible job;
        ``None``/``0`` disables.  Outcomes are bit-identical to the
        unsharded run either way — sharding is pure execution
        strategy, excluded from every canonical job key.  Only jobs
        on the production defaults (canonical ``unique`` enumeration,
        kernel engine, no per-count stratification) shard; others
        fall back to whole-job dispatch.
    point_timeout:
        Per-point wall-clock deadline in seconds (pool mode only;
        inline jobs cannot be interrupted).  A point whose result
        does not arrive within the deadline counts into
        ``engine.points_timed_out`` and becomes a
        :class:`FailedPoint` under ``on_error="record"`` or raises
        :class:`~repro.exceptions.DeadlineError` under ``"raise"``.
        Like ``shard``, overridable per call and per submitted
        :class:`~repro.api.specs.GridSpec` runner hint, and excluded
        from every canonical job key.
    pool_restart_retries:
        How many times a grid survives its process pool breaking
        (a worker OOM-killed or segfaulting): the pool is rebuilt,
        already-yielded results are kept, and only the unfinished
        points re-dispatch — after a deterministic
        :func:`repro.retry.backoff_schedule` delay.  ``0`` restores
        the historical fail-fast behavior.
    """

    #: Extra attempts a failed *shard task* gets (at shard
    #: granularity, before the job-level retry policy even engages);
    #: re-running a shard is deterministic, so one retry only pays
    #: off for environmental failures.
    SHARD_RETRY_ATTEMPTS = 2

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        chunksize: int = 1,
        on_error: str = "raise",
        retries: int = 0,
        cache_dir: Union[str, Path, None] = None,
        persistent: bool = False,
        share_tables: bool = True,
        shard: Union[int, str, None] = "auto",
        point_timeout: Union[int, float, None] = None,
        pool_restart_retries: int = 2,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1 or None, got {max_workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        if on_error not in ON_ERROR_POLICIES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {retries}"
            )
        normalize_shard_policy(shard)
        if pool_restart_retries < 0:
            raise ConfigurationError(
                "pool_restart_retries must be >= 0, got "
                f"{pool_restart_retries}"
            )
        self.point_timeout = normalize_point_timeout(point_timeout)
        self.pool_restart_retries = pool_restart_retries
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.on_error = on_error
        self.retries = retries
        self.cache_dir = (
            str(cache_dir) if cache_dir is not None else None
        )
        self.persistent = persistent
        self.share_tables = share_tables
        self.shard = shard
        #: This runner's typed instrument namespace: the engine's own
        #: counters (``engine.pools_started``, ``engine.shm_fallbacks``,
        #: ``engine.jobs_sharded``, ``shard.shards_planned``) plus
        #: everything absorbed from job and worker telemetry (cache
        #: hit/miss counts, sweep prune totals, shard/build timers).
        self.metrics = MetricsRegistry()
        #: The *previous* ``run_iter`` consumption's own metrics — the
        #: registry delta between that run's start and end, so a
        #: persistent runner reports per-run numbers, not lifetime
        #: totals.  ``None`` before the first run.
        self.last_run_metrics: Optional[MetricsSnapshot] = None
        #: Per-job telemetry of the previous run, in job order
        #: (``None`` per job when that job shipped none).
        self.last_run_telemetry: List[Optional[TaskTelemetry]] = []
        #: Run-level spans of the previous run — parent- and
        #: pool-side table/matrix builds not attributable to one job.
        self.last_run_spans: List[SpanRecord] = []
        #: Shard-worker telemetry of the sharded job in flight.
        self._shard_telemetry: List[TaskTelemetry] = []
        self._store = _make_store(self.cache_dir)
        self._caches: Dict[str, WrapperTableCache] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._segments = SegmentRegistry()
        #: Parent-side dense matrices by SOC fingerprint — what the
        #: sharded sweep's merge and polish read; lifetime matches
        #: the published segments.
        self._matrices: Dict[str, DenseTimeMatrix] = {}
        #: Parent-side tables by fingerprint for finishing sharded
        #: jobs: real cached tables when the parent built them,
        #: staircase-backed dense tables when the pool did.
        self._merge_tables: Dict[str, Dict[str, Any]] = {}

    @property
    def pools_started(self) -> int:
        """Pools started over this runner's lifetime — observable
        evidence that ``persistent=True`` reuses one pool."""
        return self.metrics.counter("engine.pools_started").value

    @property
    def shm_fallbacks(self) -> int:
        """Jobs/shards whose shared dense matrix could not serve a
        worker, which silently rebuilt from a private cache instead —
        the slow path, surfaced for ``--stats``/service monitoring."""
        return self.metrics.counter("engine.shm_fallbacks").value

    @property
    def jobs_sharded(self) -> int:
        """Jobs that executed via the intra-job sharded sweep."""
        return self.metrics.counter("engine.jobs_sharded").value

    @property
    def pool_restarts(self) -> int:
        """Broken process pools rebuilt mid-grid over this runner's
        lifetime — each one a worker death the grid survived."""
        return self.metrics.counter("engine.pool_restarts").value

    @property
    def points_timed_out(self) -> int:
        """Grid points abandoned at their wall-clock deadline."""
        return self.metrics.counter("engine.points_timed_out").value

    def cache_for(self, soc: Soc) -> WrapperTableCache:
        """This runner's (inline-mode) table cache for ``soc``."""
        return _cache_for(self._caches, soc, store=self._store)

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        """Start a pool carrying this runner's policy to its workers."""
        self.metrics.counter("engine.pools_started").inc()
        logger.debug("starting process pool with %d workers", workers)
        # Parse (and thereby validate) any active chaos plan here in
        # the parent — a malformed REPRO_FAULTS fails fast instead of
        # breaking every worker's initializer.
        plan = FaultPlan.from_env()
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(
                self.on_error, self.retries, self.cache_dir,
                TRACER.enabled,
                plan.text if plan is not None else None,
            ),
        )

    def _resident_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool, started on first use."""
        if self._executor is None:
            self._executor = self._new_pool(workers)
        return self._executor

    def close(self) -> None:
        """Shut down the persistent pool and free its shared segments."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._segments.close()
        self._matrices.clear()
        self._merge_tables.clear()

    def _publish_local(
        self, fingerprint: str, soc: Soc, width: int
    ) -> DenseDescriptor:
        """Build one SOC's matrix in the parent and publish it."""
        cache = self.cache_for(soc)
        tables = cache.table_list(width)
        matrix = build_dense_matrix(tables, width)
        self._matrices[fingerprint] = matrix
        self._merge_tables[fingerprint] = cache.tables(width)
        return self._segments.publish(
            fingerprint, matrix, designs=design_steps_blob(tables)
        )

    def _dense_descriptors(
        self,
        jobs: Sequence[BatchJob],
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> List[Optional[DenseDescriptor]]:
        """One (possibly shared) dense descriptor per job, in order.

        Builds each distinct SOC's tables once — at the largest width
        any of its jobs needs — and publishes the dense matrix plus
        its wrapper-design staircases through the segment registry.
        A SOC appearing in several jobs ships as one segment.

        SOCs whose tables the parent already holds (or that a
        persistent runner published before) build locally: warm
        builds are cheap.  When two or more SOCs are *cold* and a
        ``pool`` is available, their builds fan out as pool tasks
        (:func:`_build_matrix_worker`) instead of serializing in the
        parent — the cold-grid half of the intra-job scaling story.
        """
        width_by_soc: Dict[str, int] = {}
        soc_by_print: Dict[str, Soc] = {}
        prints: List[str] = []
        for job in jobs:
            fingerprint = soc_fingerprint(job.soc)
            prints.append(fingerprint)
            soc_by_print.setdefault(fingerprint, job.soc)
            width_by_soc[fingerprint] = max(
                width_by_soc.get(fingerprint, 0), job.total_width
            )
        descriptors: Dict[str, Optional[DenseDescriptor]] = {}
        cold: List[Tuple[str, Soc, int]] = []
        for fingerprint, width in width_by_soc.items():
            soc = soc_by_print[fingerprint]
            held = self._matrices.get(fingerprint)
            if held is not None and held.total_width >= width:
                descriptors[fingerprint] = self._segments.publish(
                    fingerprint, held
                )
                continue
            cache = self._caches.get(soc.name)
            warm = (
                cache is not None and cache.soc == soc
                and cache.max_width > 0
            )
            if warm or pool is None:
                descriptors[fingerprint] = self._publish_local(
                    fingerprint, soc, width
                )
            else:
                cold.append((fingerprint, soc, width))
        if len(cold) == 1:
            # One cold SOC gains nothing from a pool round-trip: the
            # parent would idle-wait on the single build anyway.
            fingerprint, soc, width = cold[0]
            descriptors[fingerprint] = self._publish_local(
                fingerprint, soc, width
            )
        elif cold:
            futures = [
                (fingerprint, soc, width, pool.submit(
                    _build_matrix_worker, (soc, width)
                ))
                for fingerprint, soc, width in cold
            ]
            for fingerprint, soc, width, future in futures:
                data, blob, _, telemetry = future.result()
                self.metrics.absorb(telemetry.metrics)
                self.last_run_spans.extend(telemetry.spans)
                matrix = DenseTimeMatrix.from_buffer(
                    data, len(soc.cores), width
                )
                self._matrices[fingerprint] = matrix
                self._merge_tables[fingerprint] = dense_time_tables(
                    soc.cores, matrix,
                    design_steps=parse_design_steps(blob),
                )
                descriptors[fingerprint] = self._segments.publish(
                    fingerprint, matrix, designs=blob
                )
        return [descriptors[fingerprint] for fingerprint in prints]

    def __enter__(self) -> "BatchRunner":
        """Context-manager entry: the runner itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the persistent pool."""
        self.close()

    #: Below this many partitions in a job's whole enumeration,
    #: ``shard="auto"`` leaves the job on one worker — the fan-out
    #: overhead would outweigh the sweep.
    AUTO_SHARD_MIN_PARTITIONS = 2048
    #: Shards per worker under ``shard="auto"``: oversubscription
    #: smooths the load imbalance between a shard that discovers the
    #: incumbents and shards that mostly abort against them.
    SHARD_OVERSUBSCRIPTION = 4

    @staticmethod
    def _job_shardable(job: BatchJob) -> bool:
        """True when the shard protocol's determinism argument applies."""
        options = job.options_dict()
        return (
            options.get("mode", "exact") == "exact"
            and options.get("enumerator", "unique") == "unique"
            and options.get("sweep_engine", "kernel") == "kernel"
            and not options.get("polish_per_tam_count", False)
        )

    @staticmethod
    def _job_search_mode(job: BatchJob) -> bool:
        """True for ``mode="search"`` jobs (the anytime tier)."""
        return job.options_dict().get("mode", "exact") == "search"

    def _shard_count(
        self,
        job: BatchJob,
        override: Union[int, str, None],
        workers: int,
        num_jobs: int,
    ) -> int:
        """How many shards this job should split into (0 = don't)."""
        policy = override if override is not None else self.shard
        if policy in (None, 0, 1) or not self.share_tables:
            return 0
        if not self._job_shardable(job):
            return 0
        counts = resolved_tam_counts(job.total_width, job.num_tams)
        total = sum(count_sizes(job.total_width, counts))
        if total == 0:
            return 0
        if policy == "auto":
            if num_jobs >= workers:
                return 0
            if total < self.AUTO_SHARD_MIN_PARTITIONS:
                return 0
            wanted = workers * self.SHARD_OVERSUBSCRIPTION
        else:
            wanted = int(policy)
        return max(1, min(wanted, total))

    def run_iter(
        self,
        jobs: Sequence[BatchJob],
        shard: Union[int, str, None] = None,
        point_timeout: Union[int, float, None] = None,
        max_concurrent: Optional[int] = None,
    ) -> Iterator[BatchResult]:
        """Evaluate ``jobs``, yielding one result per job, in order.

        The streaming form of :meth:`run`: results become available
        as each job finishes (``concurrent.futures`` ``map`` yields
        in submission order), which is what lets the exploration
        server emit per-point :class:`~repro.api.JobEvent` s while a
        grid is still running.  The iterator must be consumed for
        the batch to complete; abandoning it mid-grid closes the
        underlying ephemeral pool.

        ``shard`` and ``point_timeout`` override the runner's
        intra-job sharding policy and per-point deadline for this
        call (the per-submission runner hints); results are identical
        either way.  ``max_concurrent`` caps how many of this call's
        grid points are in flight on the pool at once (windowed
        submission) — the multi-tenant fairness knob; it also
        disables intra-job sharding and search island fan-out, which
        would otherwise let a single point occupy every worker.
        """
        jobs = list(jobs)
        if not jobs:
            return
        shard = normalize_shard_policy(shard)
        timeout = normalize_point_timeout(point_timeout)
        if timeout is None:
            timeout = self.point_timeout
        cap = normalize_max_concurrent(max_concurrent)
        run_start = self.metrics.snapshot()
        self.last_run_telemetry = [None] * len(jobs)
        self.last_run_spans = []
        try:
            yield from self._run_iter_inner(jobs, shard, timeout, cap)
        finally:
            # The registry is cumulative (the lifetime counters the
            # tests and ``info()`` read); the per-run delta is what
            # one ``run_grid`` call actually did — a persistent
            # runner's second grid no longer inherits its first
            # grid's numbers.
            self.last_run_metrics = (
                self.metrics.snapshot().delta(run_start)
            )

    def _fallbacks(self, count: int) -> None:
        """Count shared-table fallbacks reported by a worker."""
        if count:
            self.metrics.counter("engine.shm_fallbacks").inc(count)

    def _absorb_job(
        self, index: int, telemetry: TaskTelemetry
    ) -> None:
        """File one job's telemetry: registry merge + per-job slot."""
        self.metrics.absorb(telemetry.metrics)
        if index < len(self.last_run_telemetry):
            self.last_run_telemetry[index] = telemetry

    def _run_iter_inner(
        self,
        jobs: List[BatchJob],
        shard: Union[int, str, None],
        point_timeout: Optional[float],
        max_concurrent: Optional[int] = None,
    ) -> Iterator[BatchResult]:
        """The dispatch body of :meth:`run_iter` (one run's worth)."""
        requested = self.max_workers
        if requested is None:
            requested = os.cpu_count() or 1
        shard_counts = (
            [
                self._shard_count(job, shard, requested, len(jobs))
                for job in jobs
            ]
            if requested > 1 and max_concurrent is None
            else [0] * len(jobs)
        )
        # mode="search" jobs fan their islands across the pool under
        # the same policy as auto-sharding: only when jobs are scarcer
        # than workers (otherwise job-level parallelism already
        # saturates the pool).  Island results are bit-identical to
        # inline execution, so this is pure execution strategy.
        # A max_concurrent cap suppresses both fan-outs: one point
        # spraying shard/island tasks across the pool is exactly the
        # monopolisation the cap exists to prevent.
        search_fan = [
            requested > 1 and self.share_tables
            and max_concurrent is None
            and len(jobs) < requested
            and self._job_search_mode(job)
            for job in jobs
        ]
        workers = requested
        if not any(shard_counts) and not any(search_fan) \
                and not self.persistent:
            workers = min(workers, len(jobs))
        if workers == 1:
            faults = FaultPlan.from_env()
            for index, job in enumerate(jobs):
                baseline = task_begin()
                result, fallbacks = _run_job_safe(
                    self._caches, job, self.on_error, self.retries,
                    store=self._store, point_index=index,
                    faults=faults,
                )
                self._fallbacks(fallbacks)
                self._absorb_job(index, task_end(baseline))
                yield result
            return
        # Pool supervision: a BrokenProcessPool (worker OOM-killed,
        # segfaulted, or chaos-crashed) no longer aborts the grid.
        # Already-yielded results are kept — both dispatch paths
        # yield strictly in job order — the pool is rebuilt after a
        # deterministic backoff, and only jobs[emitted:] re-dispatch.
        # The published shm segments are parent-owned and survive the
        # dead pool, so the rebuilt workers re-attach to the same
        # matrices.
        emitted = 0
        restarts = 0
        delays = backoff_schedule(self.pool_restart_retries)
        pool = (
            self._resident_pool(workers) if self.persistent
            else self._new_pool(workers)
        )
        try:
            while True:
                try:
                    for result in self._dispatch_pool(
                        jobs, shard_counts, search_fan, pool, emitted,
                        point_timeout, max_concurrent,
                    ):
                        emitted += 1
                        yield result
                    return
                except BrokenProcessPool:
                    restarts += 1
                    self.metrics.counter("engine.pool_restarts").inc()
                    self._executor = None
                    pool.shutdown(wait=False)
                    if restarts > self.pool_restart_retries:
                        logger.error(
                            "process pool broke after %d/%d results "
                            "and %d rebuild(s); giving up",
                            emitted, len(jobs), restarts - 1,
                        )
                        if self.on_error == "record":
                            for job in jobs[emitted:]:
                                emitted += 1
                                yield FailedPoint(
                                    job=job,
                                    error_type="BrokenProcessPool",
                                    error_message=(
                                        "process pool died and could "
                                        "not be rebuilt"
                                    ),
                                    attempts=restarts,
                                )
                            return
                        raise
                    logger.warning(
                        "process pool broke after %d/%d results; "
                        "rebuilding and resuming (restart %d/%d)",
                        emitted, len(jobs), restarts,
                        self.pool_restart_retries,
                    )
                    _sleep(delays[restarts - 1])
                    pool = (
                        self._resident_pool(workers) if self.persistent
                        else self._new_pool(workers)
                    )
        finally:
            if not self.persistent:
                # Ephemeral pool: its workers are gone, so the
                # published segments have no readers left — free
                # them (and the parent-side matrices) now.
                pool.shutdown(wait=True)
                self._segments.close()
                self._matrices.clear()
                self._merge_tables.clear()

    def _await_point(
        self,
        future: "Future[Tuple[BatchResult, int, TaskTelemetry]]",
        job: BatchJob,
        point_timeout: Optional[float],
    ) -> Tuple[BatchResult, int, Optional[TaskTelemetry]]:
        """One submitted point's result, under the deadline policy.

        A point that misses its wall-clock deadline is *abandoned*
        (its worker cannot be interrupted; the result, if any, is
        discarded) — counted, then recorded or raised per the
        ``on_error`` policy.
        """
        if point_timeout is None:
            return future.result()
        try:
            return future.result(timeout=point_timeout)
        except _FuturesTimeout:
            future.cancel()
            self.metrics.counter("engine.points_timed_out").inc()
            message = (
                f"grid point exceeded its {point_timeout:g}s "
                "wall-clock deadline"
            )
            logger.error("job %s: %s", job.describe(), message)
            if self.on_error == "record":
                return FailedPoint(
                    job=job,
                    error_type="DeadlineError",
                    error_message=message,
                    attempts=1,
                ), 0, None
            raise DeadlineError(
                f"job {job.describe()}: {message}"
            ) from None

    def _dispatch_pool(
        self,
        jobs: List[BatchJob],
        shard_counts: List[int],
        search_fan: List[bool],
        pool: ProcessPoolExecutor,
        skip: int,
        point_timeout: Optional[float],
        max_concurrent: Optional[int] = None,
    ) -> Iterator[BatchResult]:
        """Dispatch ``jobs[skip:]`` over ``pool``, yielding in order.

        One pool's worth of work: descriptors are (re)published —
        idempotent for segments already wide enough — and results
        stream back in job order, so the caller can resume from its
        yield count if this pool breaks mid-grid.
        """
        build_baseline = task_begin()
        if self.share_tables:
            with span("publish_tables", jobs=len(jobs)):
                descriptors = self._dense_descriptors(jobs, pool)
        else:
            descriptors = [None] * len(jobs)
        build_telemetry = task_end(build_baseline)
        self.metrics.absorb(build_telemetry.metrics)
        self.last_run_spans.extend(build_telemetry.spans)
        remaining = list(range(skip, len(jobs)))
        if any(shard_counts) or any(search_fan):
            # Unsharded/unfanned jobs are submitted up front so they
            # keep running concurrently; each sharded (or
            # island-fanned search) job saturates the pool with its
            # own tasks at its turn.
            futures = {
                index: pool.submit(
                    _pool_worker,
                    (jobs[index], descriptors[index], index),
                )
                for index in remaining
                if not (
                    (shard_counts[index] >= 2 or search_fan[index])
                    and descriptors[index] is not None
                    and descriptors[index].fingerprint
                    in self._matrices
                )
            }
            for index in remaining:
                if index in futures:
                    result, fallbacks, telemetry = self._await_point(
                        futures[index], jobs[index], point_timeout
                    )
                    self._fallbacks(fallbacks)
                    if telemetry is not None:
                        self._absorb_job(index, telemetry)
                    yield result
                else:
                    baseline = task_begin()
                    if search_fan[index]:
                        result = self._run_search_safe(
                            jobs[index], descriptors[index], pool
                        )
                    else:
                        result = self._run_sharded_safe(
                            jobs[index], descriptors[index], pool,
                            shard_counts[index],
                        )
                    parent = task_end(baseline)
                    self.metrics.absorb(parent.metrics)
                    merged = _merge_task_telemetry(
                        parent, self._shard_telemetry
                    )
                    if index < len(self.last_run_telemetry):
                        self.last_run_telemetry[index] = merged
                    yield result
        elif point_timeout is None and max_concurrent is None:
            items = [
                (jobs[index], descriptors[index], index)
                for index in remaining
            ]
            for offset, (result, fallbacks, telemetry) in enumerate(
                pool.map(
                    _pool_worker, items, chunksize=self.chunksize
                )
            ):
                self._fallbacks(fallbacks)
                self._absorb_job(remaining[offset], telemetry)
                yield result
        else:
            # Deadline enforcement needs per-point futures (map has
            # no per-result timeout), and a concurrency cap needs
            # windowed submission; both keep results in job order.
            # An uncapped window equals the old submit-all path.
            window = (
                len(remaining) if max_concurrent is None
                else max_concurrent
            )
            pending: List[Tuple[int, "Future[Any]"]] = []
            cursor = 0

            def _fill() -> None:
                nonlocal cursor
                while len(pending) < window \
                        and cursor < len(remaining):
                    index = remaining[cursor]
                    cursor += 1
                    pending.append((index, pool.submit(
                        _pool_worker,
                        (jobs[index], descriptors[index], index),
                    )))

            _fill()
            while pending:
                index, future = pending.pop(0)
                result, fallbacks, telemetry = self._await_point(
                    future, jobs[index], point_timeout
                )
                _fill()
                self._fallbacks(fallbacks)
                if telemetry is not None:
                    self._absorb_job(index, telemetry)
                yield result

    def _run_sharded_safe(
        self,
        job: BatchJob,
        descriptor: DenseDescriptor,
        pool: ProcessPoolExecutor,
        num_shards: int,
    ) -> BatchResult:
        """The sharded job under the runner's failure policy."""
        attempts = self.retries + 1
        for attempt in range(1, attempts + 1):
            try:
                return self._run_sharded(
                    job, descriptor, pool, num_shards
                )
            except BrokenProcessPool:
                raise  # pool-level: the whole batch is over
            except Exception as error:  # noqa: BLE001 - policy boundary
                if attempt < attempts:
                    logger.warning(
                        "sharded job %s failed (attempt %d/%d), "
                        "retrying: %s",
                        job.describe(), attempt, attempts, error,
                    )
                    continue
                if self.on_error == "record":
                    logger.error(
                        "sharded job %s failed permanently: %s: %s",
                        job.describe(), type(error).__name__, error,
                    )
                    return FailedPoint(
                        job=job,
                        error_type=type(error).__name__,
                        error_message=str(error),
                        attempts=attempt,
                    )
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_search_safe(
        self,
        job: BatchJob,
        descriptor: DenseDescriptor,
        pool: ProcessPoolExecutor,
    ) -> BatchResult:
        """The island-fanned search job under the failure policy."""
        attempts = self.retries + 1
        for attempt in range(1, attempts + 1):
            try:
                return self._run_search(job, descriptor, pool)
            except BrokenProcessPool:
                raise  # pool-level: the whole batch is over
            except Exception as error:  # noqa: BLE001 - policy boundary
                if attempt < attempts:
                    logger.warning(
                        "search job %s failed (attempt %d/%d), "
                        "retrying: %s",
                        job.describe(), attempt, attempts, error,
                    )
                    continue
                if self.on_error == "record":
                    logger.error(
                        "search job %s failed permanently: %s: %s",
                        job.describe(), type(error).__name__, error,
                    )
                    return FailedPoint(
                        job=job,
                        error_type=type(error).__name__,
                        error_message=str(error),
                        attempts=attempt,
                    )
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_search(
        self,
        job: BatchJob,
        descriptor: DenseDescriptor,
        pool: ProcessPoolExecutor,
    ) -> SweepPoint:
        """Run one search job with its islands fanned across the pool.

        The fixed :data:`repro.search.NUM_ISLANDS` island runs
        execute as worker tasks over the already-shared dense matrix,
        publishing incumbent improvements through a shared-memory
        board; the deterministic merge, the exact polish, and the
        certificate/utilization accounting run here in the parent
        over the same matrix.  The result is bit-identical to inline
        execution — island seeds and eval shares derive from the
        fixed island count, never from the worker count.
        """
        self._shard_telemetry = []
        matrix = self._matrices[descriptor.fingerprint]
        tables = self._merge_tables[descriptor.fingerprint]

        def islands(plans: Sequence[Any]) -> List[Any]:
            self.metrics.counter("search.islands_planned").inc(
                len(plans)
            )
            board = IncumbentBoard.create(len(plans), 1)
            try:
                board_descriptor = (
                    board.descriptor() if board is not None else None
                )
                tasks = [
                    (
                        descriptor, board_descriptor, plan, job.soc,
                        job.total_width,
                    )
                    for plan in plans
                ]
                futures = [
                    pool.submit(_search_worker, task)
                    for task in tasks
                ]
                retry_delays = backoff_schedule(
                    self.SHARD_RETRY_ATTEMPTS - 1
                )
                results = []
                for island_index, future in enumerate(futures):
                    # Island-level retry: re-running an island is
                    # deterministic (a pure function of its plan and
                    # seed), so the merged result stays bit-identical.
                    for attempt in range(self.SHARD_RETRY_ATTEMPTS):
                        try:
                            result, fallbacks, telemetry = (
                                future.result()
                            )
                            break
                        except BrokenProcessPool:
                            raise
                        except Exception as error:  # noqa: BLE001
                            if (attempt + 1
                                    >= self.SHARD_RETRY_ATTEMPTS):
                                raise
                            logger.warning(
                                "island %d of %s failed (attempt "
                                "%d/%d), re-running: %s",
                                island_index, job.describe(),
                                attempt + 1,
                                self.SHARD_RETRY_ATTEMPTS, error,
                            )
                            self.metrics.counter(
                                "engine.island_retries"
                            ).inc()
                            _sleep(retry_delays[attempt])
                            future = pool.submit(
                                _search_worker, tasks[island_index]
                            )
                    self._fallbacks(fallbacks)
                    self.metrics.absorb(telemetry.metrics)
                    self._shard_telemetry.append(telemetry)
                    results.append(result)
                return results
            finally:
                if board is not None:
                    board.close()

        self.metrics.counter("engine.jobs_search_fanned").inc()
        return evaluate_point(
            job.soc,
            job.total_width,
            num_tams=job.num_tams,
            tables=tables,
            dense=matrix,
            search_islands=islands,
            **job.options_dict(),
        )

    def _run_sharded(
        self,
        job: BatchJob,
        descriptor: DenseDescriptor,
        pool: ProcessPoolExecutor,
        num_shards: int,
    ) -> SweepPoint:
        """Run one job with its partition sweep fanned across the pool.

        Step 1 (the sweep) executes as ``num_shards`` worker tasks
        over the already-shared dense matrix, with incumbents
        broadcast through a shared-memory board; the deterministic
        merge, the exact polish, and the certificate/utilization
        accounting run here in the parent over the same matrix.  The
        result is bit-identical to whole-job execution.
        """
        self._shard_telemetry = []
        matrix = self._matrices[descriptor.fingerprint]
        tables = self._merge_tables[descriptor.fingerprint]

        def sweep(
            table_list: Sequence[TimeTable],
            total_width: int,
            tam_counts: Union[int, Iterable[int]], *,
            enumerator: str = "unique",
            prune: Union[bool, str] = True,
            initial_best: Optional[int] = None,
            keep_top: int = 1,
            stratify_by_tam_count: bool = False,
            engine: str = "kernel",
            dense: Optional[DenseTimeMatrix] = None,
        ) -> PartitionSearchResult:
            if stratify_by_tam_count or engine != "kernel" \
                    or enumerator != "unique":
                # Configurations outside the shard protocol's
                # determinism argument run serially, as before.
                return partition_evaluate(
                    table_list, total_width, tam_counts,
                    enumerator=enumerator, prune=prune,
                    initial_best=initial_best, keep_top=keep_top,
                    stratify_by_tam_count=stratify_by_tam_count,
                    engine=engine, dense=dense,
                )

            def scorer(plan: ShardPlan) -> List[ShardOutcome]:
                self.metrics.counter("shard.shards_planned").inc(
                    plan.num_shards
                )
                # Unpruned sweeps never read the board; skip it.
                board = (
                    IncumbentBoard.create(plan.num_shards, keep_top)
                    if prune else None
                )
                try:
                    board_descriptor = (
                        board.descriptor()
                        if board is not None else None
                    )
                    tasks = [
                        (
                            descriptor, board_descriptor, index,
                            shard_spans, job.soc, total_width,
                            keep_top, initial_best, prune,
                        )
                        for index, shard_spans
                        in enumerate(plan.shards)
                    ]
                    futures = [
                        pool.submit(_shard_worker, task)
                        for task in tasks
                    ]
                    retry_delays = backoff_schedule(
                        self.SHARD_RETRY_ATTEMPTS - 1
                    )
                    outcomes = []
                    for shard_index, future in enumerate(futures):
                        # Shard-level retry: a shard task that fails
                        # with an ordinary exception re-runs alone
                        # (bounded, schedule-backed) instead of
                        # restarting the whole job.  Re-running is
                        # deterministic — sweep_shard's completions
                        # are a pure function of the shard's rank
                        # range — so the merged result stays
                        # bit-identical.  Pool-level breakage still
                        # propagates to the grid supervisor.
                        for attempt in range(
                            self.SHARD_RETRY_ATTEMPTS
                        ):
                            try:
                                outcome, fallbacks, telemetry = (
                                    future.result()
                                )
                                break
                            except BrokenProcessPool:
                                raise
                            except Exception as error:  # noqa: BLE001
                                if (attempt + 1
                                        >= self.SHARD_RETRY_ATTEMPTS):
                                    raise
                                logger.warning(
                                    "shard %d of %s failed (attempt "
                                    "%d/%d), re-running: %s",
                                    shard_index, job.describe(),
                                    attempt + 1,
                                    self.SHARD_RETRY_ATTEMPTS, error,
                                )
                                self.metrics.counter(
                                    "engine.shard_retries"
                                ).inc()
                                _sleep(retry_delays[attempt])
                                future = pool.submit(
                                    _shard_worker,
                                    tasks[shard_index],
                                )
                        self._fallbacks(fallbacks)
                        self.metrics.absorb(telemetry.metrics)
                        self._shard_telemetry.append(telemetry)
                        outcomes.append(outcome)
                    return outcomes
                finally:
                    if board is not None:
                        board.close()

            return sharded_partition_evaluate(
                None, total_width, tam_counts, num_shards,
                prune=prune, initial_best=initial_best,
                keep_top=keep_top, dense=matrix, scorer=scorer,
            )

        def polish_runner(tasks: Sequence[Any]) -> List[Any]:
            """Fan the top-k exact-polish solves across the pool.

            Each task is independent (the serial loop never threads
            one candidate's solution into the next solve), so results
            come back in candidate order and the caller's first-
            strict-minimum reduction matches the serial polish
            bit for bit.
            """
            self.metrics.counter("engine.polish_tasks_fanned").inc(
                len(tasks)
            )
            futures = [
                pool.submit(_polish_worker, task) for task in tasks
            ]
            retry_delays = backoff_schedule(
                self.SHARD_RETRY_ATTEMPTS - 1
            )
            exacts = []
            for task_index, future in enumerate(futures):
                for attempt in range(self.SHARD_RETRY_ATTEMPTS):
                    try:
                        exact, telemetry = future.result()
                        break
                    except BrokenProcessPool:
                        raise
                    except Exception as error:  # noqa: BLE001
                        if attempt + 1 >= self.SHARD_RETRY_ATTEMPTS:
                            raise
                        logger.warning(
                            "polish task %d of %s failed (attempt "
                            "%d/%d), re-running: %s",
                            task_index, job.describe(), attempt + 1,
                            self.SHARD_RETRY_ATTEMPTS, error,
                        )
                        self.metrics.counter(
                            "engine.polish_retries"
                        ).inc()
                        _sleep(retry_delays[attempt])
                        future = pool.submit(
                            _polish_worker, tasks[task_index]
                        )
                self.metrics.absorb(telemetry.metrics)
                self._shard_telemetry.append(telemetry)
                exacts.append(exact)
            return exacts

        self.metrics.counter("engine.jobs_sharded").inc()
        return evaluate_point(
            job.soc,
            job.total_width,
            num_tams=job.num_tams,
            tables=tables,
            dense=matrix,
            sweep=sweep,
            polish_runner=polish_runner,
            **job.options_dict(),
        )

    def run(
        self,
        jobs: Sequence[BatchJob],
        shard: Union[int, str, None] = None,
        point_timeout: Union[int, float, None] = None,
        max_concurrent: Optional[int] = None,
    ) -> List[BatchResult]:
        """Evaluate ``jobs``, returning one result per job, in order.

        Results are independent of worker count and scheduling: the
        pipeline is deterministic given (SOC, W, B), and cached
        tables answer exactly like freshly built ones.  Under
        ``on_error="record"`` a failing job yields a
        :class:`FailedPoint` in its slot (see :func:`split_results`);
        under the default policy every element is a
        :class:`~repro.analysis.sweep.SweepPoint`.
        """
        return list(self.run_iter(
            jobs, shard=shard, point_timeout=point_timeout,
            max_concurrent=max_concurrent,
        ))

    def run_grid(
        self,
        socs: "Union[GridSpec, Iterable[Soc]]",
        widths: Optional[Iterable[int]] = None,
        num_tams: Union[int, Tuple[int, ...], None] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> List[Tuple[BatchJob, BatchResult]]:
        """Evaluate a grid, pairing each job with its result.

        The canonical form takes one :class:`repro.api.GridSpec` —
        the same typed object the exploration service and the CLI
        submit — and runs the jobs it resolves to::

            runner.run_grid(GridSpec.from_axes(["d695"], [16, 24]))

        The legacy axes form (``socs`` × ``widths``, widths varying
        fastest, every job sharing ``num_tams`` and ``options``) is
        kept for existing callers and builds the identical job list.
        """
        from repro.api.specs import GridSpec

        if isinstance(socs, GridSpec):
            if widths is not None or num_tams is not None or options:
                raise ConfigurationError(
                    "run_grid(GridSpec) takes no extra axes arguments"
                )
            jobs = socs.jobs()
            # Execution hints ride the spec's `runner` mapping —
            # excluded from its canonical key, honored here.
            hints = socs.runner_options()
            return list(zip(jobs, self.run(
                jobs,
                shard=hints.get("shard"),
                point_timeout=hints.get("point_timeout"),
            )))
        soc_list = list(socs)
        width_list = list(widths or ())  # survives one-shot iterables
        jobs = [
            BatchJob(
                soc=soc,
                total_width=width,
                num_tams=num_tams,
                options=options or (),
            )
            for soc in soc_list
            for width in width_list
        ]
        return list(zip(jobs, self.run(jobs)))


#: Column order of :func:`grid_rows` records, shared by the
#: ``repro-tam batch`` subcommand and the batch benchmarks.
BATCH_COLUMNS: Tuple[str, ...] = (
    "soc", "W", "B", "partition", "T", "gap", "utilization",
)


def grid_rows(
    grid: Sequence[Tuple[BatchJob, BatchResult]]
) -> List[Dict[str, object]]:
    """Render a :meth:`BatchRunner.run_grid` result as table rows.

    One dict per grid point, with the shared column schema used by
    the ``repro-tam batch`` subcommand and the batch benchmarks:
    ``soc``, ``W``, ``B``, ``partition``, ``T``, ``gap``,
    ``utilization``.  A recorded :class:`FailedPoint` renders as an
    error row rather than breaking the table.
    """
    rows: List[Dict[str, object]] = []
    for job, point in grid:
        if isinstance(point, FailedPoint):
            rows.append({
                "soc": job.soc.name,
                "W": job.total_width,
                "B": "-",
                "partition": f"{point.error_type}: {point.error_message}",
                "T": "-",
                "gap": "-",
                "utilization": "-",
            })
            continue
        rows.append({
            "soc": job.soc.name,
            "W": point.total_width,
            "B": point.num_tams,
            "partition": "+".join(map(str, point.partition)),
            "T": point.testing_time,
            "gap": f"{point.certificate.gap:.2%}",
            "utilization": f"{point.wire_efficiency:.1%}",
        })
    return rows
