"""Parallel batch execution of (SOC, W, B) optimization jobs.

A design-space sweep is embarrassingly parallel across its points,
but a naive pool would re-run ``Design_wrapper`` per point.  The
:class:`BatchRunner` keeps the sharing and adds the parallelism:

* **inline mode** (``max_workers=1``, the default for the sequential
  sweeps in :mod:`repro.analysis.sweep`): jobs run in the calling
  process against runner-owned :class:`~repro.engine.cache.
  WrapperTableCache` s, one per SOC, so a width sweep pays one
  wrapper design per (core, width) pair in total;
* **pool mode** (``max_workers > 1`` or ``None`` = one per CPU):
  jobs fan out over a ``concurrent.futures`` process pool.  Each
  worker process keeps its own module-level cache per SOC, so every
  job a worker receives after its first reuses (and at most extends)
  tables already built in that worker.

Results come back as :class:`~repro.analysis.sweep.SweepPoint`
records in job order, and are identical to a sequential run — the
optimizer is deterministic and the tables a cache hands out match a
fresh build exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.sweep import SweepPoint, evaluate_point
from repro.engine.cache import WrapperTableCache
from repro.exceptions import ConfigurationError
from repro.soc.soc import Soc


@dataclass(frozen=True)
class BatchJob:
    """One optimization job: a SOC, a TAM budget, and TAM count(s).

    ``num_tams`` follows :func:`repro.optimize.co_optimize.co_optimize`:
    a single count (P_PAW), a tuple of counts, or ``None`` for the
    paper's P_NPAW default.  Iterables are frozen to tuples so jobs
    are immutable and picklable for the process pool.

    ``options`` holds extra keyword arguments forwarded to
    ``co_optimize`` (e.g. ``polish``, ``polish_top_k``,
    ``exact_time_limit``); a mapping is frozen to sorted items.  Note
    that ``exact_time_limit`` is a *wall-clock* budget: a solve that
    hits it under CPU contention returns its incumbent, so strictly
    load-independent results require budgets generous enough that
    solves finish by node exhaustion or optimality proof.
    """

    soc: Soc
    total_width: int
    num_tams: Union[int, Tuple[int, ...], None] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.total_width < 1:
            raise ConfigurationError(
                f"total_width must be >= 1, got {self.total_width}"
            )
        if self.num_tams is not None and not isinstance(self.num_tams, int):
            object.__setattr__(self, "num_tams", tuple(self.num_tams))
        if isinstance(self.options, Mapping):
            object.__setattr__(
                self, "options", tuple(sorted(self.options.items()))
            )
        else:
            object.__setattr__(self, "options", tuple(self.options))

    def options_dict(self) -> Dict[str, Any]:
        """The frozen ``options`` pairs as keyword arguments."""
        return dict(self.options)

    def describe(self) -> str:
        """Short ``soc W=.. B=..`` label for logs and progress lines."""
        if self.num_tams is None:
            counts = "B=auto"
        elif isinstance(self.num_tams, int):
            counts = f"B={self.num_tams}"
        else:
            counts = f"B in {list(self.num_tams)}"
        return f"{self.soc.name} W={self.total_width} {counts}"


#: Per-worker-process table caches, keyed by SOC name.  Populated only
#: inside pool workers; each worker builds tables for a SOC at most
#: once (extending in place when a wider job arrives).
_WORKER_CACHES: Dict[str, WrapperTableCache] = {}


def _cache_for(
    caches: Dict[str, WrapperTableCache], soc: Soc
) -> WrapperTableCache:
    """The cache for ``soc`` in ``caches``, created or replaced as needed."""
    cache = caches.get(soc.name)
    if cache is None or cache.soc != soc:
        cache = WrapperTableCache(soc)
        caches[soc.name] = cache
    return cache


def _run_job_cached(
    caches: Dict[str, WrapperTableCache], job: BatchJob
) -> SweepPoint:
    """Evaluate one job against the shared caches."""
    cache = _cache_for(caches, job.soc)
    return evaluate_point(
        job.soc,
        job.total_width,
        num_tams=job.num_tams,
        tables=cache.tables(job.total_width),
        **job.options_dict(),
    )


def _pool_worker(job: BatchJob) -> SweepPoint:
    """Pool entry point: evaluate ``job`` with this worker's caches."""
    return _run_job_cached(_WORKER_CACHES, job)


class BatchRunner:
    """Run batches of :class:`BatchJob` s with shared-table reuse.

    Parameters
    ----------
    max_workers:
        ``1`` runs jobs inline in the calling process (sequential,
        no pool, runner-owned caches reused across ``run`` calls);
        ``None`` uses one worker per CPU; any other value sizes the
        process pool explicitly.  The pool never exceeds the number
        of jobs.
    chunksize:
        Jobs handed to a pool worker per dispatch.  Values above 1
        keep consecutive jobs (typically same SOC, ascending widths)
        on one worker, improving its cache reuse at some cost in
        load balance.
    """

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        chunksize: int = 1,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1 or None, got {max_workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._caches: Dict[str, WrapperTableCache] = {}

    def cache_for(self, soc: Soc) -> WrapperTableCache:
        """This runner's (inline-mode) table cache for ``soc``."""
        return _cache_for(self._caches, soc)

    def run(self, jobs: Sequence[BatchJob]) -> List[SweepPoint]:
        """Evaluate ``jobs``, returning one point per job, in order.

        Results are independent of worker count and scheduling: the
        pipeline is deterministic given (SOC, W, B), and cached
        tables answer exactly like freshly built ones.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(workers, len(jobs))
        if workers == 1:
            return [_run_job_cached(self._caches, job) for job in jobs]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(_pool_worker, jobs, chunksize=self.chunksize)
            )

    def run_grid(
        self,
        socs: Iterable[Soc],
        widths: Iterable[int],
        num_tams: Union[int, Tuple[int, ...], None] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> List[Tuple[BatchJob, SweepPoint]]:
        """Evaluate the full ``socs`` × ``widths`` grid.

        Convenience for the CLI and benchmarks: builds one job per
        (SOC, width) pair — widths varying fastest, every job sharing
        ``num_tams`` and ``options`` — runs them, and pairs each job
        with its result.
        """
        soc_list = list(socs)
        width_list = list(widths)  # survives one-shot iterables
        jobs = [
            BatchJob(
                soc=soc,
                total_width=width,
                num_tams=num_tams,
                options=options or (),
            )
            for soc in soc_list
            for width in width_list
        ]
        return list(zip(jobs, self.run(jobs)))


#: Column order of :func:`grid_rows` records, shared by the
#: ``repro-tam batch`` subcommand and the batch benchmarks.
BATCH_COLUMNS: Tuple[str, ...] = (
    "soc", "W", "B", "partition", "T", "gap", "utilization",
)


def grid_rows(
    grid: Sequence[Tuple[BatchJob, SweepPoint]]
) -> List[Dict[str, object]]:
    """Render a :meth:`BatchRunner.run_grid` result as table rows.

    One dict per grid point, with the shared column schema used by
    the ``repro-tam batch`` subcommand and the batch benchmarks:
    ``soc``, ``W``, ``B``, ``partition``, ``T``, ``gap``,
    ``utilization``.
    """
    return [
        {
            "soc": job.soc.name,
            "W": point.total_width,
            "B": point.num_tams,
            "partition": "+".join(map(str, point.partition)),
            "T": point.testing_time,
            "gap": f"{point.certificate.gap:.2%}",
            "utilization": f"{point.wire_efficiency:.1%}",
        }
        for job, point in grid
    ]
