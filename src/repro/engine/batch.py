"""Parallel batch execution of (SOC, W, B) optimization jobs.

A design-space sweep is embarrassingly parallel across its points,
but a naive pool would re-run ``Design_wrapper`` per point.  The
:class:`BatchRunner` keeps the sharing and adds the parallelism:

* **inline mode** (``max_workers=1``, the default for the sequential
  sweeps in :mod:`repro.analysis.sweep`): jobs run in the calling
  process against runner-owned :class:`~repro.engine.cache.
  WrapperTableCache` s, one per SOC, so a width sweep pays one
  wrapper design per (core, width) pair in total;
* **pool mode** (``max_workers > 1`` or ``None`` = one per CPU):
  jobs fan out over a ``concurrent.futures`` process pool.  Each
  worker process keeps its own module-level cache per SOC, so every
  job a worker receives after its first reuses (and at most extends)
  tables already built in that worker.

Three orthogonal options extend the engine for service use:

* ``cache_dir`` backs every cache (inline and per-worker) with a
  persistent :class:`repro.service.store.TableStore`, so table
  builds are skipped entirely once the store is warm — across
  processes *and* across runs;
* ``on_error="record"`` turns a failing grid point into a structured
  :class:`FailedPoint` in the result list instead of aborting the
  whole grid, with ``retries`` transient-failure attempts first;
* ``persistent=True`` keeps the process pool alive across
  :meth:`BatchRunner.run` calls (close with :meth:`BatchRunner.
  close` or a ``with`` block) — the resident-worker mode the
  exploration service (:mod:`repro.service.server`) is built on.

Results come back as :class:`~repro.analysis.sweep.SweepPoint`
records in job order, and are identical to a sequential run — the
optimizer is deterministic and the tables a cache hands out match a
fresh build exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.sweep import SweepPoint, evaluate_point
from repro.engine.cache import WrapperTableCache
from repro.engine.kernel import build_dense_matrix, dense_time_tables
from repro.engine.shm import DenseDescriptor, SegmentRegistry, attach
from repro.exceptions import ConfigurationError
from repro.soc.fingerprint import soc_fingerprint
from repro.soc.soc import Soc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.specs import GridSpec, OptimizeSpec
    from repro.service.store import TableStore

#: Valid ``on_error`` policies: abort the grid on the first failing
#: point, or record it as a :class:`FailedPoint` and keep going.
ON_ERROR_POLICIES: Tuple[str, ...] = ("raise", "record")


@dataclass(frozen=True)
class BatchJob:
    """One optimization job: a SOC, a TAM budget, and TAM count(s).

    ``num_tams`` follows :func:`repro.optimize.co_optimize.co_optimize`:
    a single count (P_PAW), a tuple of counts, or ``None`` for the
    paper's P_NPAW default.  Iterables are frozen to tuples so jobs
    are immutable and picklable for the process pool.

    ``options`` holds extra keyword arguments forwarded to
    ``co_optimize`` (e.g. ``polish``, ``polish_top_k``,
    ``exact_time_limit``); a mapping is frozen to sorted items.  Note
    that ``exact_time_limit`` is a *wall-clock* budget: a solve that
    hits it under CPU contention returns its incumbent, so strictly
    load-independent results require budgets generous enough that
    solves finish by node exhaustion or optimality proof.
    """

    soc: Soc
    total_width: int
    num_tams: Union[int, Tuple[int, ...], None] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.total_width < 1:
            raise ConfigurationError(
                f"total_width must be >= 1, got {self.total_width}"
            )
        if self.num_tams is not None and not isinstance(self.num_tams, int):
            object.__setattr__(self, "num_tams", tuple(self.num_tams))
        if isinstance(self.options, Mapping):
            object.__setattr__(
                self, "options", tuple(sorted(self.options.items()))
            )
        else:
            object.__setattr__(self, "options", tuple(self.options))

    def options_dict(self) -> Dict[str, Any]:
        """The frozen ``options`` pairs as keyword arguments."""
        return dict(self.options)

    @classmethod
    def from_spec(cls, soc: Soc, spec: "OptimizeSpec") -> "BatchJob":
        """The engine job a typed :class:`repro.api.OptimizeSpec` means.

        Options are carried *sparse* (non-defaults only, via
        :meth:`~repro.api.specs.OptimizeSpec.engine_options`) so the
        engine's own defaulting — e.g. ``evaluate_point`` switching
        an unspecified ``prune`` to the outcome-identical ``"lb"`` —
        still applies, exactly as for a hand-built job.
        """
        return cls(
            soc=soc,
            total_width=spec.total_width,
            num_tams=spec.num_tams,
            options=spec.engine_options(),
        )

    def spec(self) -> "OptimizeSpec":
        """This job's configuration as a typed ``OptimizeSpec``.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        job carries option keys the canonical spec does not know —
        the drift guard that makes every supported option exist in
        one place (:data:`repro.api.specs.OPTION_DEFAULTS`).
        """
        from repro.api.specs import OptimizeSpec

        return OptimizeSpec.from_options(
            self.total_width,
            num_tams=self.num_tams,
            options=self.options_dict(),
        )

    def describe(self) -> str:
        """Short ``soc W=.. B=..`` label for logs and progress lines."""
        if self.num_tams is None:
            counts = "B=auto"
        elif isinstance(self.num_tams, int):
            counts = f"B={self.num_tams}"
        else:
            counts = f"B in {list(self.num_tams)}"
        return f"{self.soc.name} W={self.total_width} {counts}"


@dataclass(frozen=True)
class FailedPoint:
    """A grid point that raised instead of producing a result.

    Returned in place of a :class:`~repro.analysis.sweep.SweepPoint`
    when the runner's ``on_error`` policy is ``"record"``: the grid
    completes, and failures stay attributable — which job, which
    exception, after how many attempts.  Picklable, so pool workers
    can ship it back like any result.
    """

    job: BatchJob
    error_type: str
    error_message: str
    attempts: int

    @property
    def total_width(self) -> int:
        """The failed job's TAM budget, mirroring ``SweepPoint``."""
        return self.job.total_width

    def describe(self) -> str:
        """One-line ``job: error`` summary for logs and reports."""
        retried = (
            f" after {self.attempts} attempts" if self.attempts > 1 else ""
        )
        return (
            f"{self.job.describe()}: {self.error_type}: "
            f"{self.error_message}{retried}"
        )


#: What a batch returns per job: a result or a recorded failure.
BatchResult = Union[SweepPoint, FailedPoint]


def split_results(
    results: Iterable[BatchResult],
) -> Tuple[List[SweepPoint], List[FailedPoint]]:
    """Partition mixed batch results into (points, failures)."""
    points: List[SweepPoint] = []
    failures: List[FailedPoint] = []
    for result in results:
        if isinstance(result, FailedPoint):
            failures.append(result)
        else:
            points.append(result)
    return points, failures


#: Per-worker-process table caches, keyed by SOC name.  Populated only
#: inside pool workers; each worker builds tables for a SOC at most
#: once (extending in place when a wider job arrives).
_WORKER_CACHES: Dict[str, WrapperTableCache] = {}

#: Per-worker-process runtime policy, set by :func:`_init_worker` at
#: pool start: (on_error, retries, table store or None).
_WORKER_POLICY: Tuple[str, int, "Optional[TableStore]"] = ("raise", 0, None)


def _make_store(cache_dir: Union[str, Path, None]) -> "Optional[TableStore]":
    """A :class:`TableStore` on ``cache_dir``, or ``None``."""
    if cache_dir is None:
        return None
    # Imported lazily: repro.service builds on this module.
    from repro.service.store import TableStore

    return TableStore(cache_dir)


def _init_worker(
    on_error: str, retries: int, cache_dir: Union[str, None]
) -> None:
    """Pool initializer: install the runner's policy in this worker."""
    global _WORKER_POLICY
    _WORKER_POLICY = (on_error, retries, _make_store(cache_dir))


def _cache_for(
    caches: Dict[str, WrapperTableCache],
    soc: Soc,
    store: "Optional[TableStore]" = None,
) -> WrapperTableCache:
    """The cache for ``soc`` in ``caches``, created or replaced as needed."""
    cache = caches.get(soc.name)
    if cache is None or cache.soc != soc:
        cache = WrapperTableCache(soc, store=store)
        caches[soc.name] = cache
    return cache


def _dense_point(
    job: BatchJob, descriptor: Optional[DenseDescriptor]
) -> Optional[SweepPoint]:
    """Evaluate ``job`` over a transported dense matrix, if possible.

    Returns ``None`` whenever the descriptor cannot serve this job —
    wrong SOC content, too narrow, segment gone — so the caller falls
    back to its private table cache.  On the happy path the worker
    builds *no* wrapper tables at all: the sweep reads the shared
    matrix, and the handful of designs the final utilization
    accounting needs are recovered on demand per bus width.
    """
    if descriptor is None:
        return None
    if (
        descriptor.total_width < job.total_width
        or descriptor.num_cores != len(job.soc.cores)
        or descriptor.fingerprint != soc_fingerprint(job.soc)
    ):
        return None
    matrix = attach(descriptor)
    if matrix is None:
        return None
    return evaluate_point(
        job.soc,
        job.total_width,
        num_tams=job.num_tams,
        tables=dense_time_tables(job.soc.cores, matrix),
        dense=matrix,
        **job.options_dict(),
    )


def _run_job_cached(
    caches: Dict[str, WrapperTableCache],
    job: BatchJob,
    store: "Optional[TableStore]" = None,
    descriptor: Optional[DenseDescriptor] = None,
) -> SweepPoint:
    """Evaluate one job against the transported matrix or shared caches."""
    point = _dense_point(job, descriptor)
    if point is not None:
        return point
    cache = _cache_for(caches, job.soc, store=store)
    return evaluate_point(
        job.soc,
        job.total_width,
        num_tams=job.num_tams,
        tables=cache.tables(job.total_width),
        **job.options_dict(),
    )


def _run_job_safe(
    caches: Dict[str, WrapperTableCache],
    job: BatchJob,
    on_error: str,
    retries: int,
    store: "Optional[TableStore]" = None,
    descriptor: Optional[DenseDescriptor] = None,
) -> BatchResult:
    """Evaluate one job under the runner's failure policy."""
    attempts = retries + 1
    for attempt in range(1, attempts + 1):
        try:
            return _run_job_cached(
                caches, job, store=store, descriptor=descriptor
            )
        except Exception as error:  # noqa: BLE001 - policy boundary
            if attempt < attempts:
                continue
            if on_error == "record":
                return FailedPoint(
                    job=job,
                    error_type=type(error).__name__,
                    error_message=str(error),
                    attempts=attempt,
                )
            raise
    raise AssertionError("unreachable")  # pragma: no cover


def _pool_worker(
    item: Tuple[BatchJob, Optional[DenseDescriptor]]
) -> BatchResult:
    """Pool entry point: evaluate one (job, dense descriptor) item."""
    job, descriptor = item
    on_error, retries, store = _WORKER_POLICY
    return _run_job_safe(
        _WORKER_CACHES, job, on_error, retries, store=store,
        descriptor=descriptor,
    )


class BatchRunner:
    """Run batches of :class:`BatchJob` s with shared-table reuse.

    Parameters
    ----------
    max_workers:
        ``1`` runs jobs inline in the calling process (sequential,
        no pool, runner-owned caches reused across ``run`` calls);
        ``None`` uses one worker per CPU; any other value sizes the
        process pool explicitly.  An ephemeral pool never exceeds
        the number of jobs; a persistent one is sized once.
    chunksize:
        Jobs handed to a pool worker per dispatch.  Values above 1
        keep consecutive jobs (typically same SOC, ascending widths)
        on one worker, improving its cache reuse at some cost in
        load balance.
    on_error:
        ``"raise"`` (default) aborts the batch on the first failing
        job; ``"record"`` returns a :class:`FailedPoint` for it and
        completes the rest of the grid.
    retries:
        Extra attempts per job before its failure is raised or
        recorded.  The pipeline is deterministic, so retries pay off
        only for environmental failures (a worker killed under
        memory pressure, a wall-clock-truncated exact solve).
    cache_dir:
        When set, every table cache — the runner's own in inline
        mode, each worker's in pool mode — is backed by a persistent
        :class:`repro.service.store.TableStore` on this directory.
    persistent:
        Keep the process pool alive across :meth:`run` calls instead
        of starting one per call.  Callers own the shutdown:
        :meth:`close`, or use the runner as a context manager.
    share_tables:
        Pool mode only: build each SOC's dense time matrix once in
        the parent and ship it to the workers through
        ``multiprocessing.shared_memory`` (:mod:`repro.engine.shm`)
        instead of every worker building a private wrapper-table
        copy.  Results are identical either way; segments are freed
        when the pool goes away (end of :meth:`run` for an ephemeral
        pool, :meth:`close` for a persistent one), and the transport
        degrades gracefully — to pickled matrix bytes when shared
        memory is unavailable, to per-worker caches when a worker
        cannot attach.  Trade-off: the parent builds each distinct
        SOC's tables *serially* before the pool starts, so a cold
        grid over many large SOCs may prefer ``share_tables=False``
        (workers build concurrently, one private copy each) or a warm
        ``cache_dir`` that makes the parent build free.
    """

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        chunksize: int = 1,
        on_error: str = "raise",
        retries: int = 0,
        cache_dir: Union[str, Path, None] = None,
        persistent: bool = False,
        share_tables: bool = True,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1 or None, got {max_workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        if on_error not in ON_ERROR_POLICIES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {retries}"
            )
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.on_error = on_error
        self.retries = retries
        self.cache_dir = (
            str(cache_dir) if cache_dir is not None else None
        )
        self.persistent = persistent
        self.share_tables = share_tables
        #: Pools started over this runner's lifetime — observable
        #: evidence that ``persistent=True`` reuses one pool.
        self.pools_started = 0
        self._store = _make_store(self.cache_dir)
        self._caches: Dict[str, WrapperTableCache] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._segments = SegmentRegistry()

    def cache_for(self, soc: Soc) -> WrapperTableCache:
        """This runner's (inline-mode) table cache for ``soc``."""
        return _cache_for(self._caches, soc, store=self._store)

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        """Start a pool carrying this runner's policy to its workers."""
        self.pools_started += 1
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.on_error, self.retries, self.cache_dir),
        )

    def _resident_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool, started on first use."""
        if self._executor is None:
            self._executor = self._new_pool(workers)
        return self._executor

    def close(self) -> None:
        """Shut down the persistent pool and free its shared segments."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._segments.close()

    def _dense_descriptors(
        self, jobs: Sequence[BatchJob]
    ) -> List[Optional[DenseDescriptor]]:
        """One (possibly shared) dense descriptor per job, in order.

        Builds each distinct SOC's tables once in the parent — via
        the runner's own (store-backed) cache — at the largest width
        any of its jobs needs, and publishes the dense matrix through
        the segment registry.  A SOC appearing in several jobs ships
        as one segment.
        """
        width_by_soc: Dict[str, int] = {}
        soc_by_print: Dict[str, Soc] = {}
        prints: List[str] = []
        for job in jobs:
            fingerprint = soc_fingerprint(job.soc)
            prints.append(fingerprint)
            soc_by_print.setdefault(fingerprint, job.soc)
            width_by_soc[fingerprint] = max(
                width_by_soc.get(fingerprint, 0), job.total_width
            )
        descriptors: Dict[str, Optional[DenseDescriptor]] = {}
        for fingerprint, width in width_by_soc.items():
            cache = self.cache_for(soc_by_print[fingerprint])
            matrix = build_dense_matrix(cache.table_list(width), width)
            descriptors[fingerprint] = self._segments.publish(
                fingerprint, matrix
            )
        return [descriptors[fingerprint] for fingerprint in prints]

    def __enter__(self) -> "BatchRunner":
        """Context-manager entry: the runner itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the persistent pool."""
        self.close()

    def run_iter(self, jobs: Sequence[BatchJob]):
        """Evaluate ``jobs``, yielding one result per job, in order.

        The streaming form of :meth:`run`: results become available
        as each job finishes (``concurrent.futures`` ``map`` yields
        in submission order), which is what lets the exploration
        server emit per-point :class:`~repro.api.JobEvent` s while a
        grid is still running.  The iterator must be consumed for
        the batch to complete; abandoning it mid-grid closes the
        underlying ephemeral pool.
        """
        jobs = list(jobs)
        if not jobs:
            return
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if not self.persistent:
            workers = min(workers, len(jobs))
        if workers == 1:
            for job in jobs:
                yield _run_job_safe(
                    self._caches, job, self.on_error, self.retries,
                    store=self._store,
                )
            return
        if self.share_tables:
            items = list(zip(jobs, self._dense_descriptors(jobs)))
        else:
            items = [(job, None) for job in jobs]
        if self.persistent:
            pool = self._resident_pool(workers)
            try:
                yield from pool.map(
                    _pool_worker, items, chunksize=self.chunksize
                )
            except BrokenProcessPool:
                # A dead worker (OOM-kill, segfault) breaks the whole
                # executor; discard it so the *next* run gets a fresh
                # pool instead of this batch's failure forever.
                self._executor = None
                pool.shutdown(wait=False)
                raise
            return
        try:
            with self._new_pool(workers) as pool:
                yield from pool.map(
                    _pool_worker, items, chunksize=self.chunksize
                )
        finally:
            # Ephemeral pool: its workers are gone, so the published
            # segments have no readers left — free them now.
            self._segments.close()

    def run(self, jobs: Sequence[BatchJob]) -> List[BatchResult]:
        """Evaluate ``jobs``, returning one result per job, in order.

        Results are independent of worker count and scheduling: the
        pipeline is deterministic given (SOC, W, B), and cached
        tables answer exactly like freshly built ones.  Under
        ``on_error="record"`` a failing job yields a
        :class:`FailedPoint` in its slot (see :func:`split_results`);
        under the default policy every element is a
        :class:`~repro.analysis.sweep.SweepPoint`.
        """
        return list(self.run_iter(jobs))

    def run_grid(
        self,
        socs: "Union[GridSpec, Iterable[Soc]]",
        widths: Optional[Iterable[int]] = None,
        num_tams: Union[int, Tuple[int, ...], None] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> List[Tuple[BatchJob, BatchResult]]:
        """Evaluate a grid, pairing each job with its result.

        The canonical form takes one :class:`repro.api.GridSpec` —
        the same typed object the exploration service and the CLI
        submit — and runs the jobs it resolves to::

            runner.run_grid(GridSpec.from_axes(["d695"], [16, 24]))

        The legacy axes form (``socs`` × ``widths``, widths varying
        fastest, every job sharing ``num_tams`` and ``options``) is
        kept for existing callers and builds the identical job list.
        """
        from repro.api.specs import GridSpec

        if isinstance(socs, GridSpec):
            if widths is not None or num_tams is not None or options:
                raise ConfigurationError(
                    "run_grid(GridSpec) takes no extra axes arguments"
                )
            jobs = socs.jobs()
            return list(zip(jobs, self.run(jobs)))
        soc_list = list(socs)
        width_list = list(widths or ())  # survives one-shot iterables
        jobs = [
            BatchJob(
                soc=soc,
                total_width=width,
                num_tams=num_tams,
                options=options or (),
            )
            for soc in soc_list
            for width in width_list
        ]
        return list(zip(jobs, self.run(jobs)))


#: Column order of :func:`grid_rows` records, shared by the
#: ``repro-tam batch`` subcommand and the batch benchmarks.
BATCH_COLUMNS: Tuple[str, ...] = (
    "soc", "W", "B", "partition", "T", "gap", "utilization",
)


def grid_rows(
    grid: Sequence[Tuple[BatchJob, BatchResult]]
) -> List[Dict[str, object]]:
    """Render a :meth:`BatchRunner.run_grid` result as table rows.

    One dict per grid point, with the shared column schema used by
    the ``repro-tam batch`` subcommand and the batch benchmarks:
    ``soc``, ``W``, ``B``, ``partition``, ``T``, ``gap``,
    ``utilization``.  A recorded :class:`FailedPoint` renders as an
    error row rather than breaking the table.
    """
    rows: List[Dict[str, object]] = []
    for job, point in grid:
        if isinstance(point, FailedPoint):
            rows.append({
                "soc": job.soc.name,
                "W": job.total_width,
                "B": "-",
                "partition": f"{point.error_type}: {point.error_message}",
                "T": "-",
                "gap": "-",
                "utilization": "-",
            })
            continue
        rows.append({
            "soc": job.soc.name,
            "W": point.total_width,
            "B": point.num_tams,
            "partition": "+".join(map(str, point.partition)),
            "T": point.testing_time,
            "gap": f"{point.certificate.gap:.2%}",
            "utilization": f"{point.wire_efficiency:.1%}",
        })
    return rows
