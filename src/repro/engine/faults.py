"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a small, seeded description of *which* faults
to inject *where* — parsed from a plan string, normally supplied via
the ``REPRO_FAULTS`` environment variable.  Production code consults
the plan at a handful of well-defined hook points (worker task entry,
shm attach, the IPC event stream, store writes); with no plan active
every hook is a ``None`` check and nothing else.

Plan strings are comma-separated directives::

    REPRO_FAULTS="seed=7,state=/tmp/faults,crash@2,slow@1=0.05"

========================  =============================================
directive                 fault
========================  =============================================
``crash@K``               the worker evaluating grid-point index K
                          dies (``os._exit``) before scoring it —
                          surfaces as ``BrokenProcessPool`` in the
                          parent.  Requires ``state=`` (see below).
``shm@K``                 point K's shared-memory attach is forced to
                          fail, exercising the private-table fallback.
``slow@K=S``              point K sleeps S seconds before scoring —
                          drives per-point deadline enforcement.
``ipc@K``                 the server drops an ``events`` stream after
                          K event lines — drives client reconnect.
``corrupt``               the next table-store/grid-memo write is
                          truncated on disk — drives quarantine.
                          Requires ``state=``.
``seed=N``                folds N into the plan (reserved for seeded
                          schedule/jitter choices; also keys tests).
``state=DIR``             a directory for one-shot tokens.  Faults
                          that would otherwise repeat forever (a
                          crashed point is *re-run*, a quarantined
                          entry is *re-written*) fire only once per
                          token directory.
========================  =============================================

Every fired fault increments the ``faults.injected`` counter on the
process-wide metrics registry, so injected chaos is visible in the
run's telemetry and the service health block.

Determinism contract: a plan never changes *what* is computed — only
when processes die, how long points take, and which transport
fallbacks engage.  The chaos suite asserts grid results under every
plan are bit-identical to the fault-free run.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs import REGISTRY

__all__ = ["FaultPlan", "FAULTS_ENV"]

logger = logging.getLogger(__name__)

#: The environment variable carrying the active plan string.
FAULTS_ENV = "REPRO_FAULTS"


def _count_fault() -> None:
    REGISTRY.counter("faults.injected").inc()


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable fault-injection plan.

    Instances are cheap value objects: picklable (they ride to pool
    workers via the initializer as plan *text* and are re-parsed
    there), hashable, and side-effect free except for the one-shot
    token files under :attr:`state_dir`.
    """

    text: str
    seed: int = 0
    crash_points: FrozenSet[int] = frozenset()
    shm_points: FrozenSet[int] = frozenset()
    #: ``(point_index, delay_seconds)`` pairs, sorted by index.
    slow_points: Tuple[Tuple[int, float], ...] = ()
    ipc_drops: FrozenSet[int] = frozenset()
    corrupt_writes: bool = False
    state_dir: Optional[str] = None

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` plan string.

        Raises :class:`~repro.exceptions.ConfigurationError` on any
        malformed directive — a half-understood chaos plan must never
        run silently.
        """
        seed = 0
        state_dir: Optional[str] = None
        crash = set()
        shm = set()
        slow: Dict[int, float] = {}
        ipc = set()
        corrupt = False
        for raw in text.split(","):
            directive = raw.strip()
            if not directive:
                continue
            try:
                if directive.startswith("seed="):
                    seed = int(directive[len("seed="):])
                elif directive.startswith("state="):
                    state_dir = directive[len("state="):]
                elif directive.startswith("crash@"):
                    crash.add(int(directive[len("crash@"):]))
                elif directive.startswith("shm@"):
                    shm.add(int(directive[len("shm@"):]))
                elif directive.startswith("slow@"):
                    where, _, amount = (
                        directive[len("slow@"):].partition("=")
                    )
                    delay = float(amount)
                    if delay < 0:
                        raise ValueError("negative delay")
                    slow[int(where)] = delay
                elif directive.startswith("ipc@"):
                    ipc.add(int(directive[len("ipc@"):]))
                elif directive == "corrupt":
                    corrupt = True
                else:
                    raise ValueError("unknown directive")
            except ValueError as error:
                raise ConfigurationError(
                    f"bad {FAULTS_ENV} directive {directive!r}: {error}"
                ) from error
        if (crash or corrupt) and state_dir is None:
            # Without one-shot tokens a crashed point would crash
            # again on every re-run and a quarantined entry would be
            # re-corrupted on every rebuild — the plan could never
            # converge.
            raise ConfigurationError(
                f"{FAULTS_ENV} plans with crash@/corrupt directives "
                "need a state=DIR token directory"
            )
        if state_dir is not None:
            Path(state_dir).mkdir(parents=True, exist_ok=True)
        return cls(
            text=text,
            seed=seed,
            crash_points=frozenset(crash),
            shm_points=frozenset(shm),
            slow_points=tuple(sorted(slow.items())),
            ipc_drops=frozenset(ipc),
            corrupt_writes=corrupt,
            state_dir=state_dir,
        )

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The active plan, or ``None`` when ``REPRO_FAULTS`` is unset."""
        text = (environ or os.environ).get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.parse(text)

    # -- one-shot tokens ----------------------------------------------

    def _claim(self, token: str) -> bool:
        """Atomically claim a one-shot token; True exactly once.

        With no :attr:`state_dir` the claim always succeeds (the
        fault repeats) — parse() guarantees the fault kinds that must
        not repeat always have a token directory.
        """
        if self.state_dir is None:
            return True
        path = Path(self.state_dir) / token
        try:
            fd = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    # -- hook points ---------------------------------------------------

    def take_crash(self, point_index: int) -> bool:
        """True if the worker handling ``point_index`` should die now.

        The caller performs the actual ``os._exit`` — and only ever
        in a pool-worker process, never inline in the parent.
        """
        if point_index not in self.crash_points:
            return False
        if not self._claim(f"crash-{point_index}"):
            return False
        _count_fault()
        logger.warning(
            "fault injection: crashing worker at point %d", point_index
        )
        return True

    def take_shm_failure(self, point_index: int) -> bool:
        """True if ``point_index``'s shm attach should be refused."""
        if point_index not in self.shm_points:
            return False
        if not self._claim(f"shm-{point_index}"):
            return False
        _count_fault()
        return True

    def slow_delay(self, point_index: int) -> Optional[float]:
        """Seconds to stall before scoring ``point_index`` (or None)."""
        for where, delay in self.slow_points:
            if where == point_index:
                if not self._claim(f"slow-{point_index}"):
                    return None
                _count_fault()
                return delay
        return None

    def take_ipc_drop(self, stream_index: int = 0) -> Optional[int]:
        """Event count after which to sever stream ``stream_index``.

        Returns the drop threshold K from the first un-claimed
        ``ipc@K`` directive, or ``None`` when this stream runs clean.
        The fault counter is incremented by the IPC layer when the
        drop actually happens (the stream may finish under K events).
        """
        for threshold in sorted(self.ipc_drops):
            if self._claim(f"ipc-{threshold}-{stream_index}"):
                return threshold
        return None

    def take_corrupt_write(self) -> bool:
        """True if the store write being attempted should truncate."""
        if not self.corrupt_writes:
            return False
        if not self._claim("corrupt"):
            return False
        _count_fault()
        return True
