"""Shared-memory transport for dense time matrices and incumbents.

Closes the ROADMAP item "shared-memory or copy-on-write table
transport for the process pool": instead of every pool worker holding
a private copy of each SOC's wrapper time tables, the parent builds
the dense N×W matrix once (:func:`repro.engine.kernel.
build_dense_matrix`), publishes its int64 bytes in one
``multiprocessing.shared_memory`` segment, and ships workers a tiny
:class:`DenseDescriptor` (segment name, shape, SOC fingerprint).
Workers attach read-only and wrap the buffer zero-copy; the matrix —
plus on-demand :class:`~repro.engine.kernel.DenseTimeTable` designs
for final reporting — replaces their private table builds.

Two further payloads ride the same machinery:

* **wrapper-design staircases** — each core's Pareto breakpoints with
  their serialized designs (:func:`design_steps_blob`), published
  alongside the matrix and decoded lazily by
  :class:`~repro.engine.kernel.DenseTimeTable`.  This closes the last
  per-worker rebuild: the handful of ``Design_wrapper`` runs the
  final utilization accounting used to pay per worker now cost a
  dictionary lookup;
* the **incumbent board** (:class:`IncumbentBoard`) — a tiny int64
  array with one slot of ``keep_top`` best-times per shard of an
  intra-job sharded sweep (:mod:`repro.partition.shard`).  Each shard
  writes only its own slot and reads only earlier shards' slots
  (forward-only, which is what keeps the merged result bit-identical
  to the serial sweep), so no locking is needed; a torn read is not a
  correctness hazard on any platform CPython supports shared memory
  on, because slot writes are single aligned 8-byte stores.

Degradation is graceful at both ends:

* if creating a segment fails (no ``/dev/shm``, permissions, size
  limits), the descriptor carries the raw matrix bytes instead and
  rides the normal pickle channel to the workers;
* if *attaching* fails in a worker, the worker silently falls back to
  its private :class:`~repro.engine.cache.WrapperTableCache` — the
  pre-transport behaviour.

Segment lifetime is owned by the parent-side :class:`SegmentRegistry`:
segments are unlinked on :meth:`SegmentRegistry.close` (wired to pool
shutdown in :class:`~repro.engine.batch.BatchRunner`).  Attached
workers keep their mappings alive until process exit — on POSIX an
unlinked segment survives for exactly as long as someone maps it.

Python ≤ 3.12 registers *attached* segments with the worker's
``resource_tracker`` too, which would tear a segment down (and warn)
as soon as any one worker exits; the attach path therefore
unregisters them — cleanup stays the creator's job.
"""

from __future__ import annotations

import atexit
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.engine.kernel import DenseTimeMatrix
from repro.obs import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wrapper.pareto import TimeTable

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no _posixshmem / _winapi
    _shared_memory = None  # type: ignore[assignment]


@dataclass(frozen=True)
class DenseDescriptor:
    """Everything a worker needs to reconstruct a dense matrix.

    Exactly one of ``shm_name`` (shared-memory fast path) and
    ``payload`` (pickled-bytes fallback) is set.  ``fingerprint`` is
    the :func:`repro.soc.fingerprint.soc_fingerprint` of the SOC the
    matrix was built for — workers verify it against each job's SOC
    before trusting the matrix.

    ``design_shm_name`` / ``design_payload`` optionally carry the
    wrapper-design staircase blob (:func:`design_steps_blob`) the same
    two ways; ``design_size`` is the blob's byte length (shared-memory
    segments may be page-padded).  Absent designs only cost speed —
    workers fall back to on-demand ``Design_wrapper`` recovery.
    """

    fingerprint: str
    num_cores: int
    total_width: int
    shm_name: Optional[str] = None
    payload: Optional[bytes] = None
    design_shm_name: Optional[str] = None
    design_payload: Optional[bytes] = None
    design_size: int = 0


class SegmentRegistry:
    """Parent-side owner of published dense-matrix segments.

    Keyed by SOC fingerprint; republishing for a wider width replaces
    (and unlinks) the narrower segment.  :meth:`close` frees
    everything — :class:`~repro.engine.batch.BatchRunner` calls it
    when its pool goes away.
    """

    def __init__(self) -> None:
        self._segments: Dict[
            str, Tuple[Tuple[object, ...], DenseDescriptor]
        ] = {}

    @staticmethod
    def _new_segment(
        data: bytes,
    ) -> "Optional[_shared_memory.SharedMemory]":
        """A filled shared segment for ``data``, or ``None``."""
        if _shared_memory is None or not data:
            return None
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=len(data)
            )
        except OSError:
            return None
        segment.buf[:len(data)] = data
        return segment

    def publish(
        self,
        fingerprint: str,
        matrix: DenseTimeMatrix,
        designs: Optional[bytes] = None,
    ) -> DenseDescriptor:
        """A descriptor for ``matrix``, creating/reusing its segments.

        A segment already published for ``fingerprint`` is reused when
        wide enough (and not missing newly-available ``designs``);
        otherwise it is replaced.  When shared memory is unavailable
        the descriptor falls back to carrying the matrix — and the
        optional wrapper-design staircase blob — inline (the pickle
        channel).
        """
        held = self._segments.get(fingerprint)
        if held is not None:
            _, descriptor = held
            has_designs = (
                descriptor.design_shm_name is not None
                or descriptor.design_payload is not None
            )
            if descriptor.total_width >= matrix.total_width and (
                has_designs or designs is None
            ):
                return descriptor
            self._release(fingerprint)
        data = matrix.to_bytes()
        design_fields: Dict[str, object] = {}
        design_segment = None
        if designs:
            design_segment = self._new_segment(designs)
            if design_segment is not None:
                design_fields = {
                    "design_shm_name": design_segment.name,
                    "design_size": len(designs),
                }
            else:
                design_fields = {
                    "design_payload": designs,
                    "design_size": len(designs),
                }
        segment = self._new_segment(data)
        if segment is not None:
            REGISTRY.counter("shm.segments_published").inc()
            descriptor = DenseDescriptor(
                fingerprint=fingerprint,
                num_cores=matrix.num_cores,
                total_width=matrix.total_width,
                shm_name=segment.name,
                **design_fields,  # type: ignore[arg-type]
            )
        else:
            # Fallback descriptors are registered too (segment-less),
            # so repeated runs reuse the packed bytes instead of
            # re-serializing the matrix each time.  The bytes still
            # ride the pickle channel per job item — the remaining
            # cost of degraded mode.
            REGISTRY.counter("shm.publish_fallbacks").inc()
            descriptor = DenseDescriptor(
                fingerprint=fingerprint,
                num_cores=matrix.num_cores,
                total_width=matrix.total_width,
                payload=data,
                **design_fields,  # type: ignore[arg-type]
            )
        self._segments[fingerprint] = (
            (segment, design_segment), descriptor
        )
        return descriptor

    def _release(self, fingerprint: str) -> None:
        segments, _ = self._segments.pop(fingerprint)
        for segment in segments:
            if segment is None:
                continue
            try:
                segment.close()  # type: ignore[attr-defined]
                segment.unlink()  # type: ignore[attr-defined]
            except OSError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        for fingerprint in list(self._segments):
            self._release(fingerprint)

    def __len__(self) -> int:
        return len(self._segments)


#: Worker-side cache of reconstructed matrices, keyed by SOC
#: fingerprint — one attach (or payload unpack) per matrix per worker
#: process, its column/pick-order memos shared by every job that
#: names it.  The value's first element identifies the exact matrix
#: (segment name, or shape for payload fallbacks): a descriptor
#: naming a *different* one for the same fingerprint supersedes the
#: entry, releasing the stale mapping instead of pinning every
#: generation of a growing matrix for the worker's lifetime.
_ATTACHED: Dict[str, Tuple[object, DenseTimeMatrix, Optional[object]]] = {}
_CLEANUP_REGISTERED = False


def _release_entry(fingerprint: str) -> None:
    _, matrix, segment = _ATTACHED.pop(fingerprint)
    matrix.release()
    if segment is not None:
        try:
            segment.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - already unmapped
            pass


def _close_attachments() -> None:  # pragma: no cover - process exit
    for fingerprint in list(_ATTACHED):
        _release_entry(fingerprint)


def attach(descriptor: DenseDescriptor) -> Optional[DenseTimeMatrix]:
    """The descriptor's matrix, or ``None`` when it cannot be had.

    Matrices are reconstructed once per worker process and cached by
    SOC fingerprint — zero-copy attach for shared segments, a single
    unpack for bytes-fallback payloads — so repeated jobs share the
    memoized columns either way.  Any attach failure (segment already
    unlinked, shared memory unsupported) returns ``None`` so the
    caller can fall back to private tables.
    """
    global _CLEANUP_REGISTERED
    use_payload = descriptor.payload is not None
    if not use_payload and (
        descriptor.shm_name is None or _shared_memory is None
    ):
        REGISTRY.counter("shm.attach_failures").inc()
        return None
    identity: object = (
        (descriptor.num_cores, descriptor.total_width) if use_payload
        else descriptor.shm_name
    )
    held = _ATTACHED.get(descriptor.fingerprint)
    if held is not None:
        if held[0] == identity:
            return held[1]
        _release_entry(descriptor.fingerprint)
    segment = None
    if use_payload:
        matrix = DenseTimeMatrix.from_buffer(
            descriptor.payload,
            descriptor.num_cores,
            descriptor.total_width,
        )
    else:
        try:
            segment = _attach_untracked(descriptor.shm_name)
        except (OSError, ValueError):
            REGISTRY.counter("shm.attach_failures").inc()
            return None
        expected = descriptor.num_cores * descriptor.total_width * 8
        if segment.size < expected:  # pragma: no cover - size mismatch
            segment.close()
            REGISTRY.counter("shm.attach_failures").inc()
            return None
        matrix = DenseTimeMatrix.from_buffer(
            segment.buf[:expected],
            descriptor.num_cores,
            descriptor.total_width,
        )
    if not _CLEANUP_REGISTERED:
        _CLEANUP_REGISTERED = True
        atexit.register(_close_attachments)
    _ATTACHED[descriptor.fingerprint] = (identity, matrix, segment)
    return matrix


def design_steps_blob(tables: "Sequence[TimeTable]") -> bytes:
    """Serialize wrapper-design staircases for the shm transport.

    One record per core: the Pareto breakpoints of its
    :class:`~repro.wrapper.pareto.TimeTable` with each breakpoint's
    serialized design — a few kilobytes for the whole SOC, versus the
    per-worker ``Design_wrapper`` runs they replace.  The inverse is
    :func:`parse_design_steps`.
    """
    # Imported lazily: the serializer sits above this module.
    from repro.report.serialize import wrapper_design_to_dict

    cores = {
        table.core.name: [
            [width, wrapper_design_to_dict(design)]
            for width, _, design in table.staircase()
        ]
        for table in tables
    }
    return json.dumps(
        {"schema": 1, "kind": "design_staircases", "cores": cores},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")


def parse_design_steps(
    blob: bytes,
) -> Optional[Dict[str, List[Tuple[int, dict]]]]:
    """Decode a :func:`design_steps_blob`; ``None`` when unusable.

    Designs are an optimization, not a correctness dependency, so a
    blob from a different build (schema mismatch, truncation) degrades
    to on-demand recovery instead of failing the job.
    """
    try:
        record = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or record.get("schema") != 1 \
            or record.get("kind") != "design_staircases":
        return None
    cores = record.get("cores")
    if not isinstance(cores, dict):
        return None
    return {
        str(name): [(int(width), step) for width, step in steps]
        for name, steps in cores.items()
    }


#: Worker-side cache of parsed design staircases, keyed by SOC
#: fingerprint; the first element identifies the exact blob (segment
#: name, or blob length for payload fallbacks).
_DESIGN_STEPS: Dict[str, Tuple[object, Optional[Dict]]] = {}


def attach_design_steps(
    descriptor: DenseDescriptor,
) -> Optional[Dict[str, List[Tuple[int, dict]]]]:
    """The descriptor's design staircases, or ``None`` when absent.

    Parsed once per worker per blob: the shared segment is read and
    *closed* immediately (the decoded records carry no buffer
    references), so design segments never pin worker address space.
    Any failure — segment gone, undecodable blob — returns ``None``
    and the caller falls back to on-demand design recovery.
    """
    if descriptor.design_payload is not None:
        identity: object = ("payload", descriptor.design_size)
        blob = descriptor.design_payload
    elif descriptor.design_shm_name is not None:
        identity = descriptor.design_shm_name
        blob = None
    else:
        return None
    held = _DESIGN_STEPS.get(descriptor.fingerprint)
    if held is not None and held[0] == identity:
        return held[1]
    if blob is None:
        if _shared_memory is None:
            return None
        try:
            segment = _attach_untracked(descriptor.design_shm_name)
        except (OSError, ValueError):
            return None
        try:
            if segment.size < descriptor.design_size:
                return None  # pragma: no cover - size mismatch
            blob = bytes(segment.buf[:descriptor.design_size])
        finally:
            segment.close()
    steps = parse_design_steps(blob)
    _DESIGN_STEPS[descriptor.fingerprint] = (identity, steps)
    return steps


@dataclass(frozen=True)
class BoardDescriptor:
    """How a pool worker finds a sharded sweep's incumbent board."""

    shm_name: str
    num_shards: int
    keep_top: int


class IncumbentBoard:
    """Cross-process incumbent slots for one sharded partition sweep.

    An int64 array of ``num_shards`` slots × ``keep_top`` entries,
    initialized to :data:`SENTINEL`.  Shard ``s`` *writes* only slot
    ``s`` (its current best times, ascending) and *reads* only slots
    ``< s`` — the forward-only broadcast the sharded sweep's
    determinism argument rests on (:mod:`repro.partition.shard`).
    Single-writer slots need no locking, and every write is one
    aligned 8-byte store.

    The parent owns the segment (:meth:`create` / :meth:`close`);
    workers :meth:`attach` by descriptor and close their mapping when
    the shard finishes.  Every failure path returns ``None`` — the
    sweep simply runs without cross-shard sharing, which cannot
    change its outcome.
    """

    SENTINEL = 1 << 62

    def __init__(self, segment: "_shared_memory.SharedMemory",
                 num_shards: int, keep_top: int,
                 owner: bool) -> None:
        self._segment = segment
        self._view = memoryview(segment.buf).cast("q")
        self.num_shards = num_shards
        self.keep_top = keep_top
        self._owner = owner

    @classmethod
    def create(
        cls, num_shards: int, keep_top: int = 1
    ) -> "Optional[IncumbentBoard]":
        """A zeroed board, or ``None`` when shared memory is absent."""
        if _shared_memory is None:
            return None
        size = num_shards * keep_top * 8
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=size
            )
        except OSError:
            return None
        board = cls(segment, num_shards, keep_top, owner=True)
        for index in range(num_shards * keep_top):
            board._view[index] = cls.SENTINEL
        return board

    def descriptor(self) -> BoardDescriptor:
        """The attach handle workers receive in their shard payload."""
        return BoardDescriptor(
            shm_name=self._segment.name,
            num_shards=self.num_shards,
            keep_top=self.keep_top,
        )

    @classmethod
    def attach(
        cls, descriptor: Optional[BoardDescriptor]
    ) -> "Optional[IncumbentBoard]":
        """The descriptor's board, or ``None`` when it cannot be had."""
        if descriptor is None or _shared_memory is None:
            return None
        try:
            segment = _attach_untracked(descriptor.shm_name)
        except (OSError, ValueError):
            return None
        expected = descriptor.num_shards * descriptor.keep_top * 8
        if segment.size < expected:  # pragma: no cover - size mismatch
            segment.close()
            return None
        return cls(
            segment, descriptor.num_shards, descriptor.keep_top,
            owner=False,
        )

    def publish(
        self, shard_index: int, times: Sequence[int]
    ) -> None:
        """Record ``shard_index``'s current kept times (ascending)."""
        base = shard_index * self.keep_top
        view = self._view
        for offset in range(self.keep_top):
            view[base + offset] = (
                times[offset] if offset < len(times) else self.SENTINEL
            )

    def earlier_times(self, shard_index: int) -> List[int]:
        """Every time published by shards before ``shard_index``."""
        sentinel = self.SENTINEL
        return [
            value
            for value in self._view[:shard_index * self.keep_top]
            if value < sentinel
        ]

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        self._view.release()
        try:
            self._segment.close()
            if self._owner:
                self._segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def _attach_untracked(name: str) -> "_shared_memory.SharedMemory":
    """Attach to ``name`` without telling the resource tracker.

    Python ≤ 3.12 registers *attached* segments with the resource
    tracker too; with the pool's shared tracker that interleaves
    registrations and the creator's eventual unregister arbitrarily,
    producing spurious unlinks and tracker warnings.  Cleanup belongs
    to the creating process alone, so the registration is suppressed
    for the duration of the attach (the standard workaround for
    https://github.com/python/cpython/issues/82300; Python 3.13's
    ``track=False`` makes it official).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic build
        return _shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
